#!/usr/bin/env python
"""Docstring coverage gate for the public API of ``src/repro``.

Every public module, class, function, and method must carry a
docstring — the documented-on-day-one policy backing ``docs/API.md``.
"Public" means the dotted path contains no ``_``-prefixed component;
dunder methods and nested (local) functions are exempt, as are
``@overload`` stubs and trivial ``...``-bodied protocol members.

A second gate keeps ``docs/API.md`` honest: every subsystem in
:data:`DOCUMENTED_SUBSYSTEMS` must have its own ``## repro.<name>``
section there, so a new package (e.g. ``repro.parallel``) cannot land
without reference documentation.

A third gate keeps the chaos harness honest: every fault class —
unit (``repro.resilience.chaos``), load
(``repro.resilience.chaos_load``), and overload
(``repro.resilience.chaos_overload``) — must be registered in its
module's injector registry, exercised by a ``pytest -m chaos`` test,
and listed in the ``docs/ARCHITECTURE.md`` fault table, so a fault
class cannot be added without coverage and documentation.

A fourth gate keeps the serve-layer response contract honest: every
:class:`repro.serve.ServeStatus` member must be named in the
``docs/API.md`` serve section, so a new typed outcome (e.g.
``EXPIRED``) cannot land without client-facing documentation.

Run directly (``python tools/check_docstrings.py``) for a report and a
non-zero exit on violations; ``tests/test_docstring_coverage.py`` wires
the same checks into the default pytest run.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
API_DOC = REPO_ROOT / "docs" / "API.md"

DOCUMENTED_SUBSYSTEMS = (
    "relation",
    "dsl",
    "sketch",
    "pgm",
    "sampler",
    "synth",
    "errors",
    "sql",
    "ml",
    "obs",
    "resilience",
    "parallel",
    "serve",
)
"""Subsystem packages that must each have a ``## repro.<name>`` section
in ``docs/API.md``.  An explicit list, not a directory walk: some
packages (datasets, experiments, baselines, metrics) are evaluation
scaffolding documented through PAPER.md and ``benchmarks/README.md``
instead."""


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_stub(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    """Overload/protocol stubs (``...`` body) need no docstring."""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "overload":
            return True
    body = node.body
    return len(body) == 1 and (
        isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and body[0].value.value is Ellipsis
    )


def _walk_definitions(module: ast.Module, module_name: str):
    """Yield (dotted_name, node, lineno) for public defs and classes."""
    stack: list[tuple[str, ast.AST]] = [(module_name, module)]
    while stack:
        prefix, parent = stack.pop()
        for node in ast.iter_child_nodes(parent):
            if isinstance(node, ast.ClassDef):
                if not _is_public(node.name):
                    continue
                dotted = f"{prefix}.{node.name}"
                yield dotted, node, node.lineno
                stack.append((dotted, node))
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                is_dunder = node.name.startswith(
                    "__"
                ) and node.name.endswith("__")
                if is_dunder or not _is_public(node.name):
                    continue
                if _is_stub(node):
                    continue
                yield f"{prefix}.{node.name}", node, node.lineno
                # Do not descend: locals of a function are not API.


def module_name_for(path: Path) -> str:
    relative = path.relative_to(PACKAGE_ROOT.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def find_violations(root: Path = PACKAGE_ROOT) -> list[str]:
    """All public definitions under ``root`` lacking a docstring."""
    violations: list[str] = []
    for path in sorted(root.rglob("*.py")):
        name = module_name_for(path)
        if any(
            part.startswith("_") and part != "__init__"
            for part in path.relative_to(root.parent).parts
        ) and path.name != "__init__.py":
            continue  # private module
        tree = ast.parse(
            path.read_text(encoding="utf-8"), filename=str(path)
        )
        relative = path.relative_to(REPO_ROOT)
        if ast.get_docstring(tree) is None:
            violations.append(f"{relative}:1 module {name}")
        for dotted, node, lineno in _walk_definitions(tree, name):
            if ast.get_docstring(node) is None:
                kind = (
                    "class"
                    if isinstance(node, ast.ClassDef)
                    else "function"
                )
                violations.append(f"{relative}:{lineno} {kind} {dotted}")
    return violations


def find_undocumented_subsystems(doc_path: Path = API_DOC) -> list[str]:
    """Subsystems of :data:`DOCUMENTED_SUBSYSTEMS` without an API section.

    A subsystem counts as documented when ``docs/API.md`` has a
    second-level heading starting ``## repro.<name>`` (a trailing
    description after an em-dash is fine) *and* the package exists.
    """
    missing: list[str] = []
    text = doc_path.read_text(encoding="utf-8") if doc_path.exists() else ""
    headings = {
        line[3:].split()[0].rstrip(":")
        for line in text.splitlines()
        if line.startswith("## ")
    }
    for subsystem in DOCUMENTED_SUBSYSTEMS:
        package = PACKAGE_ROOT / subsystem
        if not (package / "__init__.py").exists() and not (
            PACKAGE_ROOT / f"{subsystem}.py"
        ).exists():
            missing.append(f"repro.{subsystem}: package does not exist")
        elif f"repro.{subsystem}" not in headings:
            missing.append(
                f"repro.{subsystem}: no '## repro.{subsystem}' section "
                f"in {doc_path.relative_to(REPO_ROOT)}"
            )
    return missing


ARCHITECTURE_DOC = REPO_ROOT / "docs" / "ARCHITECTURE.md"
TESTS_ROOT = REPO_ROOT / "tests"


def _chaos_marked_test_text(tests_root: Path = TESTS_ROOT) -> str:
    """Concatenated source of every test file carrying the chaos mark."""
    parts = []
    for path in sorted(tests_root.glob("test_*.py")):
        text = path.read_text(encoding="utf-8")
        if "pytest.mark.chaos" in text:
            parts.append(text)
    return "\n".join(parts)


def find_chaos_gaps() -> list[str]:
    """Fault classes missing registration, chaos tests, or docs.

    Checks three invariants for every chaos fault class:

    * **registered** — the public registry tuple matches the module's
      injector mapping exactly (same names, same order for the unit
      harness);
    * **tested** — a ``pytest -m chaos`` test file names the fault or
      parametrizes over its registry constant;
    * **documented** — the fault appears in the
      ``docs/ARCHITECTURE.md`` fault-class table.
    """
    sys.path.insert(0, str(PACKAGE_ROOT.parent))
    try:
        from repro.resilience import chaos, chaos_load, chaos_overload
    finally:
        sys.path.pop(0)
    problems: list[str] = []
    if chaos.FAULT_CLASSES != tuple(chaos._FAULTS):
        problems.append(
            "repro.resilience.chaos: FAULT_CLASSES does not match the "
            "_FAULTS injector registry"
        )
    if not set(chaos.WORKER_FAULT_CLASSES) <= set(chaos.FAULT_CLASSES):
        problems.append(
            "repro.resilience.chaos: WORKER_FAULT_CLASSES is not a "
            "subset of FAULT_CLASSES"
        )
    if not set(chaos.DURABILITY_FAULT_CLASSES) <= set(chaos.FAULT_CLASSES):
        problems.append(
            "repro.resilience.chaos: DURABILITY_FAULT_CLASSES is not a "
            "subset of FAULT_CLASSES"
        )
    if set(chaos_load.LOAD_FAULT_CLASSES) != set(chaos_load._INJECTORS):
        problems.append(
            "repro.resilience.chaos_load: LOAD_FAULT_CLASSES does not "
            "match the _INJECTORS registry"
        )
    if set(chaos_overload.OVERLOAD_FAULT_CLASSES) != set(
        chaos_overload._INJECTORS
    ):
        problems.append(
            "repro.resilience.chaos_overload: OVERLOAD_FAULT_CLASSES "
            "does not match the _INJECTORS registry"
        )
    chaos_tests = _chaos_marked_test_text()
    architecture = (
        ARCHITECTURE_DOC.read_text(encoding="utf-8")
        if ARCHITECTURE_DOC.exists()
        else ""
    )
    registries = (
        ("FAULT_CLASSES", chaos.FAULT_CLASSES),
        ("LOAD_FAULT_CLASSES", chaos_load.LOAD_FAULT_CLASSES),
        (
            "OVERLOAD_FAULT_CLASSES",
            chaos_overload.OVERLOAD_FAULT_CLASSES,
        ),
    )
    for constant, faults in registries:
        for fault in faults:
            if fault not in chaos_tests and constant not in chaos_tests:
                problems.append(
                    f"fault class {fault!r}: no `pytest -m chaos` test "
                    f"names it (or parametrizes over {constant})"
                )
            if fault not in architecture:
                problems.append(
                    f"fault class {fault!r}: missing from the "
                    "docs/ARCHITECTURE.md fault table"
                )
    return problems


def find_undocumented_statuses(doc_path: Path = API_DOC) -> list[str]:
    """``ServeStatus`` members absent from the API reference.

    The serve layer's contract is "every request resolves with a typed
    response"; that contract is only usable if clients can read what
    each status means.  Every enum member name (``OK``, ``REJECTED``,
    ``EXPIRED``, ...) must therefore appear in ``docs/API.md``.
    """
    sys.path.insert(0, str(PACKAGE_ROOT.parent))
    try:
        from repro.serve import ServeStatus
    finally:
        sys.path.pop(0)
    text = doc_path.read_text(encoding="utf-8") if doc_path.exists() else ""
    return [
        f"ServeStatus.{member.name}: not mentioned in "
        f"{doc_path.relative_to(REPO_ROOT)}"
        for member in ServeStatus
        if member.name not in text
    ]


STATE_ARTIFACT_GLOBS = (
    "journal.log",
    "snapshot-*.json",
    "journal.log.tmp",
    "snapshot-*.json.tmp",
)
"""File names a durable state directory contains.  None may ever be
committed to (or left strewn around) the repository — a test that
writes durable state must do so under ``tmp_path`` or an equivalent
self-cleaning temporary directory."""

_ARTIFACT_SCAN_EXCLUDE = {".git", "__pycache__", ".pytest_cache"}


def find_stray_state_artifacts(root: Path = REPO_ROOT) -> list[str]:
    """Durable-state files left inside the repository tree.

    The tmpdir-hygiene gate: the durability layer and every test that
    exercises it must confine ``journal.log`` / ``snapshot-*.json``
    (and their ``.tmp`` staging twins) to temporary directories, so a
    test run leaves the checkout byte-identical.  Any hit here is a
    leaked ``state_dir``.
    """
    stray: list[str] = []
    for pattern in STATE_ARTIFACT_GLOBS:
        for path in root.rglob(pattern):
            if _ARTIFACT_SCAN_EXCLUDE & set(path.parts):
                continue
            stray.append(str(path.relative_to(root)))
    return sorted(stray)


def main() -> int:
    """CLI entry: print violations, exit 1 when any exist."""
    violations = find_violations()
    undocumented = find_undocumented_subsystems()
    chaos_gaps = find_chaos_gaps()
    statuses = find_undocumented_statuses()
    stray = find_stray_state_artifacts()
    if violations:
        print(
            f"{len(violations)} public definition(s) missing docstrings:"
        )
        for violation in violations:
            print(f"  {violation}")
    if undocumented:
        print(f"{len(undocumented)} subsystem(s) missing API docs:")
        for entry in undocumented:
            print(f"  {entry}")
    if chaos_gaps:
        print(f"{len(chaos_gaps)} chaos fault-class gap(s):")
        for entry in chaos_gaps:
            print(f"  {entry}")
    if statuses:
        print(f"{len(statuses)} undocumented serve status(es):")
        for entry in statuses:
            print(f"  {entry}")
    if stray:
        print(f"{len(stray)} stray durable-state artifact(s) in the repo:")
        for entry in stray:
            print(f"  {entry}")
    if violations or undocumented or chaos_gaps or statuses or stray:
        return 1
    print("docstring coverage: 100% of the public API")
    print(
        f"API docs: all {len(DOCUMENTED_SUBSYSTEMS)} subsystems have "
        f"sections in {API_DOC.relative_to(REPO_ROOT)}"
    )
    print(
        "chaos gate: every fault class is registered, chaos-tested, "
        "and documented"
    )
    print("serve gate: every ServeStatus member is documented")
    print("state hygiene: no stray journal/snapshot artifacts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
