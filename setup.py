"""Legacy setup shim: the environment's setuptools lacks the wheel
package, so editable installs fall back to this setup.py path."""

from setuptools import setup

setup()
