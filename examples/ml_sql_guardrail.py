"""Safeguarding an ML-integrated SQL query (paper Fig. 1 + appendix F).

Reproduces the case-study flow on the Adult dataset twin:

1. train an AutoML model predicting income;
2. synthesize integrity constraints (including the
   relationship → marital-status rule the paper highlights);
3. run an ML-integrated aggregate query on clean, corrupted, and
   GUARDRAIL-rectified data, and compare the outcomes.

Run:  python examples/ml_sql_guardrail.py
"""

import numpy as np

from repro.datasets import load
from repro.dsl import format_statement
from repro.errors import inject_errors
from repro.ml import AutoModel
from repro.sql import QueryExecutor
from repro.synth import Guardrail, GuardrailConfig


QUERY = """
SELECT PREDICT(income_model) AS income_pred,
       COUNT(*) AS n,
       AVG(CASE WHEN education = 'education=0' THEN 1 ELSE 0 END)
           AS education0_share
FROM adult
WHERE workclass = 'workclass=0'
GROUP BY income_pred
ORDER BY income_pred
"""


def main() -> None:
    rng = np.random.default_rng(11)
    dataset = load("Adult", n_rows=6000)
    train, test = dataset.relation.split(0.6, rng)
    print(f"Adult twin: {dataset.relation}; target = {dataset.target}")

    # Train the income model (the autogluon stand-in).
    model = AutoModel(seed=0).fit(train, dataset.target)
    print("model leaderboard:")
    for name, score in model.leaderboard():
        print(f"  {name:<20} validation accuracy {score:.3f}")

    # Synthesize constraints offline (paper: "ahead of time").
    guard = Guardrail(
        GuardrailConfig(epsilon=0.02, min_support=4)
    ).fit(train)
    print(f"\nsynthesized {len(guard.program)} statements; e.g.:")
    marital = guard.program.statement_for("marital-status")
    shown = marital or guard.program.statements[0]
    print(format_statement(shown))

    # Corrupt constraint-covered attributes of the serving data.
    dag = dataset.ground_truth_dag()
    constrained = [n for n in dag.nodes if dag.parents(n)]
    report = inject_errors(
        test, rate=0.05, attributes=constrained, rng=rng
    )
    print(f"\ninjected {report.n_errors} errors into the serving split")

    # Execute the ML-integrated query in three modes.
    def run(relation, guardrail=None):
        executor = QueryExecutor(
            {"adult": relation},
            {"income_model": model},
            guardrail=guardrail,
            strategy="rectify",
        )
        result = executor.execute(QUERY)
        return result, executor.last_metrics

    clean, _ = run(test)
    dirty, _ = run(report.relation)
    guarded, metrics = run(report.relation, guardrail=guard)

    print("\nclean data (ground truth):")
    print(clean.to_text())
    print("\ncorrupted data, no guardrail:")
    print(dirty.to_text())
    print("\ncorrupted data, GUARDRAIL rectify:")
    print(guarded.to_text())
    print(
        f"\nguard overhead: {metrics.guard_seconds * 1e3:.1f} ms "
        f"(model inference {metrics.inference_seconds * 1e3:.1f} ms); "
        f"{metrics.rows_rectified} cells rectified"
    )

    def l1(result):
        reference = {row[0]: row[1:] for row in clean.rows}
        observed = {row[0]: row[1:] for row in result.rows}
        total = 0.0
        for key in set(reference) | set(observed):
            ref = reference.get(key, (0, 0.0))
            obs = observed.get(key, (0, 0.0))
            total += sum(abs(a - b) for a, b in zip(ref, obs))
        return total

    print(
        f"\nL1 deviation from the clean result: "
        f"dirty = {l1(dirty):.2f}, guarded = {l1(guarded):.2f}"
    )


if __name__ == "__main__":
    main()
