"""Observability: trace a synthesis run and a serving session (repro.obs).

Everything the reproduction does — PC structure learning, MEC
enumeration, sketch filling, per-row guarding, guarded SQL — emits
structured events when tracing is on.  This example records one
offline synthesis and one simulated serving session into a JSONL trace,
then renders the operator report (the same output as ``python -m repro
obs report trace.jsonl``).

Run:  python examples/observability.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.datasets import load
from repro.errors import RowGuard, inject_errors
from repro.synth import GuardrailConfig, synthesize


def main() -> None:
    rng = np.random.default_rng(3)
    dataset = load("Adult", n_rows=1500)
    train, serving = dataset.relation.split(0.6, rng)
    trace_path = Path(tempfile.gettempdir()) / "guardrail_trace.jsonl"

    sink = obs.JsonlSink(trace_path)
    with obs.tracing(sink):
        # Offline: synthesis emits a span tree (sampling → structure
        # learning → enumeration/fill) plus cache counters.
        result = synthesize(
            train, GuardrailConfig(epsilon=0.02, min_support=4)
        )

        # Online: every RowGuard.check emits a latency sample and a
        # tripwire-style verdict record.
        guard = RowGuard(result.program)
        feed = inject_errors(serving, rate=0.05, rng=rng).relation
        for index in range(feed.n_rows):
            row = feed.row(index)
            if not guard.check(row).ok:
                guard.rectify(row)
    sink.close()

    events = obs.read_jsonl(trace_path)
    print(f"wrote {len(events)} events to {trace_path}\n")
    print(obs.render_report(trace_path))


if __name__ == "__main__":
    main()
