"""Streaming deployment: vet rows one at a time (paper Fig. 1).

Production guardrails sit in front of the model and see one row per
request.  :class:`repro.errors.RowGuard` compiles the synthesized
program into hash indexes so each check costs a handful of dictionary
probes; this example simulates a serving loop over a corrupted feed and
prints the guard's running statistics.

Run:  python examples/streaming_guard.py
"""

import numpy as np

from repro import obs
from repro.datasets import load
from repro.errors import RowGuard, inject_errors
from repro.ml import NaiveBayes
from repro.synth import Guardrail, GuardrailConfig


def main() -> None:
    rng = np.random.default_rng(8)
    dataset = load("Telco Customer Churn", n_rows=4000)
    train, serving = dataset.relation.split(0.6, rng)

    model = NaiveBayes().fit(train, dataset.target)
    guard_batch = Guardrail(
        GuardrailConfig(epsilon=0.02, min_support=4)
    ).fit(train)
    guard = RowGuard(guard_batch.program)
    print(
        f"compiled {len(guard)} statements into the streaming guard "
        f"({len(guard_batch.program.branches)} branches)"
    )

    # A corrupted request stream.
    dag = dataset.ground_truth_dag()
    constrained = [n for n in dag.nodes if dag.parents(n)]
    feed = inject_errors(
        serving, rate=0.05, attributes=constrained, rng=rng
    ).relation

    # Trace the serving loop: every check/rectify emits a latency
    # sample and a verdict record into the in-memory sink.
    repaired_predictions = 0
    with obs.tracing() as sink:
        for index in range(feed.n_rows):
            row = feed.row(index)
            verdict = guard.check(row)
            if not verdict.ok:
                fixed = guard.rectify(row)
                before = model.predict_values(feed.take([index]))[0]
                after_relation = feed.take([index])
                for name, value in fixed.items():
                    if value != row[name]:
                        after_relation = after_relation.set_cell(
                            0, name, value
                        )
                after = model.predict_values(after_relation)[0]
                if before != after:
                    repaired_predictions += 1

    stats = guard.stats
    print(
        f"\nserved {feed.n_rows} requests: "
        f"{stats.rows_flagged} flagged "
        f"({stats.violation_rate:.1%}), "
        f"{stats.rows_rectified} rectified, "
        f"{repaired_predictions} predictions changed by the repair"
    )
    print("violations by attribute:")
    for name, count in sorted(
        stats.violations_by_attribute.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:<20} {count}")

    # The same session, as the obs dashboard sees it (per-row latency
    # percentiles come from the trace, not from GuardStats).
    print("\n" + obs.render_report(sink.events))


if __name__ == "__main__":
    main()
