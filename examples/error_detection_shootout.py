"""Error-detection shootout: GUARDRAIL vs TANE, CTANE, and FDX (§8.1).

Runs the Table-3 protocol on one dataset twin: discover constraints on
a noisy discovery split, flag rows of an error-injected test split, and
score everyone with F1/MCC against the injected ground truth.

Run:  python examples/error_detection_shootout.py [dataset-id]
"""

import sys

from repro.experiments import (
    ExperimentContext,
    format_table3,
    run_detection,
)


def main() -> None:
    dataset_id = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    context = ExperimentContext()
    print(
        f"running the Table-3 protocol on dataset #{dataset_id} "
        f"(scale: {context.scale_rows or 'full'} rows, "
        f"epsilon={context.epsilon}, error rate={context.error_rate})"
    )
    row = run_detection(dataset_id, context)
    print(f"\ndataset: {row.dataset_name}")
    print(format_table3([row]))
    print(
        "\nflagged rows — guardrail: "
        f"{row.guardrail.flagged}, tane: {row.tane.flagged}, "
        f"ctane: {row.ctane.flagged}, fdx: {row.fdx.flagged}"
    )
    print(
        "\n('-' entries mean the method failed on this dataset, e.g. "
        "FDX's ill-conditioned regression — see paper §8.1.)"
    )


if __name__ == "__main__":
    main()
