"""Quickstart: synthesize integrity constraints and use them as a guardrail.

Builds a small dataset from a known data-generating process (postal
code → city → state), corrupts a few cells, and shows the full
GUARDRAIL loop: fit → inspect → detect → rectify.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.dsl import format_program
from repro.errors import inject_errors
from repro.relation import Relation
from repro.synth import Guardrail, GuardrailConfig


def build_address_data(n_rows: int = 2000) -> Relation:
    """Sample rows from a postal-code → city → state DGP."""
    rng = np.random.default_rng(42)
    postal_to_city = {
        "94704": "Berkeley",
        "94720": "Berkeley",
        "90001": "Los Angeles",
        "10001": "New York",
        "10002": "New York",
        "73301": "Austin",
        "77001": "Houston",
        "60601": "Chicago",
    }
    city_to_state = {
        "Berkeley": "CA",
        "Los Angeles": "CA",
        "New York": "NY",
        "Austin": "TX",
        "Houston": "TX",
        "Chicago": "IL",
    }
    postal_codes = list(postal_to_city)
    rows = []
    for _ in range(n_rows):
        postal = postal_codes[rng.integers(len(postal_codes))]
        city = postal_to_city[postal]
        rows.append(
            {
                "postal_code": postal,
                "city": city,
                "state": city_to_state[city],
                # An unrelated attribute the constraints must NOT touch.
                "customer_tier": f"tier{rng.integers(3)}",
            }
        )
    return Relation.from_rows(rows)


def main() -> None:
    data = build_address_data()
    print(f"dataset: {data}")

    # 1. Synthesize integrity constraints from the (noisy) data.
    guard = Guardrail(GuardrailConfig(epsilon=0.02, min_support=5)).fit(data)
    print("\nsynthesized constraints:")
    print(format_program(guard.program))
    print(f"\n{guard.describe().splitlines()[1]}")

    # 2. Corrupt a few cells, as a broken upstream pipeline would.
    report = inject_errors(
        data, n_errors=12, rng=np.random.default_rng(7)
    )
    print(f"\ninjected {report.n_errors} errors, e.g.:")
    for error in report.errors[:3]:
        print(
            f"  row {error.row}: {error.attribute} "
            f"{error.original!r} -> {error.corrupted!r}"
        )

    # 3. Detect: which rows violate the constraints?
    flagged = guard.check(report.relation)
    truly_bad = report.row_mask
    print(
        f"\ndetection: flagged {int(flagged.sum())} rows "
        f"({int((flagged & truly_bad).sum())} of {report.n_errors} "
        "injected errors found; errors on unconstrained attributes "
        "are undetectable by design)"
    )

    # 4. Rectify: repair erroneous cells to the most likely value.
    repaired = guard.rectify(report.relation)
    still_wrong = int(data.rows_differ(repaired).sum())
    was_wrong = int(data.rows_differ(report.relation).sum())
    print(
        f"rectification: {was_wrong} corrupted rows -> "
        f"{still_wrong} rows still differing from the clean data"
    )


if __name__ == "__main__":
    main()
