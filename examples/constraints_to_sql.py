"""Exporting synthesized constraints to standard SQL (paper §9).

The DSL translates directly into SQL: a violations query for ad-hoc
auditing, CHECK clauses for schema enforcement, and UPDATE statements
implementing the rectify strategy inside any database.

Run:  python examples/constraints_to_sql.py
"""

import numpy as np

from repro.datasets import load
from repro.dsl import (
    check_constraints,
    format_program,
    rectify_updates,
    violations_query,
)
from repro.synth import Guardrail, GuardrailConfig


def main() -> None:
    rng = np.random.default_rng(4)
    dataset = load("Lung Cancer", n_rows=4000)
    train, _ = dataset.relation.split(0.7, rng)

    guard = Guardrail(
        GuardrailConfig(epsilon=0.02, min_support=4)
    ).fit(train)
    print("synthesized constraints (DSL):")
    print(format_program(guard.program))

    print("\n-- 1. audit query: rows violating any constraint")
    print(violations_query(guard.program, "lung_cancer"))

    print("\n-- 2. CHECK clauses for CREATE TABLE / ALTER TABLE")
    for clause in check_constraints(guard.program):
        print(clause + ",")

    print("\n-- 3. UPDATE statements implementing 'rectify' in SQL")
    for update in rectify_updates(guard.program, "lung_cancer")[:6]:
        print(update)


if __name__ == "__main__":
    main()
