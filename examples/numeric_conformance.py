"""Guarding mixed categorical + numeric data (paper §6).

GUARDRAIL's DSL covers categorical attributes; Conformance Constraints
cover numeric ones.  The paper notes the two "can be used in
conjunction" — this example does exactly that: a categorical guardrail
plus a numeric conformance guard over one table, each catching the
errors the other cannot see.

Run:  python examples/numeric_conformance.py
"""

import numpy as np

from repro.baselines import ConformanceGuard
from repro.dsl import format_program
from repro.relation import Attribute, AttributeType, Relation, Schema
from repro.synth import Guardrail, GuardrailConfig


def build_orders(n_rows: int = 3000) -> Relation:
    """Synthetic order table: category decides tier; price ≈ 9.5 × weight."""
    rng = np.random.default_rng(21)
    categories = ["book", "laptop", "sofa"]
    tier_of = {"book": "light", "laptop": "medium", "sofa": "bulky"}
    weight_of = {"book": 0.4, "laptop": 2.2, "sofa": 38.0}
    rows = []
    for _ in range(n_rows):
        category = categories[rng.integers(3)]
        weight = weight_of[category] * float(rng.uniform(0.8, 1.2))
        price = 9.5 * weight + float(rng.normal(0, 0.8))
        rows.append(
            {
                "category": category,
                "shipping_tier": tier_of[category],
                "weight_kg": round(weight, 2),
                "price_usd": round(price, 2),
            }
        )
    schema = Schema(
        [
            Attribute("category"),
            Attribute("shipping_tier"),
            Attribute("weight_kg", AttributeType.NUMERIC),
            Attribute("price_usd", AttributeType.NUMERIC),
        ]
    )
    return Relation.from_rows(rows, schema=schema)


def main() -> None:
    orders = build_orders()
    print(f"orders table: {orders}")

    categorical_guard = Guardrail(
        GuardrailConfig(epsilon=0.02, min_support=5)
    ).fit(orders)
    numeric_guard = ConformanceGuard().fit(orders)

    print("\ncategorical constraints (GUARDRAIL DSL):")
    print(format_program(categorical_guard.program))
    print("\nnumeric constraints (conformance):")
    print(numeric_guard.describe())

    # Error 1: a categorical inconsistency (a sofa shipped as 'light').
    sofa_row = next(
        i for i in range(orders.n_rows)
        if orders.value(i, "category") == "sofa"
    )
    bad_tier = orders.set_cell(sofa_row, "shipping_tier", "light")
    # Error 2: a numeric inconsistency (price wildly off the weight law,
    # though individually within the observed price range).
    laptop_row = next(
        i for i in range(orders.n_rows)
        if orders.value(i, "category") == "laptop"
    )
    bad_price = orders.set_cell(laptop_row, "price_usd", 3.0)

    for name, corrupted in [("tier", bad_tier), ("price", bad_price)]:
        categorical_hits = categorical_guard.check(corrupted)
        numeric_hits = numeric_guard.check(corrupted)
        print(
            f"\ncorrupted {name}: categorical guard flags rows "
            f"{[int(i) for i in np.nonzero(categorical_hits)[0]]}, "
            f"numeric guard flags rows "
            f"{[int(i) for i in np.nonzero(numeric_hits)[0]]}"
        )

    print(
        "\n=> each guard catches the error class the other cannot "
        "express, as §6 of the paper argues."
    )


if __name__ == "__main__":
    main()
