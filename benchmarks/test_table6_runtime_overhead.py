"""Table 6 — query-time guard overhead vs. model inference time (§8.2).

Paper's claim: the guard's runtime is modest — comparable to (often
below) the ML model's own inference time, so guarding ML-integrated
queries is practical.
"""

import pytest

from conftest import banner, run_once
from repro.experiments import format_table6, run_table6


@pytest.mark.paper
def test_table6_runtime_overhead(benchmark, context):
    rows = run_once(benchmark, run_table6, context)
    total_guard = sum(r.guardrail_seconds for r in rows)
    total_infer = sum(r.inference_seconds for r in rows)
    body = format_table6(rows) + (
        f"\ntotals: guard {total_guard:.3f}s vs inference "
        f"{total_infer:.3f}s across 12 datasets"
    )
    banner("Table 6: runtime overhead", body)
    assert len(rows) == 12
    assert all(r.inference_seconds > 0 for r in rows)
    # Shape: guard overhead is the same order as inference, not 100x.
    # The exact ratio is machine-dependent (the scaled workload makes
    # inference very cheap), so the bound is deliberately loose.
    assert total_guard < total_infer * 40
