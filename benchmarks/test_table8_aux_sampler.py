"""Table 8 — auxiliary-distribution sampler ablation (§8.3).

Paper's claim: learning structure from the auxiliary binary
distribution beats learning from the raw categorical data (normalized
coverage, p = 0.037), and the identity sampler collapses to ~zero
coverage on datasets whose constrained attributes have high
cardinality.
"""

import pytest

from conftest import banner, run_once
from repro.experiments import format_table8, run_table8


@pytest.mark.paper
def test_table8_auxiliary_sampler(benchmark, context):
    rows = run_once(benchmark, run_table8, context)
    n_wins = sum(r.auxiliary_wins for r in rows)
    body = format_table8(rows) + (
        f"\nauxiliary sampler wins or ties on {n_wins} / 12 datasets"
    )
    banner("Table 8: auxiliary sampler ablation", body)
    assert len(rows) == 12
    # Shape: auxiliary wins a majority, and the identity sampler
    # collapses (near-zero coverage) somewhere while auxiliary doesn't.
    assert n_wins >= 7
    collapsed = [
        r for r in rows
        if r.coverage_identity < 0.05 and r.coverage_auxiliary > 0.05
    ]
    assert collapsed, "expected an identity-sampler collapse (paper: 3)"
