"""Figure 6 — rectification effect on 48 ML-integrated queries (§8.2).

Paper's claim: GUARDRAIL's rectify strategy improves the accuracy of
all 48 queries, with an average relative-error reduction of 0.87 ± 0.25.
This reproduction reports the same two series (dirty vs. rectified
relative error, min–max normalized) and the mean reduction.
"""

import pytest

from conftest import banner, run_once
from repro.experiments import (
    average_reduction,
    format_figure6,
    normalized_series,
    run_figure6,
)


@pytest.mark.paper
def test_fig6_query_rectification(benchmark, context):
    rows = run_once(benchmark, run_figure6, context)
    mean, std = average_reduction(rows)
    dirty, rectified = normalized_series(rows)
    body = format_figure6(rows) + (
        f"\nnormalized series ranges: dirty [{min(dirty):.3f}, "
        f"{max(dirty):.3f}], rectified [{min(rectified):.3f}, "
        f"{max(rectified):.3f}]"
        f"\naverage reduction = {mean:.2f} +- {std:.2f} "
        "(paper: 0.87 +- 0.25)"
    )
    banner("Figure 6: query error rectification", body)

    assert len(rows) == 48  # 4 queries x 12 datasets
    # Shape: rectification helps on net, and most queries do not get
    # worse.
    assert mean > 0.15
    hurt = [
        r for r in rows if r.reduction is not None and r.reduction < 0
    ]
    assert len(hurt) <= len(rows) // 4
