"""Table 5 — mis-prediction detection precision/recall (§8.2).

Paper's claim: a sizable share of GUARDRAIL-detected errors are the
root cause of mis-predictions (P averages 0.24), while errors GUARDRAIL
misses essentially never flip a prediction (R ≈ 0).
"""

import pytest

from conftest import banner, run_once
from repro.experiments import format_table5, run_table5


@pytest.mark.paper
def test_table5_mispred_detection(benchmark, context):
    rows = run_once(benchmark, run_table5, context)
    banner("Table 5: mis-prediction detection", format_table5(rows))
    assert len(rows) == 12
    # Shape: missed errors rarely flip predictions — the average missed
    # rate stays small.
    missed_rates = [
        r.missed_rate for r in rows if r.missed_rate is not None
    ]
    assert missed_rates, "need at least one dataset with missed errors"
    assert sum(missed_rates) / len(missed_rates) < 0.3
