"""Table 7 — search space, with vs. without MEC reasoning (§8.3).

Paper's claim: learning up to the Markov equivalence class reduces the
structure search space from the astronomically many DAGs on n nodes
(e.g. 2.2 × 10^13 for 40 attributes — ours counts the exact value) to a
handful of class members, enumerable in seconds.
"""

import pytest

from conftest import banner, run_once
from repro.experiments import format_table7, run_table7
from repro.pgm import count_dags


@pytest.mark.paper
def test_table7_search_space(benchmark, context):
    rows = run_once(benchmark, run_table7, context)
    banner("Table 7: search space and enumeration time", format_table7(rows))
    assert len(rows) == 12
    for row in rows:
        # The MEC is always astronomically smaller than the raw space.
        assert row.n_dags_with_mec <= context.max_dags
        assert count_dags(row.n_attributes) > row.n_dags_with_mec
    # Enumeration stays fast even on the widest dataset.
    assert max(r.enumeration_seconds for r in rows) < 60
