"""Policy-wrapper overhead — resilient guards vs. bare guards.

The degradation layer (policy dispatch + circuit breaker + watchdog
bookkeeping) sits on the per-row hot path, so it must be nearly free:
the acceptance bar for the resilience PR is policy-wrapped throughput
within 10% of the bare guards on the healthy path.
"""

import time

import pytest

from conftest import banner
from repro.pgm import DAG, random_sem, sem_to_program
from repro.resilience import (
    CircuitBreaker,
    ResilientBatchGuard,
    ResilientRowGuard,
)
from repro.synth import Guardrail

_N_ROWS = 4000
_REPEATS = 5


@pytest.fixture(scope="module")
def workload():
    """A moderately wide program + clean rows, so per-row guard work
    (not wrapper dispatch) dominates honest measurements."""
    import numpy as np

    rng = np.random.default_rng(7)
    names = [f"a{i}" for i in range(6)]
    dag = DAG(
        names, [(names[i], names[i + 1]) for i in range(len(names) - 1)]
    )
    sem = random_sem(dag, cardinalities=4, determinism=1.0, rng=rng)
    relation = sem.sample(_N_ROWS, rng)
    guardrail = Guardrail.from_program(sem_to_program(sem, relation))
    rows = list(relation.iter_rows())
    return guardrail, relation, rows


def _best_of(fn, repeats=_REPEATS):
    """Best-of-N wall time: robust to scheduler noise on shared CI."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _wrap_row(guardrail):
    return ResilientRowGuard(
        guardrail.row_guard(),
        policy="warn",
        breaker=CircuitBreaker(max_retries=0),
    )


def _wrap_batch(guardrail):
    return ResilientBatchGuard(
        guardrail.batch_guard(),
        policy="warn",
        breaker=CircuitBreaker(max_retries=0),
    )


def test_policy_wrapper_overhead(workload):
    guardrail, relation, rows = workload

    bare_row = guardrail.row_guard()
    wrapped_row = _wrap_row(guardrail)
    bare_batch = guardrail.batch_guard()
    wrapped_batch = _wrap_batch(guardrail)

    # Warm-up: compile kernels / memoize codecs outside the timings.
    for guard in (bare_row, wrapped_row):
        guard.check(rows[0])
    bare_batch.check_relation(relation)
    wrapped_batch.check_batch(rows[:64])

    t_bare_row = _best_of(lambda: [bare_row.check(r) for r in rows])
    t_wrapped_row = _best_of(lambda: [wrapped_row.check(r) for r in rows])
    t_bare_batch = _best_of(lambda: list(bare_batch.stream(rows)))
    t_wrapped_batch = _best_of(lambda: list(wrapped_batch.stream(rows)))

    row_ratio = t_wrapped_row / t_bare_row
    batch_ratio = t_wrapped_batch / t_bare_batch
    body = (
        f"rows: {_N_ROWS}, best of {_REPEATS} runs\n"
        f"row guard   bare {t_bare_row * 1e3:8.2f} ms   "
        f"wrapped {t_wrapped_row * 1e3:8.2f} ms   "
        f"ratio {row_ratio:.3f}\n"
        f"batch guard bare {t_bare_batch * 1e3:8.2f} ms   "
        f"wrapped {t_wrapped_batch * 1e3:8.2f} ms   "
        f"ratio {batch_ratio:.3f}"
    )
    banner("Guard policy overhead", body)

    # The acceptance bar: within 10% of bare-guard throughput.
    assert row_ratio < 1.10, f"row wrapper overhead {row_ratio:.3f}x"
    assert batch_ratio < 1.10, f"batch wrapper overhead {batch_ratio:.3f}x"


def test_wrapped_verdicts_match_bare(workload):
    guardrail, _, rows = workload
    bare = guardrail.row_guard()
    wrapped = _wrap_row(guardrail)
    sample = rows[:200]
    assert [bare.check(r).ok for r in sample] == [
        wrapped.check(r).ok for r in sample
    ]
