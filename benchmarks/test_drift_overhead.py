"""Drift-instrumentation overhead — instrumented guards vs. bare guards.

The drift hook sits on the guard's per-row hot path (one inlined
countdown decrement; every k-th row pays a buffer append, and all
statistics are amortized to the window flush), so it must be nearly
free: the acceptance bar for the self-healing PR is drift-instrumented
throughput within 10% of the bare guards.

Each run also records its measurements against ``BENCH_guard.json``.
That file holds a ``baseline`` object (this benchmark's committed
reference numbers) plus a ``trajectory`` list (worker-scaling entries
appended by ``test_scaling_workers.py``); set ``REPRO_UPDATE_BENCH=1``
to rewrite the baseline on a quiet machine — the trajectory is
preserved.  ``benchmarks/README.md`` documents the format.
"""

import json
import os
import time
from pathlib import Path

import pytest

from conftest import banner
from repro.pgm import DAG, random_sem, sem_to_program
from repro.resilience import DriftDetector
from repro.synth import Guardrail

_N_ROWS = 20_000
_REPEATS = 9
_BASELINE = Path(__file__).resolve().parent / "BENCH_guard.json"


@pytest.fixture(scope="module")
def workload():
    """The same moderately wide workload the policy-overhead benchmark
    uses, so the two overhead numbers are directly comparable."""
    import numpy as np

    rng = np.random.default_rng(7)
    names = [f"a{i}" for i in range(6)]
    dag = DAG(
        names, [(names[i], names[i + 1]) for i in range(len(names) - 1)]
    )
    sem = random_sem(dag, cardinalities=4, determinism=1.0, rng=rng)
    relation = sem.sample(_N_ROWS, rng)
    guardrail = Guardrail.from_program(sem_to_program(sem, relation))
    rows = list(relation.iter_rows())
    return guardrail, relation, rows


def _paired(bare_fn, drift_fn, repeats=_REPEATS):
    """Paired timing: (best bare, best drifted, median pair ratio).

    Each repeat times the two callables back to back (alternating
    which goes first), so both legs of a pair share the machine's load
    conditions; the *median* of the per-pair ratios is then robust to
    load spikes that would skew a single best-of series either way.
    """
    import statistics

    def once(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    bare_times, drift_times, ratios = [], [], []
    for i in range(repeats):
        if i % 2:
            drift_times.append(once(drift_fn))
            bare_times.append(once(bare_fn))
        else:
            bare_times.append(once(bare_fn))
            drift_times.append(once(drift_fn))
        ratios.append(drift_times[-1] / bare_times[-1])
    return min(bare_times), min(drift_times), statistics.median(ratios)


def _detector(relation, guardrail) -> DriftDetector:
    return DriftDetector.from_training(
        relation, program=guardrail.program, window=512
    )


def _record_baseline(measurements: dict) -> str:
    """Compare against (or rewrite) the committed baseline file.

    ``BENCH_guard.json`` is ``{"baseline": {...}, "trajectory": [...]}``;
    only the baseline object belongs to this benchmark, and a rewrite
    keeps the scaling trajectory intact.
    """
    payload = (
        json.loads(_BASELINE.read_text()) if _BASELINE.exists() else {}
    )
    if "baseline" not in payload and payload:
        # Migrate the pre-trajectory flat layout in place.
        payload = {"baseline": payload, "trajectory": []}
    if os.environ.get("REPRO_UPDATE_BENCH") == "1" or not payload:
        payload["baseline"] = measurements
        payload.setdefault("trajectory", [])
        _BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        return f"baseline written to {_BASELINE.name}"
    baseline = payload["baseline"]
    lines = []
    for key, value in measurements.items():
        reference = baseline.get(key)
        if isinstance(reference, (int, float)) and reference:
            lines.append(
                f"{key}: {value:.4f} (baseline {reference:.4f}, "
                f"{value / reference:.2f}x)"
            )
    return "vs committed baseline:\n  " + "\n  ".join(lines)


def test_drift_instrumentation_overhead(workload):
    guardrail, relation, rows = workload

    bare_row = guardrail.row_guard()
    drift_row = guardrail.row_guard()
    drift_row.attach_drift(_detector(relation, guardrail))
    bare_batch = guardrail.batch_guard()
    drift_batch = guardrail.batch_guard()
    drift_batch.attach_drift(_detector(relation, guardrail))

    # Warm-up: compile kernels / memoize codecs outside the timings.
    for guard in (bare_row, drift_row):
        guard.check(rows[0])
    bare_batch.check_batch(rows[:64])
    drift_batch.check_batch(rows[:64])

    t_bare_row, t_drift_row, row_ratio = _paired(
        lambda: [bare_row.check(r) for r in rows],
        lambda: [drift_row.check(r) for r in rows],
    )
    t_bare_batch, t_drift_batch, batch_ratio = _paired(
        lambda: list(bare_batch.stream(rows)),
        lambda: list(drift_batch.stream(rows)),
    )
    measurements = {
        "n_rows": _N_ROWS,
        "row_bare_ms": t_bare_row * 1e3,
        "row_drift_ms": t_drift_row * 1e3,
        "row_ratio": row_ratio,
        "batch_bare_ms": t_bare_batch * 1e3,
        "batch_drift_ms": t_drift_batch * 1e3,
        "batch_ratio": batch_ratio,
    }
    body = (
        f"rows: {_N_ROWS}, {_REPEATS} paired runs, "
        f"ratio = median of per-pair ratios\n"
        f"row guard   bare {t_bare_row * 1e3:8.2f} ms   "
        f"drifted {t_drift_row * 1e3:8.2f} ms   ratio {row_ratio:.3f}\n"
        f"batch guard bare {t_bare_batch * 1e3:8.2f} ms   "
        f"drifted {t_drift_batch * 1e3:8.2f} ms   ratio {batch_ratio:.3f}\n"
        + _record_baseline(measurements)
    )
    banner("Drift instrumentation overhead", body)

    # The acceptance bar: within 10% of bare-guard throughput.
    assert row_ratio < 1.10, f"row drift overhead {row_ratio:.3f}x"
    assert batch_ratio < 1.10, f"batch drift overhead {batch_ratio:.3f}x"


def test_instrumented_verdicts_match_bare(workload):
    guardrail, relation, rows = workload
    bare = guardrail.row_guard()
    drifted = guardrail.row_guard()
    drifted.attach_drift(_detector(relation, guardrail))
    sample = rows[:200]
    assert [bare.check(r).ok for r in sample] == [
        drifted.check(r).ok for r in sample
    ]


def test_detector_actually_fed(workload):
    """The overhead number is honest only if the detector really ran."""
    guardrail, relation, rows = workload
    guard = guardrail.row_guard()
    detector = _detector(relation, guardrail)
    guard.attach_drift(detector)
    for row in rows:
        guard.check(row)
    # The detector evaluates 1-in-k sampled windows of 512 rows.
    expected = _N_ROWS // (512 * detector.sample_every)
    assert detector.stats.windows_evaluated == expected
    assert expected >= 1
