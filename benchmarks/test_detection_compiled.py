"""Compiled detection vs. the seed per-branch loop (the PR-2 fast path).

Claim: funnelling :func:`repro.errors.detect_errors` through the
compiled kernels of :mod:`repro.dsl.compiled` (first-match lookup
tables + per-relation result memoization) makes repeated detection over
a large relation at least 3x faster than the seed implementation's
per-branch ``branch_masks`` loop, at identical verdicts.
"""

import os
import time

import numpy as np
import pytest

from conftest import banner, run_once
from repro.dsl import (
    Branch,
    Condition,
    Program,
    Statement,
    branch_masks,
    clear_dsl_caches,
)
from repro.errors import detect_errors
from repro.errors.detect import Violation
from repro.relation import Relation

N_ROWS = int(os.environ.get("REPRO_SCALE_ROWS", "50000"))
N_VALUES = 50
NOISE = 0.005
ITERATIONS = 10


def _build_case() -> tuple[Program, Relation]:
    rng = np.random.default_rng(42)
    chain = ["a", "b", "c", "d"]
    values = [f"v{k}" for k in range(N_VALUES)]
    current = rng.integers(N_VALUES, size=N_ROWS)
    columns = {}
    for attr in chain:
        noise = rng.random(N_ROWS) < NOISE
        column = np.where(
            noise, rng.integers(N_VALUES, size=N_ROWS), current
        )
        columns[attr] = [values[int(code)] for code in column]
        current = column
    relation = Relation.from_columns(columns)
    statements = []
    for det, dep in zip(chain, chain[1:]):
        branches = tuple(
            Branch(Condition(((det, value),)), dep, value)
            for value in values
        )
        statements.append(Statement((det,), dep, branches))
    return Program(tuple(statements)), relation


def _seed_detect(program: Program, relation: Relation):
    """The seed (pre-compiled) detect_errors body, verbatim."""
    row_mask = np.zeros(relation.n_rows, dtype=bool)
    violations = []
    for statement in program:
        for branch in statement.branches:
            _, violating = branch_masks(branch, relation)
            if not violating.any():
                continue
            row_mask |= violating
            for row in np.nonzero(violating)[0]:
                violations.append(Violation(int(row), branch))
    return row_mask, violations


def _race() -> dict:
    program, relation = _build_case()
    clear_dsl_caches()
    start = time.perf_counter()
    for _ in range(ITERATIONS):
        compiled_result = detect_errors(program, relation)
    compiled_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(ITERATIONS):
        seed_mask, _ = _seed_detect(program, relation)
    seed_seconds = time.perf_counter() - start
    return {
        "compiled_seconds": compiled_seconds,
        "seed_seconds": seed_seconds,
        "speedup": seed_seconds / compiled_seconds,
        "flagged": compiled_result.n_flagged_rows,
        "n_rows": relation.n_rows,
        "n_branches": sum(len(s.branches) for s in program),
    }


@pytest.mark.paper
def test_compiled_detection_speedup(benchmark):
    stats = run_once(benchmark, _race)
    body = (
        f"{stats['n_rows']} rows, {stats['n_branches']} branches, "
        f"{ITERATIONS} detection passes\n"
        f"seed per-branch loop : {stats['seed_seconds']:.3f}s\n"
        f"compiled kernels     : {stats['compiled_seconds']:.3f}s\n"
        f"speedup              : {stats['speedup']:.1f}x "
        f"({stats['flagged']} rows flagged)"
    )
    banner("Compiled detection vs seed loop", body)
    assert stats["flagged"] > 0
    assert stats["speedup"] >= 3.0
