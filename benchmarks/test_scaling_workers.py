"""Worker-scaling benchmark — sharded detection and parallel synthesis.

The multicore tentpole promises two things at once: **speed** (row
shards across forked workers) and **bit-identical results** (every
parallel path reduces in serial order).  This module measures the
first and asserts the second on the same workload: the 6-attribute
chain SEM at ``REPRO_SCALE_ROWS_PARALLEL`` rows (default 150 000;
``REPRO_FULL=1`` runs 1 200 000, the ISSUE-6 acceptance size).

Speedup assertions only run where they are measurable — a live
``>= 2.5x`` at 4 workers needs at least 4 physical cores, so on
smaller machines the equivalence half still runs and the scaling half
is recorded but not asserted.  The committed record lives in
``BENCH_synth.json`` / ``BENCH_guard.json`` as ``trajectory`` entries
(see ``benchmarks/README.md`` for the format);
``REPRO_UPDATE_BENCH=1`` appends this run's measurements.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import banner
from repro.errors import detect_errors
from repro.parallel import WorkerPool, fork_available
from repro.pgm import DAG, random_sem, sem_to_program
from repro.synth import GuardrailConfig, synthesize

_FULL = os.environ.get("REPRO_FULL") == "1"
_N_ROWS = int(
    os.environ.get(
        "REPRO_SCALE_ROWS_PARALLEL", "1200000" if _FULL else "150000"
    )
)
_WORKER_COUNTS = (1, 2, 4)
_HERE = Path(__file__).resolve().parent
_BENCH_SYNTH = _HERE / "BENCH_synth.json"
_BENCH_GUARD = _HERE / "BENCH_guard.json"
_ACCEPTANCE_ROWS = 1_000_000
_ACCEPTANCE_SPEEDUP = 2.5

_can_fork = fork_available()
_cores = os.cpu_count() or 1
_live_scaling = _can_fork and _cores >= 4 and _N_ROWS >= _ACCEPTANCE_ROWS


@pytest.fixture(scope="module")
def workload():
    """Chain SEM sample + its ground-truth guard program."""
    rng = np.random.default_rng(13)
    names = [f"a{i}" for i in range(6)]
    dag = DAG(
        names, [(names[i], names[i + 1]) for i in range(len(names) - 1)]
    )
    sem = random_sem(dag, cardinalities=4, determinism=0.95, rng=rng)
    relation = sem.sample(_N_ROWS, rng)
    program = sem_to_program(sem, relation)
    return relation, program


def _best_of(fn, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _append_trajectory(path: Path, entry: dict) -> None:
    """Append one scaling entry to a BENCH_*.json trajectory."""
    payload = json.loads(path.read_text()) if path.exists() else {}
    if "trajectory" not in payload:
        payload = (
            {"baseline": payload, "trajectory": []}
            if payload
            else {"trajectory": []}
        )
    payload["trajectory"].append(entry)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_detection_scan_scaling(workload):
    relation, program = workload

    def fresh():
        # A new Relation identity over the same (zero-copy) columns:
        # detection results are memoized per relation, and a cache hit
        # would time a dict lookup instead of a scan.
        return relation.slice_rows(0, relation.n_rows)

    detect_errors(program, relation)  # warm the compile cache
    baseline = detect_errors(program, fresh())
    serial_s = _best_of(lambda: detect_errors(program, fresh()))

    times = {}
    for workers in _WORKER_COUNTS:
        pool = WorkerPool(workers, min_shard_rows=1024)
        result = detect_errors(program, fresh(), pool=pool)
        assert np.array_equal(result.row_mask, baseline.row_mask)
        assert [(v.row, v.attribute) for v in result.violations] == [
            (v.row, v.attribute) for v in baseline.violations
        ]
        times[workers] = _best_of(
            lambda: detect_errors(program, fresh(), pool=pool)
        )

    speedup = serial_s / times[4]
    lines = [f"rows: {relation.n_rows}, cores: {_cores}"]
    lines.append(f"serial        {serial_s * 1e3:9.1f} ms")
    for workers, t in times.items():
        lines.append(
            f"{workers} worker(s)   {t * 1e3:9.1f} ms   "
            f"speedup {serial_s / t:.2f}x"
        )
    banner("Sharded detection scaling", "\n".join(lines))

    if os.environ.get("REPRO_UPDATE_BENCH") == "1":
        _append_trajectory(
            _BENCH_GUARD,
            {
                "date": time.strftime("%Y-%m-%d"),
                "benchmark": "guard_scan_scaling",
                "cpu_count": _cores,
                "n_rows": relation.n_rows,
                "n_attributes": len(relation.names),
                "serial_s": round(serial_s, 4),
                "workers_s": {
                    str(w): round(t, 4) for w, t in times.items()
                },
                "speedup_4w": round(speedup, 2),
                "note": "live run of test_detection_scan_scaling",
            },
        )
    if _live_scaling:
        assert speedup >= _ACCEPTANCE_SPEEDUP, (
            f"detection speedup {speedup:.2f}x at 4 workers "
            f"(need {_ACCEPTANCE_SPEEDUP}x)"
        )


def test_synthesis_scaling(workload):
    relation, _ = workload
    config = GuardrailConfig(epsilon=0.08, min_support=8, seed=5)

    results, times = {}, {}
    serial_s = _best_of(lambda: synthesize(relation, config), repeats=1)
    baseline = synthesize(relation, config)
    for workers in _WORKER_COUNTS:
        pool = WorkerPool(workers, min_shard_rows=1024)
        results[workers] = synthesize(relation, config, workers=pool)
        times[workers] = _best_of(
            lambda: synthesize(relation, config, workers=pool), repeats=1
        )

    for workers, result in results.items():
        assert result.program == baseline.program, f"workers={workers}"
        assert result.coverage == baseline.coverage
        assert (
            result.pc_result.n_ci_tests == baseline.pc_result.n_ci_tests
        )

    speedup = serial_s / times[4]
    lines = [f"rows: {relation.n_rows}, cores: {_cores}"]
    lines.append(f"serial        {serial_s:8.2f} s")
    for workers, t in times.items():
        lines.append(
            f"{workers} worker(s)   {t:8.2f} s   "
            f"speedup {serial_s / t:.2f}x"
        )
    banner("Parallel synthesis scaling", "\n".join(lines))

    if os.environ.get("REPRO_UPDATE_BENCH") == "1":
        _append_trajectory(
            _BENCH_SYNTH,
            {
                "date": time.strftime("%Y-%m-%d"),
                "benchmark": "synthesis_and_scan_scaling",
                "cpu_count": _cores,
                "n_rows": relation.n_rows,
                "n_attributes": len(relation.names),
                "synth_serial_s": round(serial_s, 3),
                "synth_workers_s": {
                    str(w): round(t, 3) for w, t in times.items()
                },
                "speedup_4w": round(speedup, 2),
                "note": "live run of test_synthesis_scaling",
            },
        )
    if _live_scaling:
        assert speedup >= _ACCEPTANCE_SPEEDUP, (
            f"synthesis speedup {speedup:.2f}x at 4 workers "
            f"(need {_ACCEPTANCE_SPEEDUP}x)"
        )


def _supervision_probe(x):
    """A CPU-bound ~5ms task (module-level: pickled by reference)."""
    values = np.arange(1_000_000, dtype=np.float64) % 97.0
    return float(np.sqrt(values + x).sum())


@pytest.mark.skipif(not _can_fork, reason="fork unavailable")
def test_supervision_overhead_on_healthy_path():
    """The fault-tolerant pool's supervision machinery (per-worker
    pipes, ``connection.wait`` collection, deadline bookkeeping) must
    cost < 5% wall-clock vs a raw ``multiprocessing.Pool`` on the same
    healthy workload — fault tolerance is free until a fault happens."""
    import multiprocessing as mp

    items = list(range(64))
    workers = 4
    chunksize = max(1, len(items) // (workers * 4))
    expected = [_supervision_probe(x) for x in items]

    def raw_run():
        with mp.get_context("fork").Pool(workers) as raw:
            assert (
                raw.map(_supervision_probe, items, chunksize=chunksize)
                == expected
            )

    supervised_pool = WorkerPool(workers, min_shard_rows=1)

    def supervised_run():
        assert supervised_pool.map(_supervision_probe, items) == expected
        assert supervised_pool.last_faults == ()

    raw_s = _best_of(raw_run, repeats=3)
    supervised_s = _best_of(supervised_run, repeats=3)
    overhead = supervised_s / raw_s - 1.0
    banner(
        "Supervision overhead (healthy path)",
        f"items: {len(items)}, workers: {workers}, cores: {_cores}\n"
        f"raw mp.Pool      {raw_s * 1e3:9.1f} ms\n"
        f"supervised pool  {supervised_s * 1e3:9.1f} ms\n"
        f"overhead         {overhead:+.1%}  (budget < +5%)",
    )
    if os.environ.get("REPRO_UPDATE_BENCH") == "1":
        _append_trajectory(
            _BENCH_GUARD,
            {
                "date": time.strftime("%Y-%m-%d"),
                "benchmark": "supervision_overhead",
                "cpu_count": _cores,
                "n_items": len(items),
                "raw_s": round(raw_s, 4),
                "supervised_s": round(supervised_s, 4),
                "overhead": round(overhead, 4),
                "note": "live run of test_supervision_overhead",
            },
        )
    if _cores >= 4:
        assert overhead < 0.05, (
            f"supervision overhead {overhead:+.1%} on the healthy path "
            f"(budget < +5%)"
        )


def test_recorded_trajectory_meets_acceptance():
    """The committed record must witness the ISSUE-6 acceptance bar:
    >= 2.5x at 4 workers on a >= 1M-row synthesis+scan workload."""
    payload = json.loads(_BENCH_SYNTH.read_text())
    qualifying = [
        entry
        for entry in payload["trajectory"]
        if entry.get("n_rows", 0) >= _ACCEPTANCE_ROWS
        and entry.get("cpu_count", 0) >= 4
    ]
    assert qualifying, "no >=1M-row, >=4-core entry in BENCH_synth.json"
    best = max(entry["speedup_4w"] for entry in qualifying)
    assert best >= _ACCEPTANCE_SPEEDUP

    guard_payload = json.loads(_BENCH_GUARD.read_text())
    assert guard_payload["baseline"]  # drift-overhead reference numbers
    assert any(
        entry.get("n_rows", 0) >= _ACCEPTANCE_ROWS
        for entry in guard_payload["trajectory"]
    )
