"""Design-choice ablation — constraint-based (PC) vs score-based (HC)
structure learning behind the same synthesis pipeline.

Not a paper table: DESIGN.md calls for ablation benches on the
pipeline's design choices, and the learner backend is the biggest one.
Expected shape: both backends produce usable programs; PC (the paper's
choice) is markedly faster on wide datasets, while hill climbing is a
competitive but slower alternative.
"""

import pytest

from conftest import banner, run_once
from repro.experiments import format_learner_table, run_learner_table

# Narrow/medium datasets; hill climbing is quadratic in attribute count.
ABLATION_DATASETS = [1, 2, 4, 5, 6, 8, 9, 12]


@pytest.mark.paper
def test_learner_ablation(benchmark, context):
    rows = run_once(
        benchmark,
        run_learner_table,
        context,
        dataset_ids=ABLATION_DATASETS,
    )
    banner(
        "Ablation: PC vs BIC hill climbing", format_learner_table(rows)
    )
    assert len(rows) == len(ABLATION_DATASETS)
    # Both backends find real structure somewhere.
    assert any(r.edge_f1_pc > 0.3 for r in rows)
    assert any(r.edge_f1_hc > 0.3 for r in rows)
    # PC is the cheaper backend overall (the paper's design choice).
    assert sum(r.seconds_pc for r in rows) < sum(
        r.seconds_hc for r in rows
    )
