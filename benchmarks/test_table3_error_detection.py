"""Table 3 — error-detection F1/MCC: GUARDRAIL vs TANE, CTANE, FDX (§8.1).

Paper's claim: GUARDRAIL ranks first in 17 of the 24 (dataset × metric)
comparisons; TANE/CTANE overfit, FDX misorients and dies on one dataset.
"""

import math

import pytest

from conftest import banner, run_once
from repro.experiments import format_table3, run_table3, wins


@pytest.mark.paper
def test_table3_error_detection(benchmark, context):
    rows = run_once(benchmark, run_table3, context)
    n_wins = wins(rows)
    body = format_table3(rows) + (
        f"\nGUARDRAIL ranks first in {n_wins} / 24 comparisons "
        "(paper: 17 / 24)"
    )
    banner("Table 3: error detection effectiveness", body)

    assert len(rows) == 12
    # Shape assertions: GUARDRAIL wins a clear majority, and its scores
    # are meaningful (not degenerate) on most datasets.
    assert n_wins >= 12
    informative = [
        r for r in rows
        if r.guardrail.f1 is not None and not math.isnan(r.guardrail.f1)
        and r.guardrail.f1 > 0
    ]
    assert len(informative) >= 9
