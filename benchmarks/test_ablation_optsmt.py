"""§8.3 ablation — the OptSMT-style monolithic synthesis baseline.

Paper's claim: handing the whole synthesis problem to an optimizing
solver yields tens of millions of clauses and times out (24h) even on
the four-attribute dataset, while the MEC pipeline finishes in seconds.
We reproduce both halves: the closed-form clause counts of the
monolithic encoding per dataset, and wall-clock of the exact
branch-and-bound on widening attribute prefixes vs. GUARDRAIL.
"""

import pytest

from conftest import banner, run_once
from repro.experiments import (
    clause_counts,
    format_clauses,
    format_scaling,
    scaling_study,
)


@pytest.mark.paper
def test_optsmt_clause_explosion(benchmark, context):
    rows = run_once(benchmark, clause_counts, context)
    banner("OptSMT ablation: clause counts", format_clauses(rows))
    assert len(rows) == 12
    # The paper reports tens of millions of clauses; at our scaled row
    # counts the encoding still reaches millions on the wide datasets.
    assert max(r.n_clauses for r in rows) > 1_000_000


@pytest.mark.paper
def test_optsmt_scaling_vs_guardrail(benchmark, context):
    import dataclasses

    # A permissive ε keeps many candidate statements alive, exposing
    # the combinatorial branching the monolithic solver must search.
    stress = dataclasses.replace(context, epsilon=0.1, min_support=2)
    rows = run_once(
        benchmark,
        scaling_study,
        stress,
        dataset_key=1,  # Adult: densely constrained attribute prefixes
        widths=(4, 6, 8, 10, 12),
        time_limit=3.0,
    )
    banner("OptSMT ablation: solve-time scaling", format_scaling(rows))
    assert rows
    # Shape: the solver's time explodes (hits its budget) as the
    # attribute count grows, while GUARDRAIL stays fast.
    assert rows[-1].optsmt_timed_out
    assert rows[-1].guardrail_seconds < 30
