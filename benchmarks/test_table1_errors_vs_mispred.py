"""Table 1 — injected errors vs. ML mis-predictions (paper §5).

Paper's claim: error counts and error-induced mis-prediction counts are
strongly rank-correlated (ρ = 0.947, p < 0.05), motivating constraint-
based guarding of ML-integrated queries.
"""

import pytest

from conftest import banner, run_once
from repro.experiments import (
    error_mispred_correlation,
    format_table1,
    run_table1,
)


@pytest.mark.paper
def test_table1_errors_vs_mispredictions(benchmark, context):
    rows = run_once(benchmark, run_table1, context)
    correlation = error_mispred_correlation(rows)
    body = format_table1(rows) + (
        f"\nSpearman rho = {correlation.coefficient:.3f} "
        f"(p = {correlation.p_value:.3g}); paper: rho = 0.947"
    )
    banner("Table 1: errors vs. mis-predictions", body)
    assert len(rows) == 12
    assert all(r.n_errors > 0 for r in rows)
    # Mis-predictions occur somewhere (the §5 phenomenon exists).
    assert any(r.n_mispredictions > 0 for r in rows)
