"""Table 4 — offline synthesis processing time (§8.1).

Paper's claim: synthesis is a manageable one-off cost, growing with the
attribute count but moderated by MEC structure and the statement-level
fill cache.  (Absolute seconds differ: the paper used a 32-core server,
this reproduction runs scaled workloads on one core.)
"""

import pytest

from conftest import banner, run_once
from repro.experiments import format_table4, run_table4


@pytest.mark.paper
def test_table4_synthesis_time(benchmark, context):
    rows = run_once(benchmark, run_table4, context)
    banner("Table 4: offline synthesis time", format_table4(rows))
    assert len(rows) == 12
    assert all(r.total_seconds > 0 for r in rows)
    # Shape: the widest datasets are among the slowest.
    by_attrs = sorted(rows, key=lambda r: r.n_attributes)
    narrow = sum(r.total_seconds for r in by_attrs[:4])
    wide = sum(r.total_seconds for r in by_attrs[-4:])
    assert wide > narrow
    # The fill cache sees real reuse across the MEC's DAGs.
    assert any(r.cache_hits > 0 for r in rows)
