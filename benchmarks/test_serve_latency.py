"""Serving-layer latency/throughput — the ``repro.serve`` cost model.

Drives ``GuardServer`` with a closed-loop workload (N tenants x M
concurrent clients per tenant, each submitting a fixed number of
``check`` requests) and records the request-latency percentiles the
micro-batcher produces plus end-to-end throughput.  The interesting
number is the p95: a request admitted first into an empty batch waits
up to ``max_wait_ms`` for co-riders, so p95 should sit near
``max_wait_ms`` plus one batch-kernel flush — far below N serial
per-row checks.

Each run also records its measurements against ``BENCH_serve.json``
(``{"baseline": {...}, "trajectory": [...]}``, the layout
``benchmarks/README.md`` documents); set ``REPRO_UPDATE_BENCH=1`` to
rewrite the baseline on a quiet machine.
"""

import asyncio
import json
import os
import time
from pathlib import Path

import pytest

from conftest import banner
from repro.pgm import DAG, random_sem, sem_to_program
from repro.serve import GuardServer, ServeStatus, TenantConfig
from repro.synth import Guardrail

_TENANTS = 4
_CLIENTS = 16
_REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", "250"))
_BASELINE = Path(__file__).resolve().parent / "BENCH_serve.json"


@pytest.fixture(scope="module")
def workload():
    """A 6-attribute chain guardrail plus a clean request stream."""
    import numpy as np

    rng = np.random.default_rng(7)
    names = [f"a{i}" for i in range(6)]
    dag = DAG(
        names, [(names[i], names[i + 1]) for i in range(len(names) - 1)]
    )
    sem = random_sem(dag, cardinalities=4, determinism=1.0, rng=rng)
    relation = sem.sample(4096, rng)
    program = sem_to_program(sem, relation)
    rows = list(relation.iter_rows())
    return program, rows


async def _drive(server: GuardServer, names, rows) -> int:
    """Closed-loop clients; returns the number of completed requests."""
    completed = 0

    async def client(tenant: str, client_index: int) -> int:
        done = 0
        for j in range(_REQUESTS):
            row = rows[(client_index * _REQUESTS + j) % len(rows)]
            response = await server.check(tenant, row)
            while response.status is ServeStatus.REJECTED:
                await asyncio.sleep(response.retry_after)
                response = await server.check(tenant, row)
            assert response.ok
            done += 1
        return done

    async with server:
        results = await asyncio.gather(
            *(
                client(name, k)
                for name in names
                for k in range(_CLIENTS)
            )
        )
    completed = sum(results)
    return completed


def _measure(program, rows, state_dir=None) -> dict:
    server = GuardServer(state_dir=state_dir)
    names = [f"tenant-{i}" for i in range(_TENANTS)]
    for name in names:
        server.register(
            name,
            Guardrail.from_program(program),
            TenantConfig(max_batch=64, max_wait_ms=2.0),
        )
    start = time.perf_counter()
    completed = asyncio.run(_drive(server, names, rows))
    elapsed = time.perf_counter() - start
    assert completed == _TENANTS * _CLIENTS * _REQUESTS

    snapshots = [server.tenant(name).metrics for name in names]
    p50 = max(m.percentile_ms(0.50) for m in snapshots)
    p95 = max(m.percentile_ms(0.95) for m in snapshots)
    fill = sum(m.rows_flushed for m in snapshots) / max(
        1, sum(m.batches for m in snapshots)
    )
    return {
        "tenants": _TENANTS,
        "clients_per_tenant": _CLIENTS,
        "requests_per_client": _REQUESTS,
        "completed": completed,
        "throughput_rps": completed / elapsed,
        "p50_ms": p50,
        "p95_ms": p95,
        "mean_batch_fill": fill,
        "wall_s": elapsed,
    }


def _record_baseline(measurements: dict) -> str:
    """Compare against (or rewrite) the committed baseline file."""
    payload = (
        json.loads(_BASELINE.read_text()) if _BASELINE.exists() else {}
    )
    if os.environ.get("REPRO_UPDATE_BENCH") == "1" or not payload:
        payload["baseline"] = measurements
        payload.setdefault("trajectory", [])
        _BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        return f"baseline written to {_BASELINE.name}"
    baseline = payload["baseline"]
    lines = []
    for key in ("throughput_rps", "p50_ms", "p95_ms"):
        reference = baseline.get(key)
        if isinstance(reference, (int, float)) and reference:
            value = measurements[key]
            lines.append(
                f"{key}: {value:.2f} (baseline {reference:.2f}, "
                f"{value / reference:+.1%} of reference)"
            )
    return "vs committed baseline:\n  " + "\n  ".join(lines)


def test_serve_latency_and_throughput(workload):
    program, rows = workload
    measurements = _measure(program, rows)

    banner(
        "Serving layer latency/throughput",
        "\n".join(
            [
                f"{_TENANTS} tenants x {_CLIENTS} clients x "
                f"{_REQUESTS} requests (closed loop)",
                f"throughput   {measurements['throughput_rps']:10.0f} req/s",
                f"p50 latency  {measurements['p50_ms']:10.2f} ms",
                f"p95 latency  {measurements['p95_ms']:10.2f} ms",
                f"batch fill   {measurements['mean_batch_fill']:10.1f} "
                "rows/flush",
            ]
        )
        + "\n"
        + _record_baseline(measurements),
    )

    # Micro-batching must actually coalesce under concurrent load —
    # a fill near 1 means the batcher is flushing per request and the
    # serving layer is just expensive ceremony.
    assert measurements["mean_batch_fill"] >= 2.0
    # The latency bound the config promises: one max_wait window plus
    # generous flush/scheduling headroom.
    assert measurements["p95_ms"] < 250.0


def _record_durable(measurements: dict) -> str:
    """Record (or report) the durable variant in ``BENCH_serve.json``."""
    payload = (
        json.loads(_BASELINE.read_text()) if _BASELINE.exists() else {}
    )
    if os.environ.get("REPRO_UPDATE_BENCH") == "1" or (
        "durable" not in payload
    ):
        payload["durable"] = measurements
        payload.setdefault("trajectory", [])
        _BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        return f"durable entry written to {_BASELINE.name}"
    reference = payload["durable"]
    return (
        f"recorded durable: {reference['throughput_rps']:.0f} req/s, "
        f"p95 {reference['p95_ms']:.2f} ms"
    )


def test_durable_serve_overhead_within_bound(workload, tmp_path):
    """The durable variant (``state_dir=``) stays within 10% of the
    in-memory server on throughput and p95 — steady-state traffic is
    never journaled, so the WAL must cost nothing on the hot path."""
    program, rows = workload

    def ratios(attempt: int):
        baseline = _measure(program, rows)
        durable = _measure(
            program, rows, state_dir=tmp_path / f"state-{attempt}"
        )
        return (
            durable,
            durable["throughput_rps"] / baseline["throughput_rps"],
            durable["p95_ms"] / max(baseline["p95_ms"], 1e-9),
        )

    durable, throughput_ratio, p95_ratio = ratios(0)
    if throughput_ratio < 0.90 or p95_ratio > 1.10:
        # One retry absorbs scheduler jitter on a loaded machine.
        durable, throughput_ratio, p95_ratio = ratios(1)

    measurements = dict(
        durable,
        throughput_ratio=throughput_ratio,
        p95_ratio=p95_ratio,
    )
    banner(
        "Durable serving overhead (state_dir journal)",
        "\n".join(
            [
                f"durable throughput {durable['throughput_rps']:10.0f} "
                f"req/s ({throughput_ratio:.1%} of in-memory)",
                f"durable p95        {durable['p95_ms']:10.2f} ms "
                f"({p95_ratio:.1%} of in-memory)",
            ]
        )
        + "\n"
        + _record_durable(measurements),
    )
    assert throughput_ratio >= 0.90, (
        f"durable serving lost {1 - throughput_ratio:.1%} throughput "
        f"(bound: 10%)"
    )
    assert p95_ratio <= 1.10, (
        f"durable serving inflated p95 by {p95_ratio - 1:.1%} (bound: 10%)"
    )


async def _storm(server: GuardServer, rows, total: int, duration: float):
    """Open-loop arrivals: ``total`` requests over ``duration`` seconds
    regardless of completions (the arrival process a shedding server
    actually faces).  Returns the settled responses and elapsed time
    from first submission to last resolution."""
    futures = []
    ticks = 40
    sent = 0
    start = time.perf_counter()
    for tick in range(ticks):
        quota = (total * (tick + 1)) // ticks
        while sent < quota:
            futures.append(
                asyncio.ensure_future(
                    server.check("tenant-0", rows[sent % len(rows)])
                )
            )
            sent += 1
        await asyncio.sleep(duration / ticks)
    responses = await asyncio.gather(*futures)
    return responses, time.perf_counter() - start


def _throttled_guardrail(program, delay_s: float):
    """A correct guardrail whose guards sleep ``delay_s`` per call.

    The raw guardrail clears ~20k req/s — far more than an in-process
    open-loop driver can offer at 10x, so a storm against it measures
    driver CPU, not shedding.  Throttling makes capacity small and
    the 10x arrival process real."""

    class _Throttled:
        def __init__(self, inner):
            self._inner = inner

        def check_batch(self, batch):
            time.sleep(delay_s)
            return self._inner.check_batch(batch)

        def check_row(self, row):
            time.sleep(delay_s)
            return self._inner.check_row(row)

        def rectify(self, row):
            time.sleep(delay_s)
            return self._inner.rectify(row)

    class _ThrottledGuardrail(Guardrail):
        def batch_guard(self, batch_size: int = 256):
            return _Throttled(super().batch_guard(batch_size))

        def row_guard(self):
            return _Throttled(super().row_guard())

    return _ThrottledGuardrail.from_program(program)


def _measure_overload(program, rows) -> dict:
    """Calibrate single-tenant capacity, then storm the same config at
    1x/4x/10x offered load and record goodput + admitted-request p95."""

    from repro.resilience import BrownoutConfig

    def server() -> GuardServer:
        fresh = GuardServer(
            brownout=BrownoutConfig(
                step_down_after=2,
                cool_seconds=0.15,
                min_dwell_seconds=0.05,
                max_tier=2,
            )
        )
        fresh.register(
            "tenant-0",
            _throttled_guardrail(program, 0.008),
            TenantConfig(
                max_batch=8,
                max_wait_ms=2.0,
                queue_size=96,
                target_delay_ms=20.0,
            ),
        )
        return fresh

    async def calibrate() -> float:
        # Cold closed loop with max_batch concurrent clients (so
        # batches fill).  Best of two runs: a single short sample is
        # noisy enough to distort every storm multiplier downstream.
        async def once() -> float:
            closed = server()
            async with closed:
                start = time.perf_counter()
                completed = await _drive_single(closed, rows, 8, 10)
                return completed / (time.perf_counter() - start)

        return max(await once(), await once())

    async def _drive_single(srv, pool, clients, requests) -> int:
        async def client(cid: int) -> int:
            done = 0
            for j in range(requests):
                row = pool[(cid * requests + j) % len(pool)]
                response = await srv.check("tenant-0", row)
                while response.status is ServeStatus.REJECTED:
                    await asyncio.sleep(response.retry_after)
                    response = await srv.check("tenant-0", row)
                done += 1
            return done

        return sum(
            await asyncio.gather(*(client(c) for c in range(clients)))
        )

    capacity = asyncio.run(calibrate())
    measurements = {"capacity_rps": capacity, "storms": {}}
    for multiplier in (1, 4, 10):
        offered = capacity * multiplier
        total = min(int(offered * 0.5), 4000)
        duration = total / offered

        async def run_storm():
            stormed = server()
            async with stormed:
                return await _storm(stormed, rows, total, duration)

        responses, elapsed = asyncio.run(run_storm())
        completed = [
            r for r in responses if r.status is ServeStatus.OK
        ]
        latencies = sorted(
            r.queued_ms + r.service_ms for r in completed
        )
        p95 = (
            latencies[int(0.95 * (len(latencies) - 1))]
            if latencies
            else 0.0
        )
        goodput = len(completed) / elapsed
        measurements["storms"][f"{multiplier}x"] = {
            "offered_rps": offered,
            "submitted": total,
            "completed": len(completed),
            "rejected": sum(
                r.status is ServeStatus.REJECTED for r in responses
            ),
            "goodput_rps": goodput,
            "goodput_ratio": goodput / capacity,
            "admitted_p95_ms": p95,
        }
    return measurements


def _record_overload(measurements: dict) -> str:
    """Record (or report) the overload variant in ``BENCH_serve.json``."""
    payload = (
        json.loads(_BASELINE.read_text()) if _BASELINE.exists() else {}
    )
    if os.environ.get("REPRO_UPDATE_BENCH") == "1" or (
        "overload" not in payload
    ):
        payload["overload"] = measurements
        payload.setdefault("trajectory", [])
        _BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        return f"overload entry written to {_BASELINE.name}"
    reference = payload["overload"]["storms"]["10x"]
    return (
        f"recorded overload 10x: {reference['goodput_ratio']:.0%} "
        f"goodput, admitted p95 {reference['admitted_p95_ms']:.2f} ms"
    )


def test_overload_goodput_under_storm(workload):
    """Open-loop storms at 1x/4x/10x calibrated capacity: admission
    control and queue-full shedding must keep goodput at >= 70% of the
    single-tenant capacity even when ten times as much traffic is
    offered — shedding is cheap, guard work is not wasted on requests
    that will never be served in time."""
    program, rows = workload
    measurements = _measure_overload(program, rows)
    if measurements["storms"]["10x"]["goodput_ratio"] < 0.70:
        # One retry absorbs scheduler jitter on a loaded machine.
        measurements = _measure_overload(program, rows)

    lines = [f"capacity     {measurements['capacity_rps']:10.0f} req/s"]
    for key, storm in measurements["storms"].items():
        lines.append(
            f"{key:>4s} offered {storm['goodput_ratio']:9.0%} goodput, "
            f"admitted p95 {storm['admitted_p95_ms']:6.2f} ms, "
            f"{storm['rejected']} shed"
        )
    banner(
        "Overload shedding (open-loop storms)",
        "\n".join(lines) + "\n" + _record_overload(measurements),
    )

    storm_10x = measurements["storms"]["10x"]
    assert storm_10x["goodput_ratio"] >= 0.70, (
        f"10x storm goodput collapsed to "
        f"{storm_10x['goodput_ratio']:.0%} of capacity (bound: 70%)"
    )
    # Shedding must actually engage at 10x — a queue deep enough to
    # absorb the whole storm would just be hidden latency.
    assert storm_10x["rejected"] > 0


def test_committed_baseline_exists():
    """The committed record must hold a plausible serving baseline."""
    payload = json.loads(_BASELINE.read_text())
    baseline = payload["baseline"]
    assert baseline["completed"] == (
        baseline["tenants"]
        * baseline["clients_per_tenant"]
        * baseline["requests_per_client"]
    )
    assert baseline["throughput_rps"] > 0
    assert baseline["p95_ms"] >= baseline["p50_ms"] > 0
    assert "trajectory" in payload
