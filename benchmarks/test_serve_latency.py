"""Serving-layer latency/throughput — the ``repro.serve`` cost model.

Drives ``GuardServer`` with a closed-loop workload (N tenants x M
concurrent clients per tenant, each submitting a fixed number of
``check`` requests) and records the request-latency percentiles the
micro-batcher produces plus end-to-end throughput.  The interesting
number is the p95: a request admitted first into an empty batch waits
up to ``max_wait_ms`` for co-riders, so p95 should sit near
``max_wait_ms`` plus one batch-kernel flush — far below N serial
per-row checks.

Each run also records its measurements against ``BENCH_serve.json``
(``{"baseline": {...}, "trajectory": [...]}``, the layout
``benchmarks/README.md`` documents); set ``REPRO_UPDATE_BENCH=1`` to
rewrite the baseline on a quiet machine.
"""

import asyncio
import json
import os
import time
from pathlib import Path

import pytest

from conftest import banner
from repro.pgm import DAG, random_sem, sem_to_program
from repro.serve import GuardServer, ServeStatus, TenantConfig
from repro.synth import Guardrail

_TENANTS = 4
_CLIENTS = 16
_REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", "250"))
_BASELINE = Path(__file__).resolve().parent / "BENCH_serve.json"


@pytest.fixture(scope="module")
def workload():
    """A 6-attribute chain guardrail plus a clean request stream."""
    import numpy as np

    rng = np.random.default_rng(7)
    names = [f"a{i}" for i in range(6)]
    dag = DAG(
        names, [(names[i], names[i + 1]) for i in range(len(names) - 1)]
    )
    sem = random_sem(dag, cardinalities=4, determinism=1.0, rng=rng)
    relation = sem.sample(4096, rng)
    program = sem_to_program(sem, relation)
    rows = list(relation.iter_rows())
    return program, rows


async def _drive(server: GuardServer, names, rows) -> int:
    """Closed-loop clients; returns the number of completed requests."""
    completed = 0

    async def client(tenant: str, client_index: int) -> int:
        done = 0
        for j in range(_REQUESTS):
            row = rows[(client_index * _REQUESTS + j) % len(rows)]
            response = await server.check(tenant, row)
            while response.status is ServeStatus.REJECTED:
                await asyncio.sleep(response.retry_after)
                response = await server.check(tenant, row)
            assert response.ok
            done += 1
        return done

    async with server:
        results = await asyncio.gather(
            *(
                client(name, k)
                for name in names
                for k in range(_CLIENTS)
            )
        )
    completed = sum(results)
    return completed


def _measure(program, rows, state_dir=None) -> dict:
    server = GuardServer(state_dir=state_dir)
    names = [f"tenant-{i}" for i in range(_TENANTS)]
    for name in names:
        server.register(
            name,
            Guardrail.from_program(program),
            TenantConfig(max_batch=64, max_wait_ms=2.0),
        )
    start = time.perf_counter()
    completed = asyncio.run(_drive(server, names, rows))
    elapsed = time.perf_counter() - start
    assert completed == _TENANTS * _CLIENTS * _REQUESTS

    snapshots = [server.tenant(name).metrics for name in names]
    p50 = max(m.percentile_ms(0.50) for m in snapshots)
    p95 = max(m.percentile_ms(0.95) for m in snapshots)
    fill = sum(m.rows_flushed for m in snapshots) / max(
        1, sum(m.batches for m in snapshots)
    )
    return {
        "tenants": _TENANTS,
        "clients_per_tenant": _CLIENTS,
        "requests_per_client": _REQUESTS,
        "completed": completed,
        "throughput_rps": completed / elapsed,
        "p50_ms": p50,
        "p95_ms": p95,
        "mean_batch_fill": fill,
        "wall_s": elapsed,
    }


def _record_baseline(measurements: dict) -> str:
    """Compare against (or rewrite) the committed baseline file."""
    payload = (
        json.loads(_BASELINE.read_text()) if _BASELINE.exists() else {}
    )
    if os.environ.get("REPRO_UPDATE_BENCH") == "1" or not payload:
        payload["baseline"] = measurements
        payload.setdefault("trajectory", [])
        _BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        return f"baseline written to {_BASELINE.name}"
    baseline = payload["baseline"]
    lines = []
    for key in ("throughput_rps", "p50_ms", "p95_ms"):
        reference = baseline.get(key)
        if isinstance(reference, (int, float)) and reference:
            value = measurements[key]
            lines.append(
                f"{key}: {value:.2f} (baseline {reference:.2f}, "
                f"{value / reference:+.1%} of reference)"
            )
    return "vs committed baseline:\n  " + "\n  ".join(lines)


def test_serve_latency_and_throughput(workload):
    program, rows = workload
    measurements = _measure(program, rows)

    banner(
        "Serving layer latency/throughput",
        "\n".join(
            [
                f"{_TENANTS} tenants x {_CLIENTS} clients x "
                f"{_REQUESTS} requests (closed loop)",
                f"throughput   {measurements['throughput_rps']:10.0f} req/s",
                f"p50 latency  {measurements['p50_ms']:10.2f} ms",
                f"p95 latency  {measurements['p95_ms']:10.2f} ms",
                f"batch fill   {measurements['mean_batch_fill']:10.1f} "
                "rows/flush",
            ]
        )
        + "\n"
        + _record_baseline(measurements),
    )

    # Micro-batching must actually coalesce under concurrent load —
    # a fill near 1 means the batcher is flushing per request and the
    # serving layer is just expensive ceremony.
    assert measurements["mean_batch_fill"] >= 2.0
    # The latency bound the config promises: one max_wait window plus
    # generous flush/scheduling headroom.
    assert measurements["p95_ms"] < 250.0


def _record_durable(measurements: dict) -> str:
    """Record (or report) the durable variant in ``BENCH_serve.json``."""
    payload = (
        json.loads(_BASELINE.read_text()) if _BASELINE.exists() else {}
    )
    if os.environ.get("REPRO_UPDATE_BENCH") == "1" or (
        "durable" not in payload
    ):
        payload["durable"] = measurements
        payload.setdefault("trajectory", [])
        _BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        return f"durable entry written to {_BASELINE.name}"
    reference = payload["durable"]
    return (
        f"recorded durable: {reference['throughput_rps']:.0f} req/s, "
        f"p95 {reference['p95_ms']:.2f} ms"
    )


def test_durable_serve_overhead_within_bound(workload, tmp_path):
    """The durable variant (``state_dir=``) stays within 10% of the
    in-memory server on throughput and p95 — steady-state traffic is
    never journaled, so the WAL must cost nothing on the hot path."""
    program, rows = workload

    def ratios(attempt: int):
        baseline = _measure(program, rows)
        durable = _measure(
            program, rows, state_dir=tmp_path / f"state-{attempt}"
        )
        return (
            durable,
            durable["throughput_rps"] / baseline["throughput_rps"],
            durable["p95_ms"] / max(baseline["p95_ms"], 1e-9),
        )

    durable, throughput_ratio, p95_ratio = ratios(0)
    if throughput_ratio < 0.90 or p95_ratio > 1.10:
        # One retry absorbs scheduler jitter on a loaded machine.
        durable, throughput_ratio, p95_ratio = ratios(1)

    measurements = dict(
        durable,
        throughput_ratio=throughput_ratio,
        p95_ratio=p95_ratio,
    )
    banner(
        "Durable serving overhead (state_dir journal)",
        "\n".join(
            [
                f"durable throughput {durable['throughput_rps']:10.0f} "
                f"req/s ({throughput_ratio:.1%} of in-memory)",
                f"durable p95        {durable['p95_ms']:10.2f} ms "
                f"({p95_ratio:.1%} of in-memory)",
            ]
        )
        + "\n"
        + _record_durable(measurements),
    )
    assert throughput_ratio >= 0.90, (
        f"durable serving lost {1 - throughput_ratio:.1%} throughput "
        f"(bound: 10%)"
    )
    assert p95_ratio <= 1.10, (
        f"durable serving inflated p95 by {p95_ratio - 1:.1%} (bound: 10%)"
    )


def test_committed_baseline_exists():
    """The committed record must hold a plausible serving baseline."""
    payload = json.loads(_BASELINE.read_text())
    baseline = payload["baseline"]
    assert baseline["completed"] == (
        baseline["tenants"]
        * baseline["clients_per_tenant"]
        * baseline["requests_per_client"]
    )
    assert baseline["throughput_rps"] > 0
    assert baseline["p95_ms"] >= baseline["p50_ms"] > 0
    assert "trajectory" in payload
