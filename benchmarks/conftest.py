"""Shared configuration for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper's
evaluation (§8) and prints it.  The workload is scaled for a laptop-
class single-core machine; set ``REPRO_FULL=1`` to run the paper's full
dataset sizes, or ``REPRO_SCALE_ROWS=<n>`` to pick a custom cap.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `pytest benchmarks/` work from a clean checkout: the package
# lives in src/ and is not necessarily pip-installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import ExperimentContext  # noqa: E402


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: regenerates a table/figure from the paper"
    )


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


def banner(title: str, body: str) -> None:
    line = "=" * max(len(title), 8)
    print(f"\n{line}\n{title}\n{line}\n{body}\n")
