"""Shared configuration for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper's
evaluation (§8) and prints it.  The workload is scaled for a laptop-
class single-core machine; set ``REPRO_FULL=1`` to run the paper's full
dataset sizes, or ``REPRO_SCALE_ROWS=<n>`` to pick a custom cap.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: regenerates a table/figure from the paper"
    )


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


def banner(title: str, body: str) -> None:
    line = "=" * max(len(title), 8)
    print(f"\n{line}\n{title}\n{line}\n{body}\n")
