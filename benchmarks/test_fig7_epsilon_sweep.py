"""Figure 7 — impact of the ε threshold on coverage and loss (§8.3).

Paper's claim: raising ε increases constraint coverage at the cost of
higher loss, with ε = 0.01–0.05 the recommended trade-off region.
The sweep runs on a representative subset of datasets (one per size
class) to keep single-core wall time reasonable; pass all ids via
run_figure7 for the full grid.
"""

import pytest

from conftest import banner, run_once
from repro.experiments import DEFAULT_EPSILONS, format_figure7, run_figure7

SWEEP_DATASETS = [1, 2, 4, 6, 9, 12]


@pytest.mark.paper
def test_fig7_epsilon_sweep(benchmark, context):
    points = run_once(
        benchmark,
        run_figure7,
        context,
        dataset_ids=SWEEP_DATASETS,
        epsilons=DEFAULT_EPSILONS,
    )
    banner("Figure 7: epsilon sweep (coverage & loss)", format_figure7(points))

    assert len(points) == len(SWEEP_DATASETS) * len(DEFAULT_EPSILONS)
    # Shape per dataset: coverage is non-decreasing in ε (within a
    # small numerical slack), and loss never decreases materially.
    for dataset_id in SWEEP_DATASETS:
        series = [p for p in points if p.dataset_id == dataset_id]
        series.sort(key=lambda p: p.epsilon)
        coverages = [p.coverage for p in series]
        losses = [p.loss_rate for p in series]
        assert coverages[-1] >= coverages[0] - 0.05
        assert losses[-1] >= losses[0] - 1e-9
