"""Score-based structure learning (BIC hill climbing).

The paper's pipeline learns the MEC with constraint-based methods (PC);
score-based search is the other classic family of "statistical
structure learning" the literature offers, and makes a natural
alternative backend: greedily add/remove/reverse edges to maximize the
BIC score of a discrete Bayesian network.

The BIC of a node given its parents decomposes, so moves re-score only
the touched families; family scores are memoized across the search.

Plugs into GUARDRAIL via :class:`repro.synth.GuardrailConfig` by
converting the result to a CPDAG::

    from repro.pgm import hill_climb, cpdag_from_dag
    result = hill_climb(codes, names)
    cpdag = cpdag_from_dag(result.dag)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .dag import DAG


@dataclass
class HillClimbResult:
    """Output of the greedy search."""

    dag: DAG
    score: float
    iterations: int
    families_scored: int


class BicScorer:
    """Memoized decomposed BIC for discrete data.

    ``score(child, parents)`` returns the family score
    ``LL(child | parents) - (log n / 2) * n_free_parameters``.
    """

    def __init__(self, codes: np.ndarray, names: Sequence[str]):
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != len(names):
            raise ValueError("codes must be (n_rows, len(names))")
        self._codes = codes
        self._names = list(names)
        self._position = {n: i for i, n in enumerate(self._names)}
        self._cardinality = {
            n: int(codes[:, i].max(initial=-1)) + 1
            for i, n in enumerate(self._names)
        }
        self._memo: dict[tuple[str, frozenset[str]], float] = {}
        self.families_scored = 0

    @property
    def names(self) -> list[str]:
        """The variable names, in column order."""
        return list(self._names)

    def score(self, child: str, parents: frozenset[str]) -> float:
        """BIC score of ``child`` given ``parents`` (memoized)."""
        key = (child, parents)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        self.families_scored += 1
        value = self._compute(child, parents)
        self._memo[key] = value
        return value

    def total(self, dag: DAG) -> float:
        """Total BIC score of a DAG (sum over families)."""
        return sum(
            self.score(node, frozenset(dag.parents(node)))
            for node in dag.nodes
        )

    def _compute(self, child: str, parents: frozenset[str]) -> float:
        n_rows = self._codes.shape[0]
        child_col = self._codes[:, self._position[child]]
        child_card = max(self._cardinality[child], 1)
        if not parents:
            counts = np.bincount(
                child_col[child_col >= 0], minlength=child_card
            ).astype(np.float64)
            total = counts.sum()
            with np.errstate(divide="ignore", invalid="ignore"):
                log_likelihood = float(
                    np.sum(
                        counts[counts > 0]
                        * np.log(counts[counts > 0] / total)
                    )
                )
            penalty = 0.5 * np.log(max(n_rows, 2)) * (child_card - 1)
            return log_likelihood - penalty

        parent_cols = [
            self._codes[:, self._position[p]] for p in sorted(parents)
        ]
        stacked = np.column_stack(parent_cols + [child_col])
        valid = np.all(stacked >= 0, axis=1)
        stacked = stacked[valid]
        if stacked.shape[0] == 0:
            return 0.0
        # Group by parent configuration.
        parent_part = stacked[:, :-1]
        child_part = stacked[:, -1]
        _, group_ids = np.unique(parent_part, axis=0, return_inverse=True)
        n_groups = int(group_ids.max()) + 1
        joint = np.zeros((n_groups, child_card), dtype=np.float64)
        np.add.at(joint, (group_ids, child_part), 1.0)
        group_totals = joint.sum(axis=1, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(joint > 0, joint / group_totals, 1.0)
            log_likelihood = float(np.sum(joint * np.log(ratio)))
        # Penalty uses the number of *observed* parent configurations —
        # the standard sparse-data variant (full Cartesian counts would
        # dwarf the likelihood on high-cardinality data).
        penalty = (
            0.5 * np.log(max(n_rows, 2)) * n_groups * (child_card - 1)
        )
        return log_likelihood - penalty


def hill_climb(
    codes: np.ndarray,
    names: Sequence[str],
    max_parents: int = 3,
    max_iterations: int = 200,
    scorer: BicScorer | None = None,
) -> HillClimbResult:
    """Greedy BIC hill climbing over add/remove/reverse edge moves."""
    scorer = scorer or BicScorer(codes, names)
    nodes = scorer.names
    parents: dict[str, set[str]] = {n: set() for n in nodes}

    def family(node: str) -> float:
        return scorer.score(node, frozenset(parents[node]))

    def creates_cycle(source: str, target: str) -> bool:
        # Path target ~> source through current parent sets?
        frontier = [source]
        seen = {source}
        while frontier:
            node = frontier.pop()
            if node == target:
                return True
            for parent in parents[node]:
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return False

    iterations = 0
    improved = True
    while improved and iterations < max_iterations:
        improved = False
        iterations += 1
        best_gain = 1e-9
        best_move = None
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                if u in parents[v]:
                    # Removal.
                    before = family(v)
                    parents[v].discard(u)
                    gain = family(v) - before
                    parents[v].add(u)
                    if gain > best_gain:
                        best_gain, best_move = gain, ("remove", u, v)
                    # Reversal.
                    if (
                        len(parents[u]) < max_parents
                        and not _reversal_cycles(parents, u, v)
                    ):
                        before = family(v) + family(u)
                        parents[v].discard(u)
                        parents[u].add(v)
                        gain = family(v) + family(u) - before
                        parents[u].discard(v)
                        parents[v].add(u)
                        if gain > best_gain:
                            best_gain, best_move = gain, ("reverse", u, v)
                elif (
                    v not in parents[u]
                    and len(parents[v]) < max_parents
                    and not creates_cycle(u, v)
                ):
                    # Addition.
                    before = family(v)
                    parents[v].add(u)
                    gain = family(v) - before
                    parents[v].discard(u)
                    if gain > best_gain:
                        best_gain, best_move = gain, ("add", u, v)
        if best_move is not None:
            kind, u, v = best_move
            if kind == "add":
                parents[v].add(u)
            elif kind == "remove":
                parents[v].discard(u)
            else:
                parents[v].discard(u)
                parents[u].add(v)
            improved = True

    dag = DAG(
        nodes,
        [(p, child) for child, ps in parents.items() for p in ps],
    )
    return HillClimbResult(
        dag=dag,
        score=scorer.total(dag),
        iterations=iterations,
        families_scored=scorer.families_scored,
    )


def _reversal_cycles(
    parents: dict[str, set[str]], u: str, v: str
) -> bool:
    """Would reversing u -> v into v -> u create a cycle?

    After removing u -> v, a cycle appears iff a directed path u ~> v
    still exists.
    """
    frontier = [v]
    seen = {v}
    while frontier:
        node = frontier.pop()
        for parent in parents[node]:
            if parent == u and node == v:
                continue  # the edge being reversed
            if parent == u:
                return True
            if parent not in seen:
                seen.add(parent)
                frontier.append(parent)
    return False
