"""The PC algorithm for structure learning (PC-stable variant).

GUARDRAIL learns the Markov equivalence class of the data-generating
process from data (§4.4).  We implement PC-stable (Colombo & Maathuis):

1. start from the complete undirected graph;
2. level ℓ = 0, 1, 2, …: for each adjacent pair ``(x, y)``, search for a
   separating set S ⊆ adj(x)\\{y} with |S| = ℓ; if a CI test accepts
   ``x ⊥ y | S``, delete the edge and record S (adjacency sets are
   frozen per level — the "stable" part, making output order-independent);
3. orient unshielded triples ``x - z - y`` as v-structures ``x → z ← y``
   whenever z is **not** in the recorded separating set;
4. close under Meek's rules, yielding the CPDAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Sequence

from .. import obs
from .independence import CITester
from .pdag import PDAG


@dataclass
class PCResult:
    """Output of the PC algorithm."""

    cpdag: PDAG
    separating_sets: dict[frozenset[str], frozenset[str]]
    n_ci_tests: int
    levels_run: int = 0
    notes: list[str] = field(default_factory=list)


def learn_cpdag(
    tester: CITester,
    max_condition_size: int | None = None,
    max_degree: int | None = None,
    budget=None,
    initial_skeleton=None,
    initial_separating=None,
    pool=None,
) -> PCResult:
    """Run PC-stable on the variables of ``tester``.

    Parameters
    ----------
    tester:
        The CI oracle (bound to data, or to a ground-truth DAG in tests).
    max_condition_size:
        Cap on |S|; ``None`` runs until no adjacency set is large enough.
    max_degree:
        Optional cap used to skip conditioning sets drawn from very
        high-degree nodes (a standard large-graph safeguard).
    budget:
        Optional :class:`repro.resilience.Budget`, charged one step per
        CI test.  Exhaustion stops edge *removal* early (remaining
        edges stay — a denser, conservative skeleton) and is recorded
        in ``PCResult.notes``; orientation still runs on what was
        learned.
    initial_skeleton:
        Warm start: a :class:`PDAG` (its skeleton is used) or an
        iterable of node pairs.  The search starts from these edges
        instead of the complete graph, so PC only *prunes within* the
        prior structure — the payoff when re-synthesizing after drift,
        where the true skeleton rarely changes wholesale.  Edges naming
        unknown variables are ignored (schemas may gain attributes
        between runs).
    initial_separating:
        Warm start: separating sets from the prior run for the pairs
        *outside* ``initial_skeleton``, so v-structure orientation sees
        the evidence that removed those edges.
    pool:
        Optional :class:`repro.parallel.WorkerPool` (or worker count):
        each level's separator searches are batched across forked
        workers, one job per unordered adjacent pair.  PC-stable
        freezes adjacency per level, so pair jobs are independent; the
        parent applies removals in serial job order, making the learned
        skeleton, separating sets, and ``n_ci_tests`` **bit-identical**
        to the serial run.  With a budget, exhaustion is checked
        between levels (level granularity instead of the serial path's
        per-test granularity), so a *truncated* parallel run may keep
        more edges than a truncated serial one — both are valid,
        conservative skeletons.
    """
    from ..parallel import as_pool

    pool = as_pool(pool)
    use_pool = pool is not None and pool.parallel
    nodes = tester.names
    truncated = False
    if initial_skeleton is None:
        adjacency: dict[str, set[str]] = {
            n: {m for m in nodes if m != n} for n in nodes
        }
    else:
        known = set(nodes)
        edges = (
            initial_skeleton.skeleton()
            if hasattr(initial_skeleton, "skeleton")
            else initial_skeleton
        )
        adjacency = {n: set() for n in nodes}
        for u, v in edges:
            if u in known and v in known and u != v:
                adjacency[u].add(v)
                adjacency[v].add(u)
    separating: dict[frozenset[str], frozenset[str]] = {}
    if initial_separating is not None:
        known = set(nodes)
        for pair, sepset in initial_separating.items():
            if set(pair) <= known and set(sepset) <= known:
                separating[frozenset(pair)] = frozenset(sepset)
    queries_before = tester.n_queries
    extra_tests = 0

    with obs.span("pgm.learn_cpdag", n_nodes=len(nodes)) as pc_span:
        level = 0
        while True:
            if (
                max_condition_size is not None
                and level > max_condition_size
            ):
                break
            # PC-stable: freeze adjacency for this level.
            frozen = {
                n: frozenset(neigh) for n, neigh in adjacency.items()
            }
            any_candidate = False
            with obs.span("pgm.pc_level", level=level):
                if use_pool:
                    any_candidate, level_tests, pc_note = _parallel_level(
                        tester,
                        nodes,
                        frozen,
                        adjacency,
                        separating,
                        level,
                        max_degree,
                        budget,
                        pool,
                        extra_tests
                        + tester.n_queries
                        - queries_before,
                    )
                    extra_tests += level_tests
                    if pc_note is not None:
                        truncated = True
                        budget.note(pc_note)
                    nodes_to_visit = ()
                else:
                    nodes_to_visit = nodes
                for x in nodes_to_visit:
                    if truncated:
                        break
                    for y in sorted(frozen[x]):
                        if budget is not None and budget.exhausted():
                            truncated = True
                            pc_note = (
                                f"pc: stopped at level {level} "
                                f"({tester.n_queries - queries_before} "
                                f"CI tests)"
                            )
                            budget.note(pc_note)
                            break
                        if y not in adjacency[x]:
                            continue  # already removed at this level
                        candidates = frozen[x] - {y}
                        if (
                            max_degree is not None
                            and len(candidates) > max_degree
                        ):
                            candidates = frozenset(
                                sorted(candidates)[:max_degree]
                            )
                        if len(candidates) < level:
                            continue
                        any_candidate = True
                        if _find_separator(
                            tester,
                            x,
                            y,
                            candidates,
                            level,
                            adjacency,
                            separating,
                            budget,
                        ):
                            continue
            if truncated or not any_candidate:
                break
            level += 1

        with obs.span("pgm.orientation"):
            directed, undirected = _orient_v_structures(
                nodes, adjacency, separating
            )
            cpdag = PDAG(nodes, directed, undirected)
            cpdag.apply_meek_rules()
        n_ci_tests = tester.n_queries - queries_before + extra_tests
        pc_span.set(n_ci_tests=n_ci_tests, levels_run=level)
    notes = ["budget: " + pc_note] if truncated else []
    return PCResult(
        cpdag=cpdag,
        separating_sets=dict(separating),
        n_ci_tests=n_ci_tests,
        levels_run=level,
        notes=notes,
    )


def _parallel_level(
    tester: CITester,
    nodes: Sequence[str],
    frozen: dict[str, frozenset[str]],
    adjacency: dict[str, set[str]],
    separating: dict[frozenset[str], frozenset[str]],
    level: int,
    max_degree: int | None,
    budget,
    pool,
    queries_done: int,
) -> tuple[bool, int, str | None]:
    """One PC-stable level, batched across forked workers.

    One job per unordered adjacent pair: the worker searches the first
    direction (in the serial visit order) and, only if no separator was
    found, the second — exactly the work the serial loop does, because
    a removed edge makes the serial loop skip the reverse visit.  The
    parent then applies removals and separating sets in job order, so
    the reduction is deterministic and the level's outcome (including
    the memo-deduplicated CI-test count) matches serial bit-for-bit.

    Returns ``(any_candidate, tests_used, budget_note_or_None)``; the
    budget is charged in the parent, once per level.
    """
    if budget is not None and budget.exhausted():
        return (
            False,
            0,
            f"pc: stopped at level {level} ({queries_done} CI tests)",
        )
    jobs: list[tuple[str, str]] = []
    seen: set[frozenset[str]] = set()
    for x in nodes:
        for y in sorted(frozen[x]):
            key = frozenset((x, y))
            if key in seen:
                continue
            seen.add(key)
            jobs.append((x, y))
    results = pool.map(
        _pair_job,
        range(len(jobs)),
        shared=(tester, frozen, jobs, level, max_degree),
    )
    any_candidate = False
    tests_used = 0
    for (x, y), (removed, sepset, tests, candidate) in zip(jobs, results):
        any_candidate |= candidate
        tests_used += tests
        if removed:
            adjacency[x].discard(y)
            adjacency[y].discard(x)
            separating[frozenset((x, y))] = frozenset(sepset)
    note = None
    if budget is not None and tests_used:
        budget.spend(tests_used, kind="pc.ci_test")
        if budget.exhausted():
            note = (
                f"pc: stopped at level {level} "
                f"({queries_done + tests_used} CI tests)"
            )
    return any_candidate, tests_used, note


def _pair_job(index: int) -> tuple[bool, tuple[str, ...], int, bool]:
    """Worker task: the full separator search for one unordered pair.

    Replays the serial per-direction logic against the level-frozen
    adjacency; the worker's forked tester copy shares its memo across
    the two directions (pair-keyed, like the serial tester), so the
    reported miss count equals the serial one.
    """
    from ..parallel import get_shared

    tester, frozen, jobs, level, max_degree = get_shared()
    x, y = jobs[index]
    before = tester.n_queries
    removed = False
    sepset: tuple[str, ...] = ()
    candidate = False
    for a, b in ((x, y), (y, x)):
        if b not in frozen[a]:
            continue
        candidates = frozen[a] - {b}
        if max_degree is not None and len(candidates) > max_degree:
            candidates = frozenset(sorted(candidates)[:max_degree])
        if len(candidates) < level:
            continue
        candidate = True
        for subset in combinations(sorted(candidates), level):
            if tester.independent(a, b, subset):
                removed = True
                sepset = subset
                break
        if removed:
            break
    return removed, sepset, tester.n_queries - before, candidate


def _find_separator(
    tester: CITester,
    x: str,
    y: str,
    candidates: frozenset[str],
    level: int,
    adjacency: dict[str, set[str]],
    separating: dict[frozenset[str], frozenset[str]],
    budget=None,
) -> bool:
    """Try all |S| = level subsets; on success remove the edge."""
    for subset in combinations(sorted(candidates), level):
        if budget is not None:
            budget.spend(1, kind="pc.ci_test")
            if budget.exhausted():
                return False
        if tester.independent(x, y, subset):
            adjacency[x].discard(y)
            adjacency[y].discard(x)
            separating[frozenset((x, y))] = frozenset(subset)
            return True
    return False


def _orient_v_structures(
    nodes: Sequence[str],
    adjacency: dict[str, set[str]],
    separating: dict[frozenset[str], frozenset[str]],
) -> tuple[set[tuple[str, str]], set[tuple[str, str]]]:
    """Collider orientation: x - z - y, x ∉ adj(y), z ∉ sepset(x, y).

    On finite noisy data different triples can demand opposite
    orientations of the same edge.  Such conflicts indicate the collider
    evidence is unreliable, so every triple touching a conflicted edge
    is discarded wholesale and its edges stay undirected — Algorithm 2's
    coverage criterion later arbitrates among the extensions.
    """
    triples: list[tuple[tuple[str, str], tuple[str, str]]] = []
    for z in nodes:
        neighbors = sorted(adjacency[z])
        for i, x in enumerate(neighbors):
            for y in neighbors[i + 1 :]:
                if y in adjacency[x]:
                    continue  # shielded
                sepset = separating.get(frozenset((x, y)), frozenset())
                if z not in sepset:
                    triples.append(((x, z), (y, z)))

    demanded: set[tuple[str, str]] = {
        edge for triple in triples for edge in triple
    }
    conflicted = {
        frozenset(edge)
        for edge in demanded
        if (edge[1], edge[0]) in demanded
    }
    resolved: set[tuple[str, str]] = set()
    for triple in triples:
        if any(frozenset(edge) in conflicted for edge in triple):
            continue
        resolved.update(triple)
    undirected: set[tuple[str, str]] = set()
    for x in nodes:
        for y in adjacency[x]:
            if x < y and (x, y) not in resolved and (y, x) not in resolved:
                undirected.add((x, y))
    return resolved, undirected


class OracleCITester(CITester):
    """A CI oracle answering queries from a ground-truth DAG.

    Used by tests and synthetic studies: with a perfect oracle, PC
    provably recovers the CPDAG, so any mismatch is an implementation
    bug rather than sampling noise.
    """

    def __init__(self, dag) -> None:  # noqa: D401 - see class docstring
        import numpy as np

        names = list(dag.nodes)
        super().__init__(
            np.zeros((1, len(names)), dtype=np.int32), names
        )
        self._dag = dag

    def _run_test(self, x, y, z):  # type: ignore[override]
        from .independence import CIResult

        independent = self._dag.d_separated(x, y, z)
        p_value = 1.0 if independent else 0.0
        return CIResult(0.0, p_value, 1, independent)
