"""Markov equivalence class enumeration (paper §4.5, Alg. 2's inner loop).

Given a CPDAG, :func:`enumerate_mec` yields every DAG in its equivalence
class — the consistent extensions.  The paper adapts a Julia PDAG
enumerator [36]; here we implement the enumeration in pure Python as a
backtracking search:

1. pick an undirected edge,
2. try both orientations, discarding those that create a directed cycle
   or a new unshielded collider,
3. close under Meek's rules (forced orientations; contradictions prune
   the branch), and
4. at each fully directed leaf, verify class membership by recomputing
   the CPDAG (the definitional check — cheap at the scale we run).

Each branch fixes one edge's direction differently, so leaves are
distinct; the leaf check makes the procedure correct even if the Meek
closure were incomplete.
"""

from __future__ import annotations

from typing import Iterator

from .. import obs
from .dag import DAG, GraphError
from .pdag import PDAG, OrientationConflict, cpdag_from_dag


def enumerate_mec(
    cpdag: PDAG,
    max_dags: int | None = None,
    verify_leaves: bool = True,
    budget=None,
) -> Iterator[DAG]:
    """Yield the DAGs of the Markov equivalence class ``cpdag`` encodes.

    Parameters
    ----------
    cpdag:
        The class representative (e.g., the output of the PC algorithm).
    max_dags:
        Stop after yielding this many DAGs (the "maximal enumeration"
        cap that Alg. 2 mentions); ``None`` enumerates exhaustively.
    verify_leaves:
        Recompute the CPDAG of each candidate and compare — the
        definitional membership test.  Disable only for speed when the
        input is known to be a valid CPDAG.
    budget:
        Optional :class:`repro.resilience.Budget`, charged one step per
        search-node expansion.  Exhaustion prunes the remaining search
        — but only after at least one DAG has been produced, so a
        budgeted caller is still guaranteed a candidate whenever the
        class is non-empty.
    """
    produced = 0

    def recurse(pdag: PDAG) -> Iterator[DAG]:
        nonlocal produced
        if max_dags is not None and produced >= max_dags:
            return
        if budget is not None and produced > 0:
            budget.spend(1, kind="mec.expansion")
            if budget.exhausted():
                return
        undirected = pdag.undirected_edges()
        if not undirected:
            try:
                dag = pdag.to_dag()
            except GraphError:
                return  # the pattern itself was cyclic (noisy PC output)
            if not verify_leaves or cpdag_from_dag(dag) == cpdag:
                produced += 1
                yield dag
            return
        u, v = undirected[0]
        for x, y in ((u, v), (v, u)):
            if pdag.creates_cycle(x, y) or pdag.creates_new_v_structure(x, y):
                continue
            candidate = pdag.copy()
            candidate.orient(x, y)
            try:
                candidate.apply_meek_rules()
            except OrientationConflict:
                continue
            yield from recurse(candidate)

    if not obs.enabled():
        yield from recurse(cpdag.copy())
        return
    # Traced path: report how many class members the search produced
    # (and count them even when the consumer stops early).
    try:
        yield from recurse(cpdag.copy())
    finally:
        obs.count("pgm.mec.dags_enumerated", produced)


def mec_size(cpdag: PDAG, max_dags: int | None = None) -> int:
    """The number of DAGs in the Markov equivalence class."""
    return sum(1 for _ in enumerate_mec(cpdag, max_dags=max_dags))


def mec_of(dag: DAG, max_dags: int | None = None) -> list[DAG]:
    """All DAGs Markov-equivalent to ``dag`` (including itself)."""
    return list(enumerate_mec(cpdag_from_dag(dag), max_dags=max_dags))


def undirected_components(cpdag: PDAG) -> list[set[str]]:
    """Connected components of the CPDAG's undirected part.

    By the chain-graph decomposition of CPDAGs, orientations of
    distinct undirected (chain) components are independent, so the MEC
    factorizes over them.
    """
    adjacency: dict[str, set[str]] = {}
    for u, v in cpdag.undirected_edges():
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    seen: set[str] = set()
    components: list[set[str]] = []
    for start in sorted(adjacency):
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        seen |= component
        components.append(component)
    return components


def mec_size_factorized(cpdag: PDAG) -> int:
    """MEC size via the chain-component factorization.

    The paper leaves enumeration optimizations as future work (§4.5);
    this is the standard first one: count orientations per undirected
    component independently and multiply, rather than enumerating the
    full Cartesian product.  Exponentially faster when the undirected
    part is fragmented.
    """
    total = 1
    for component in undirected_components(cpdag):
        sub = _restrict_to_component(cpdag, component)
        total *= max(mec_size(sub), 1)
    return total


def _restrict_to_component(cpdag: PDAG, component: set[str]) -> PDAG:
    """The undirected subgraph a chain component induces.

    For a valid CPDAG the directed part never constrains how a chain
    component may be oriented (chain components of CPDAGs are chordal
    and orient independently), so the restriction keeps only the
    component's own undirected edges.
    """
    undirected = [
        (u, v)
        for (u, v) in cpdag.undirected_edges()
        if u in component and v in component
    ]
    return PDAG(sorted(component), (), undirected)


def enumerate_mec_brute_force(cpdag: PDAG) -> list[DAG]:
    """Reference implementation: try all 2^k orientations of the k
    undirected edges and keep those whose CPDAG matches.

    Exponential — used only by tests to validate :func:`enumerate_mec`.
    """
    undirected = cpdag.undirected_edges()
    results: list[DAG] = []
    for mask in range(1 << len(undirected)):
        directed = set(cpdag.directed_edges())
        for bit, (u, v) in enumerate(undirected):
            if mask >> bit & 1:
                directed.add((u, v))
            else:
                directed.add((v, u))
        try:
            dag = DAG(cpdag.nodes, directed)
        except Exception:
            continue
        if cpdag_from_dag(dag) == cpdag:
            results.append(dag)
    return results
