"""Discrete structural equation models (paper Def. 4.3).

A :class:`DiscreteSEM` couples a DAG with one conditional probability
table per node.  GUARDRAIL's target class is *discrete, deterministic*
DGPs, so the builders here generate mostly-deterministic tables: each
parent configuration maps to a single child value, with an optional
exogenous-noise probability of drawing a different value (the ``U``
variables of the SEM definition).

Sampling follows the topological order and produces a
:class:`~repro.relation.Relation` with human-readable categorical values
(``"<attr>=<k>"``), plus access to the ground-truth deterministic
mapping — which is what the synthesized DSL program should recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..relation import Codec, Relation, Schema
from .dag import DAG, GraphError


@dataclass(frozen=True)
class NodeModel:
    """The generating mechanism of one attribute.

    ``table`` maps each parent-code tuple to a distribution over the
    node's ``cardinality`` values.  A deterministic mechanism puts all
    mass on one value per row.
    """

    name: str
    parents: tuple[str, ...]
    cardinality: int
    table: Mapping[tuple[int, ...], np.ndarray]

    def distribution(self, parent_codes: tuple[int, ...]) -> np.ndarray:
        """Distribution over outcomes given the parents' codes."""
        try:
            return np.asarray(self.table[parent_codes], dtype=np.float64)
        except KeyError:
            raise GraphError(
                f"no CPT row for {self.name!r} with parents {parent_codes}"
            ) from None

    def modal_value(self, parent_codes: tuple[int, ...]) -> int:
        """The most likely child code — the deterministic 'core' of f_X."""
        return int(np.argmax(self.distribution(parent_codes)))

    def is_deterministic(self, tolerance: float = 1e-9) -> bool:
        """Is every conditional distribution a point mass (within tol)?"""
        return all(
            np.max(dist) >= 1.0 - tolerance for dist in self.table.values()
        )


class DiscreteSEM:
    """A discrete SEM: a DAG plus per-node conditional tables."""

    def __init__(self, dag: DAG, models: Mapping[str, NodeModel]):
        for node in dag.nodes:
            if node not in models:
                raise GraphError(f"missing node model for {node!r}")
            model = models[node]
            if set(model.parents) != set(dag.parents(node)):
                raise GraphError(
                    f"model parents for {node!r} disagree with the DAG"
                )
        self._dag = dag
        self._models = dict(models)

    @property
    def dag(self) -> DAG:
        """The SEM's structure as a DAG."""
        return self._dag

    def model(self, node: str) -> NodeModel:
        """The conditional-distribution model of ``node``."""
        return self._models[node]

    def cardinality(self, node: str) -> int:
        """Outcome cardinality of ``node``."""
        return self._models[node].cardinality

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_codes(
        self, n_rows: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Draw ``n_rows`` joint samples as integer code arrays."""
        samples: dict[str, np.ndarray] = {}
        for node in self._dag.topological_order():
            model = self._models[node]
            if not model.parents:
                dist = model.distribution(())
                samples[node] = rng.choice(
                    model.cardinality, size=n_rows, p=dist
                ).astype(np.int32)
                continue
            parent_matrix = np.column_stack(
                [samples[p] for p in model.parents]
            )
            out = np.empty(n_rows, dtype=np.int32)
            # Group rows by parent configuration and draw per group.
            order = np.lexsort(parent_matrix.T[::-1])
            ordered = parent_matrix[order]
            changes = np.any(np.diff(ordered, axis=0) != 0, axis=1)
            bounds = np.concatenate(
                [[0], np.nonzero(changes)[0] + 1, [n_rows]]
            )
            for start, stop in zip(bounds[:-1], bounds[1:]):
                config = tuple(int(c) for c in ordered[start])
                dist = model.distribution(config)
                draws = rng.choice(
                    model.cardinality, size=stop - start, p=dist
                )
                out[order[start:stop]] = draws
            samples[node] = out
        return samples

    def sample(self, n_rows: int, rng: np.random.Generator) -> Relation:
        """Sample a relation with decoded values ``"<attr>=<k>"``."""
        codes = self.sample_codes(n_rows, rng)
        schema = Schema.categorical(self._dag.nodes)
        codecs = {
            node: Codec(
                [f"{node}={k}" for k in range(self._models[node].cardinality)]
            )
            for node in self._dag.nodes
        }
        columns = {node: codes[node] for node in self._dag.nodes}
        return Relation.from_codes(columns, codecs, schema=schema)

    # ------------------------------------------------------------------
    # Ground truth extraction
    # ------------------------------------------------------------------

    def ground_truth_parent_map(self) -> dict[str, frozenset[str]]:
        """``{attribute: parent set}`` — the target of sketch learning."""
        return {n: self._dag.parents(n) for n in self._dag.nodes}


def _deterministic_table(
    parents_cards: Sequence[int],
    cardinality: int,
    mapping: Callable[[tuple[int, ...]], int],
    noise: float,
    rng: np.random.Generator,
) -> dict[tuple[int, ...], np.ndarray]:
    """Build a CPT realizing ``mapping`` with exogenous noise mass."""
    table: dict[tuple[int, ...], np.ndarray] = {}
    for config in _configurations(parents_cards):
        target = mapping(config) % cardinality
        dist = np.full(cardinality, 0.0)
        if cardinality == 1:
            dist[0] = 1.0
        elif noise <= 0.0:
            dist[target] = 1.0
        else:
            dist[:] = noise / (cardinality - 1)
            dist[target] = 1.0 - noise
        table[config] = dist
    return table


def _configurations(cards: Sequence[int]):
    if not cards:
        yield ()
        return
    head, *tail = cards
    for value in range(head):
        for rest in _configurations(tail):
            yield (value, *rest)


def random_sem(
    dag: DAG,
    cardinalities: Mapping[str, int] | int = 3,
    determinism: float = 1.0,
    unconstrained_fraction: float = 0.0,
    rng: np.random.Generator | None = None,
) -> DiscreteSEM:
    """Build a SEM over ``dag`` with random (mostly) deterministic tables.

    Parameters
    ----------
    cardinalities:
        Per-node cardinality, or a single int used for all nodes.
    determinism:
        Probability mass assigned to the modal value of each CPT row;
        1.0 yields fully deterministic mechanisms (the paper's target
        class), lower values model stochastic exogenous influence.
    unconstrained_fraction:
        Probability that a parent configuration is *unconstrained* —
        the child is drawn from a broad distribution rather than a
        deterministic function.  This is the regime the DSL handles and
        FDs cannot (§2.2 "some conditional branches being
        unconstrained"): a branch simply does not exist there, whereas
        an FD must cover every configuration or vanish.
    """
    rng = rng or np.random.default_rng(0)
    if isinstance(cardinalities, int):
        cards = {n: cardinalities for n in dag.nodes}
    else:
        cards = dict(cardinalities)
    models: dict[str, NodeModel] = {}
    for node in dag.nodes:
        parents = tuple(sorted(dag.parents(node)))
        parents_cards = [cards[p] for p in parents]
        cardinality = cards[node]
        if parents:
            # A random surjective-ish deterministic function of parents.
            assignment = {
                config: int(rng.integers(cardinality))
                for config in _configurations(parents_cards)
            }
            # Guarantee the child actually depends on its parents: force
            # at least two distinct outputs when possible.
            if cardinality > 1 and len(assignment) > 1:
                values = list(assignment.values())
                if len(set(values)) == 1:
                    key = next(iter(assignment))
                    assignment[key] = (assignment[key] + 1) % cardinality
            # Single-parent bijections make the auxiliary indicators of
            # parent and child identical, which violates faithfulness
            # for the downstream CI tests; merge two outputs to keep
            # the mechanism non-injective whenever there is room.
            if (
                len(parents) == 1
                and len(assignment) >= 3
                and len(set(assignment.values())) == len(assignment)
            ):
                keys = sorted(assignment)
                assignment[keys[1]] = assignment[keys[0]]
            table = _deterministic_table(
                parents_cards,
                cardinality,
                lambda cfg, a=assignment: a[cfg],
                noise=1.0 - determinism,
                rng=rng,
            )
            if unconstrained_fraction > 0.0 and cardinality > 1:
                configs = list(table)
                # Keep at least one constrained configuration so the
                # statement is never entirely vacuous.
                for config in configs[1:]:
                    if rng.random() < unconstrained_fraction:
                        table[config] = rng.dirichlet(
                            np.full(cardinality, 5.0)
                        )
        else:
            dist = rng.dirichlet(np.full(cardinality, 3.0))
            table = {(): dist}
        models[node] = NodeModel(node, parents, cardinality, table)
    return DiscreteSEM(dag, models)


def sem_to_program(sem: DiscreteSEM, relation: Relation, min_mode: float = 0.6):
    """The ground-truth DSL program entailed by a (mostly) deterministic SEM.

    For each node with parents, emit a statement whose branches map each
    *constrained* parent configuration observed in ``relation`` (modal
    probability at least ``min_mode``) to the SEM's modal child value;
    unconstrained configurations yield no branch.  Used as the oracle in
    end-to-end synthesis tests and for constraint-covered error scoring.
    """
    from ..dsl import Branch, Condition, Program, Statement

    statements = []
    for node in sem.dag.topological_order():
        model = sem.model(node)
        if not model.parents:
            continue
        observed = relation.group_indices(list(model.parents))
        branches = []
        for config in sorted(observed):
            atoms = tuple(
                (parent, relation.codec(parent).decode_one(code))
                for parent, code in zip(model.parents, config)
            )
            if any(value is None for _, value in atoms):
                continue
            distribution = model.distribution(config)
            if float(np.max(distribution)) < min_mode:
                continue  # unconstrained configuration
            literal = relation.codec(node).decode_one(model.modal_value(config))
            branches.append(Branch(Condition(atoms), node, literal))
        if branches:
            statements.append(
                Statement(tuple(model.parents), node, tuple(branches))
            )
    return Program(tuple(statements))
