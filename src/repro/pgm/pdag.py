"""Partially directed acyclic graphs, CPDAGs, and Meek's rules (§4.4).

A :class:`PDAG` mixes directed and undirected edges.  The *CPDAG* (the
canonical representative of a Markov equivalence class) is a PDAG whose
directed edges are exactly the orientations shared by every DAG in the
class.  :func:`cpdag_from_dag` computes it via the Verma–Pearl
characterization (skeleton + v-structures) followed by Meek-rule closure.
"""

from __future__ import annotations

from typing import Iterable

from .dag import DAG, Edge, GraphError


class OrientationConflict(GraphError):
    """Raised when Meek closure forces an edge in both directions."""


class PDAG:
    """A mutable partially directed graph over named nodes."""

    __slots__ = ("_nodes", "_directed", "_undirected")

    def __init__(
        self,
        nodes: Iterable[str],
        directed: Iterable[Edge] = (),
        undirected: Iterable[Edge] = (),
    ):
        self._nodes = tuple(dict.fromkeys(nodes))
        node_set = set(self._nodes)
        self._directed: set[Edge] = set()
        self._undirected: set[frozenset[str]] = set()
        for u, v in directed:
            if u not in node_set or v not in node_set:
                raise GraphError(f"directed edge ({u!r}, {v!r}) uses unknown node")
            self._directed.add((u, v))
        for u, v in undirected:
            if u not in node_set or v not in node_set:
                raise GraphError(
                    f"undirected edge ({u!r}, {v!r}) uses unknown node"
                )
            if u == v:
                raise GraphError(f"self-loop on {u!r}")
            self._undirected.add(frozenset((u, v)))
        for u, v in self._directed:
            if (v, u) in self._directed:
                raise GraphError(f"edge between {u!r} and {v!r} directed both ways")
            if frozenset((u, v)) in self._undirected:
                raise GraphError(
                    f"edge between {u!r} and {v!r} both directed and undirected"
                )

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        """The nodes, in insertion order."""
        return self._nodes

    def directed_edges(self) -> set[Edge]:
        """The directed edges as a set of (parent, child) pairs."""
        return set(self._directed)

    def undirected_edges(self) -> list[tuple[str, str]]:
        """The undirected edges as sorted pairs."""
        return sorted(tuple(sorted(e)) for e in self._undirected)

    @property
    def n_undirected(self) -> int:
        """Number of undirected edges."""
        return len(self._undirected)

    def has_directed(self, u: str, v: str) -> bool:
        """Is there a directed edge ``u -> v``?"""
        return (u, v) in self._directed

    def has_undirected(self, u: str, v: str) -> bool:
        """Is there an undirected edge ``u - v``?"""
        return frozenset((u, v)) in self._undirected

    def adjacent(self, u: str, v: str) -> bool:
        """Are ``u`` and ``v`` joined by any edge?"""
        return (
            (u, v) in self._directed
            or (v, u) in self._directed
            or frozenset((u, v)) in self._undirected
        )

    def parents(self, node: str) -> set[str]:
        """Nodes with a directed edge into ``node``."""
        return {u for u, v in self._directed if v == node}

    def children(self, node: str) -> set[str]:
        """Nodes ``node`` has a directed edge to."""
        return {v for u, v in self._directed if u == node}

    def undirected_neighbors(self, node: str) -> set[str]:
        """Nodes joined to ``node`` by an undirected edge."""
        return {
            next(iter(e - {node}))
            for e in self._undirected
            if node in e
        }

    def neighbors(self, node: str) -> set[str]:
        """All adjacent nodes, directed or not."""
        return self.parents(node) | self.children(node) | self.undirected_neighbors(node)

    def copy(self) -> "PDAG":
        """A deep, independent copy of the pattern."""
        clone = PDAG(self._nodes)
        clone._directed = set(self._directed)
        clone._undirected = set(self._undirected)
        return clone

    # ------------------------------------------------------------------
    # Orientation
    # ------------------------------------------------------------------

    def orient(self, u: str, v: str) -> None:
        """Turn the undirected edge ``u - v`` into ``u -> v``.

        Raises :class:`OrientationConflict` if the edge is already
        directed the other way; a no-op if already directed ``u -> v``.
        """
        if (u, v) in self._directed:
            return
        if (v, u) in self._directed:
            raise OrientationConflict(f"edge {v!r} -> {u!r} already oriented")
        key = frozenset((u, v))
        if key not in self._undirected:
            raise GraphError(f"no undirected edge between {u!r} and {v!r}")
        self._undirected.discard(key)
        self._directed.add((u, v))

    def creates_cycle(self, u: str, v: str) -> bool:
        """Would orienting ``u -> v`` create a directed cycle?"""
        # Cycle iff a directed path v ~> u already exists.
        frontier = [v]
        seen = {v}
        while frontier:
            node = frontier.pop()
            if node == u:
                return True
            for child in self.children(node):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return False

    def creates_new_v_structure(self, u: str, v: str) -> bool:
        """Would orienting ``u -> v`` create an unshielded collider at v?"""
        return any(not self.adjacent(w, u) for w in self.parents(v) if w != u)

    def apply_meek_rules(self) -> bool:
        """Apply Meek's orientation rules R1–R4 until a fixed point.

        Returns True if any edge was oriented.  Raises
        :class:`OrientationConflict` on contradiction.
        """
        changed_any = False
        changed = True
        while changed:
            changed = False
            for a, b in list(self.undirected_edges()):
                for x, y in ((a, b), (b, a)):
                    if self._meek_applies(x, y):
                        self.orient(x, y)
                        changed = True
                        changed_any = True
                        break
        return changed_any

    def _meek_applies(self, x: str, y: str) -> bool:
        """Does any Meek rule force orientation ``x -> y``?"""
        # R1: some w -> x with w, y nonadjacent.
        for w in self.parents(x):
            if not self.adjacent(w, y):
                return True
        # R2: directed path x -> c -> y with x - y undirected.
        for c in self.children(x):
            if self.has_directed(c, y):
                return True
        # R3: x - c -> y and x - d -> y with c, d nonadjacent.
        through = [
            c
            for c in self.undirected_neighbors(x)
            if self.has_directed(c, y)
        ]
        for i, c in enumerate(through):
            for d in through[i + 1 :]:
                if not self.adjacent(c, d):
                    return True
        # R4: x - d, d -> c, c -> y, with d, y nonadjacent (and x adj c
        # through any edge type).  Needed for closure under background
        # knowledge (our enumeration orients edges speculatively).
        for d in self.undirected_neighbors(x):
            for c in self.children(d):
                if self.has_directed(c, y) and not self.adjacent(d, y):
                    return True
        return False

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def to_dag(self) -> DAG:
        """Interpret a fully directed PDAG as a DAG."""
        if self._undirected:
            raise GraphError("PDAG still has undirected edges")
        return DAG(self._nodes, self._directed)

    def skeleton(self) -> set[frozenset[str]]:
        """The undirected skeleton as a set of node pairs."""
        return {frozenset(e) for e in self._directed} | set(self._undirected)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PDAG):
            return NotImplemented
        return (
            set(self._nodes) == set(other._nodes)
            and self._directed == other._directed
            and self._undirected == other._undirected
        )

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self._nodes),
                frozenset(self._directed),
                frozenset(self._undirected),
            )
        )

    def __repr__(self) -> str:
        return (
            f"PDAG({len(self._nodes)} nodes, {len(self._directed)} directed, "
            f"{len(self._undirected)} undirected)"
        )


def cpdag_from_dag(dag: DAG) -> PDAG:
    """The CPDAG of ``dag``'s Markov equivalence class.

    Start from the skeleton, direct exactly the v-structure edges, then
    close under Meek's rules; everything left undirected is reversible
    within the class (Verma & Pearl; Meek 1995).
    """
    directed: set[Edge] = set()
    for a, collider, b in dag.v_structures():
        directed.add((a, collider))
        directed.add((b, collider))
    undirected = {
        frozenset((p, c))
        for p, c in dag.edges()
        if (p, c) not in directed and (c, p) not in directed
    }
    pdag = PDAG(
        dag.nodes,
        directed,
        (tuple(sorted(e)) for e in undirected),
    )
    pdag.apply_meek_rules()
    return pdag
