"""Directed acyclic graphs over named attributes (paper §4.2).

A :class:`DAG` represents the structure of a structural equation model:
nodes are dataset attributes and each directed edge ``u -> v`` says that
``u`` participates in generating ``v``.  Includes topological ordering,
ancestor/descendant queries, and d-separation (the reachability algorithm
of Koller & Friedman, Alg. 3.1), which underpins the faithfulness-based
proofs in the paper and our property tests.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Mapping, Sequence


class GraphError(ValueError):
    """Raised for cyclic inputs or unknown nodes."""


Edge = tuple[str, str]


class DAG:
    """An immutable directed acyclic graph.

    Parameters
    ----------
    nodes:
        All node names (isolated nodes allowed).
    edges:
        Directed edges as ``(parent, child)`` pairs.
    """

    __slots__ = ("_nodes", "_parents", "_children", "_order")

    def __init__(self, nodes: Iterable[str], edges: Iterable[Edge] = ()):
        node_tuple = tuple(dict.fromkeys(nodes))
        node_set = set(node_tuple)
        parents: dict[str, set[str]] = {n: set() for n in node_tuple}
        children: dict[str, set[str]] = {n: set() for n in node_tuple}
        for parent, child in edges:
            if parent not in node_set or child not in node_set:
                raise GraphError(f"edge ({parent!r}, {child!r}) uses unknown node")
            if parent == child:
                raise GraphError(f"self-loop on {parent!r}")
            parents[child].add(parent)
            children[parent].add(child)
        self._nodes = node_tuple
        self._parents = {n: frozenset(p) for n, p in parents.items()}
        self._children = {n: frozenset(c) for n, c in children.items()}
        self._order = self._topological_sort()

    def _topological_sort(self) -> tuple[str, ...]:
        in_degree = {n: len(self._parents[n]) for n in self._nodes}
        queue = deque(n for n in self._nodes if in_degree[n] == 0)
        order: list[str] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for child in sorted(self._children[node]):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._nodes):
            raise GraphError("graph contains a directed cycle")
        return tuple(order)

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        """The nodes, in insertion order."""
        return self._nodes

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def edges(self) -> list[Edge]:
        """All directed edges as (parent, child) pairs."""
        return [
            (parent, child)
            for child in self._nodes
            for parent in sorted(self._parents[child])
        ]

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return sum(len(self._parents[n]) for n in self._nodes)

    def parents(self, node: str) -> frozenset[str]:
        """The parents of ``node``."""
        try:
            return self._parents[node]
        except KeyError:
            raise GraphError(f"unknown node: {node!r}") from None

    def children(self, node: str) -> frozenset[str]:
        """The children of ``node``."""
        try:
            return self._children[node]
        except KeyError:
            raise GraphError(f"unknown node: {node!r}") from None

    def has_edge(self, parent: str, child: str) -> bool:
        """Is there an edge ``parent -> child``?"""
        return parent in self._parents.get(child, frozenset())

    def adjacent(self, u: str, v: str) -> bool:
        """Are ``u`` and ``v`` joined by an edge in either direction?"""
        return self.has_edge(u, v) or self.has_edge(v, u)

    def neighbors(self, node: str) -> frozenset[str]:
        """Parents and children of ``node``."""
        return self.parents(node) | self.children(node)

    def topological_order(self) -> tuple[str, ...]:
        """The nodes in a deterministic topological order."""
        return self._order

    def ancestors(self, node: str) -> frozenset[str]:
        """All strict ancestors of ``node``."""
        seen: set[str] = set()
        frontier = list(self.parents(node))
        while frontier:
            current = frontier.pop()
            if current not in seen:
                seen.add(current)
                frontier.extend(self._parents[current])
        return frozenset(seen)

    def descendants(self, node: str) -> frozenset[str]:
        """All strict descendants of ``node``."""
        seen: set[str] = set()
        frontier = list(self.children(node))
        while frontier:
            current = frontier.pop()
            if current not in seen:
                seen.add(current)
                frontier.extend(self._children[current])
        return frozenset(seen)

    # ------------------------------------------------------------------
    # d-separation
    # ------------------------------------------------------------------

    def d_separated(
        self, x: str, y: str, given: Iterable[str] = ()
    ) -> bool:
        """Is ``x`` d-separated from ``y`` given the conditioning set?

        Uses the standard reachability ("Bayes ball") algorithm: a node is
        d-connected to ``x`` if an active trail reaches it.  ``x`` and
        ``y`` must not be in the conditioning set.
        """
        z = frozenset(given)
        if x in z or y in z:
            raise GraphError("endpoints cannot be in the conditioning set")
        return y not in self._reachable(x, z)

    def _reachable(self, source: str, z: frozenset[str]) -> set[str]:
        # Phase 1: ancestors of Z (needed to activate colliders).
        z_ancestors = set(z)
        frontier = list(z)
        while frontier:
            node = frontier.pop()
            for parent in self._parents[node]:
                if parent not in z_ancestors:
                    z_ancestors.add(parent)
                    frontier.append(parent)

        # Phase 2: traverse active trails.  State: (node, direction),
        # direction 'up' = trail arrived via an edge out of node (from a
        # child), 'down' = trail arrived via an edge into node.
        visited: set[tuple[str, str]] = set()
        reachable: set[str] = set()
        queue: deque[tuple[str, str]] = deque([(source, "up")])
        while queue:
            node, direction = queue.popleft()
            if (node, direction) in visited:
                continue
            visited.add((node, direction))
            if node not in z and node != source:
                reachable.add(node)
            if direction == "up" and node not in z:
                for parent in self._parents[node]:
                    queue.append((parent, "up"))
                for child in self._children[node]:
                    queue.append((child, "down"))
            elif direction == "down":
                if node not in z:
                    for child in self._children[node]:
                        queue.append((child, "down"))
                if node in z_ancestors:
                    for parent in self._parents[node]:
                        queue.append((parent, "up"))
        return reachable

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------

    def v_structures(self) -> set[tuple[str, str, str]]:
        """Unshielded colliders as ``(a, c, b)`` with ``a -> c <- b``.

        Endpoints are normalized so ``a < b`` lexicographically.
        """
        out: set[tuple[str, str, str]] = set()
        for collider in self._nodes:
            parent_list = sorted(self._parents[collider])
            for i, a in enumerate(parent_list):
                for b in parent_list[i + 1 :]:
                    if not self.adjacent(a, b):
                        out.add((a, collider, b))
        return out

    def skeleton(self) -> set[frozenset[str]]:
        """The undirected edge set."""
        return {frozenset((p, c)) for p, c in self.edges()}

    def markov_equivalent(self, other: "DAG") -> bool:
        """Verma–Pearl criterion: same skeleton and same v-structures."""
        return (
            self.skeleton() == other.skeleton()
            and self.v_structures() == other.v_structures()
        )

    def parent_map(self) -> dict[str, frozenset[str]]:
        """Node -> parent-set mapping for the whole DAG."""
        return dict(self._parents)

    @classmethod
    def from_parent_map(
        cls, parent_map: Mapping[str, Sequence[str]]
    ) -> "DAG":
        """Build from ``{child: [parents...]}``; keys define the node set."""
        nodes = list(parent_map.keys())
        extra = [
            p for ps in parent_map.values() for p in ps if p not in parent_map
        ]
        edges = [
            (parent, child)
            for child, parents in parent_map.items()
            for parent in parents
        ]
        return cls(nodes + extra, edges)

    def relabel(self, mapping: Mapping[str, str]) -> "DAG":
        """Rename nodes; identity for names not in ``mapping``."""
        rename = lambda n: mapping.get(n, n)  # noqa: E731
        return DAG(
            (rename(n) for n in self._nodes),
            ((rename(p), rename(c)) for p, c in self.edges()),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DAG):
            return NotImplemented
        return set(self._nodes) == set(other._nodes) and set(
            self.edges()
        ) == set(other.edges())

    def __hash__(self) -> int:
        return hash((frozenset(self._nodes), frozenset(self.edges())))

    def __iter__(self) -> Iterator[str]:
        return iter(self._nodes)

    def __repr__(self) -> str:
        return f"DAG({len(self._nodes)} nodes, {self.n_edges} edges)"
