"""Search-space counting for Table 7 (paper §8.3).

The "w/o MEC" column of Table 7 reports the size of the unconstrained
structure search space: the number of labeled DAGs on *n* nodes, given by
Robinson's recurrence

    a(n) = Σ_{k=1..n} (-1)^{k+1} C(n, k) 2^{k (n-k)} a(n-k),  a(0) = 1.

The "w/ MEC" column is the number of DAGs in the learned equivalence
class (see :mod:`repro.pgm.mec`).
"""

from __future__ import annotations

from functools import lru_cache
from math import comb


@lru_cache(maxsize=None)
def count_dags(n: int) -> int:
    """Number of labeled DAGs on ``n`` nodes (OEIS A003024)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 1
    total = 0
    for k in range(1, n + 1):
        sign = 1 if k % 2 == 1 else -1
        total += sign * comb(n, k) * (1 << (k * (n - k))) * count_dags(n - k)
    return total


def count_dags_scientific(n: int) -> str:
    """Render ``count_dags(n)`` in the paper's ``m.nn x 10^k`` style."""
    value = count_dags(n)
    if value < 1000:
        return str(value)
    text = f"{float(value):.2e}"
    mantissa, exponent = text.split("e")
    return f"{mantissa} x 10^{int(exponent)}"
