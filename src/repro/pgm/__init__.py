"""Probabilistic graphical model substrate.

DAGs, d-separation, CPDAGs with Meek's rules, Markov equivalence class
enumeration, DAG counting, conditional independence tests, the PC
structure-learning algorithm, and discrete structural equation models.
"""

from .counting import count_dags, count_dags_scientific
from .dag import DAG, Edge, GraphError
from .independence import CIResult, CITester, IndependenceError
from .mec import (
    enumerate_mec,
    enumerate_mec_brute_force,
    mec_of,
    mec_size,
    mec_size_factorized,
    undirected_components,
)
from .pc import OracleCITester, PCResult, learn_cpdag
from .pdag import PDAG, OrientationConflict, cpdag_from_dag
from .scoring import BicScorer, HillClimbResult, hill_climb
from .sem import DiscreteSEM, NodeModel, random_sem, sem_to_program

__all__ = [
    "DAG",
    "Edge",
    "GraphError",
    "PDAG",
    "OrientationConflict",
    "cpdag_from_dag",
    "enumerate_mec",
    "enumerate_mec_brute_force",
    "mec_of",
    "mec_size",
    "mec_size_factorized",
    "undirected_components",
    "count_dags",
    "count_dags_scientific",
    "CIResult",
    "CITester",
    "IndependenceError",
    "OracleCITester",
    "PCResult",
    "learn_cpdag",
    "BicScorer",
    "HillClimbResult",
    "hill_climb",
    "DiscreteSEM",
    "NodeModel",
    "random_sem",
    "sem_to_program",
]
