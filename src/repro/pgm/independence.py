"""Conditional independence tests for discrete data.

Structure learning (the PC algorithm, §4.4–4.5) is driven by CI queries
``X ⊥ Y | Z`` answered from data.  We provide the standard G² likelihood-
ratio test and Pearson's χ² test over contingency tables, both computed
vectorized from integer-coded columns.

Tests operate on a :class:`CITester` bound to a code matrix so repeated
queries (PC issues many) can share stratification work and a memo table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from ..relation import MISSING, Relation


class IndependenceError(ValueError):
    """Raised for malformed CI queries."""


@dataclass(frozen=True)
class CIResult:
    """Outcome of a conditional independence test."""

    statistic: float
    p_value: float
    dof: int
    independent: bool

    def __bool__(self) -> bool:  # truthiness == "independent"
        return self.independent


def _crosstab(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Dense contingency table of two small-cardinality code columns."""
    x_vals, x_idx = np.unique(x, return_inverse=True)
    y_vals, y_idx = np.unique(y, return_inverse=True)
    table = np.zeros((len(x_vals), len(y_vals)), dtype=np.float64)
    np.add.at(table, (x_idx, y_idx), 1.0)
    return table


def _g2_from_table(table: np.ndarray) -> tuple[float, int]:
    """G² statistic and degrees of freedom of one contingency table."""
    total = table.sum()
    if total == 0:
        return 0.0, 0
    rows = table.sum(axis=1, keepdims=True)
    cols = table.sum(axis=0, keepdims=True)
    expected = rows @ cols / total
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(table > 0, table / expected, 1.0)
        g2 = 2.0 * float(np.sum(table * np.log(ratio)))
    # Degrees of freedom with structural-zero adjustment: drop empty
    # rows/columns before counting.
    nonzero_rows = int(np.count_nonzero(rows))
    nonzero_cols = int(np.count_nonzero(cols))
    dof = max(nonzero_rows - 1, 0) * max(nonzero_cols - 1, 0)
    return max(g2, 0.0), dof


def _x2_from_table(table: np.ndarray) -> tuple[float, int]:
    """Pearson χ² statistic and degrees of freedom of one table."""
    total = table.sum()
    if total == 0:
        return 0.0, 0
    rows = table.sum(axis=1, keepdims=True)
    cols = table.sum(axis=0, keepdims=True)
    expected = rows @ cols / total
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(expected > 0, (table - expected) ** 2 / expected, 0.0)
    x2 = float(terms.sum())
    nonzero_rows = int(np.count_nonzero(rows))
    nonzero_cols = int(np.count_nonzero(cols))
    dof = max(nonzero_rows - 1, 0) * max(nonzero_cols - 1, 0)
    return x2, dof


class CITester:
    """Conditional independence oracle over an integer code matrix.

    Parameters
    ----------
    codes:
        ``(n_rows, n_columns)`` integer matrix; rows containing
        :data:`~repro.relation.MISSING` in the queried columns are
        dropped per query.
    names:
        Column names, used for query addressing.
    alpha:
        Significance level; p-values above ``alpha`` are read as
        independent.
    method:
        ``"g2"`` (default) or ``"x2"``.
    min_samples_per_dof:
        Heuristic sample-size guard: when the per-stratum table would
        have fewer samples than this multiple of its degrees of freedom,
        the stratum is skipped (standard practice in discrete PC
        implementations to avoid vacuous rejections).
    """

    def __init__(
        self,
        codes: np.ndarray,
        names: Sequence[str],
        alpha: float = 0.05,
        method: str = "g2",
        min_samples_per_dof: float = 0.0,
    ):
        codes = np.asarray(codes)
        if codes.ndim != 2:
            raise IndependenceError("codes must be a 2-D matrix")
        if codes.shape[1] != len(names):
            raise IndependenceError("names do not match matrix width")
        if method not in ("g2", "x2"):
            raise IndependenceError(f"unknown method: {method!r}")
        self._codes = codes
        self._names = list(names)
        self._positions = {name: i for i, name in enumerate(self._names)}
        self.alpha = alpha
        self.method = method
        self.min_samples_per_dof = min_samples_per_dof
        self._memo: dict[tuple, CIResult] = {}
        self.n_queries = 0

    @classmethod
    def from_relation(
        cls, relation: Relation, alpha: float = 0.05, method: str = "g2"
    ) -> "CITester":
        """Build a tester from a relation's encoded categorical columns."""
        names = relation.schema.categorical_names()
        return cls(relation.codes_matrix(names), names, alpha=alpha, method=method)

    @property
    def names(self) -> list[str]:
        """The variable names, in column order."""
        return list(self._names)

    def _column(self, name: str) -> np.ndarray:
        try:
            return self._codes[:, self._positions[name]]
        except KeyError:
            raise IndependenceError(f"unknown column: {name!r}") from None

    def test(
        self, x: str, y: str, given: Sequence[str] = ()
    ) -> CIResult:
        """Test ``x ⊥ y | given`` and return the full result."""
        if x == y:
            raise IndependenceError("x and y must differ")
        z = tuple(sorted(given))
        if x in z or y in z:
            raise IndependenceError("conditioning set cannot contain x or y")
        key = (min(x, y), max(x, y), z)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        self.n_queries += 1
        result = self._run_test(x, y, z)
        self._memo[key] = result
        return result

    def independent(self, x: str, y: str, given: Sequence[str] = ()) -> bool:
        """Convenience wrapper returning only the verdict."""
        return self.test(x, y, given).independent

    def _run_test(self, x: str, y: str, z: tuple[str, ...]) -> CIResult:
        x_col = self._column(x)
        y_col = self._column(y)
        keep = (x_col != MISSING) & (y_col != MISSING)
        z_cols = [self._column(name) for name in z]
        for col in z_cols:
            keep &= col != MISSING
        x_col, y_col = x_col[keep], y_col[keep]
        z_cols = [col[keep] for col in z_cols]

        if x_col.size == 0:
            return CIResult(0.0, 1.0, 0, True)

        stat_fn = _g2_from_table if self.method == "g2" else _x2_from_table
        statistic = 0.0
        dof = 0
        if not z:
            statistic, dof = stat_fn(_crosstab(x_col, y_col))
            if (
                self.min_samples_per_dof > 0
                and dof > 0
                and x_col.size < self.min_samples_per_dof * dof
            ):
                # Too sparse to be informative (standard discrete-PC
                # practice): treat as independent.
                return CIResult(statistic, 1.0, 0, True)
        else:
            strata = _stratify(z_cols)
            for indices in strata:
                table = _crosstab(x_col[indices], y_col[indices])
                s, d = stat_fn(table)
                if (
                    self.min_samples_per_dof > 0
                    and d > 0
                    and indices.size < self.min_samples_per_dof * d
                ):
                    continue
                statistic += s
                dof += d
        if dof == 0:
            # Degenerate tables (a constant margin everywhere) carry no
            # evidence of dependence.
            return CIResult(statistic, 1.0, 0, True)
        p_value = float(stats.chi2.sf(statistic, dof))
        return CIResult(statistic, p_value, dof, p_value > self.alpha)


def _stratify(z_cols: list[np.ndarray]) -> list[np.ndarray]:
    """Index arrays for each observed combination of the z columns."""
    if not z_cols:
        return [np.arange(z_cols[0].size) if z_cols else np.array([], dtype=int)]
    stacked = np.column_stack(z_cols)
    order = np.lexsort(stacked.T[::-1])
    ordered = stacked[order]
    changes = np.any(np.diff(ordered, axis=0) != 0, axis=1)
    bounds = np.concatenate([[0], np.nonzero(changes)[0] + 1, [len(order)]])
    return [order[s:e] for s, e in zip(bounds[:-1], bounds[1:])]
