"""The OptSMT-style monolithic synthesis baseline (paper §8.1, §8.3).

The paper implements a baseline that hands the whole synthesis problem to
an optimizing SMT solver (vZ) and observes that it "yields tens of
millions of clauses" and times out even on four attributes.  We cannot
ship vZ, so we reproduce the *formulation* and its blow-up with a
from-scratch optimizing solver:

* the encoding enumerates every candidate statement sketch (each
  dependent × each determinant subset up to ``max_determinants``), every
  warranted condition under it, and one soft clause per (row ∈ D^b,
  candidate literal) — :func:`estimate_clause_count` counts these without
  materializing them, reproducing the clause-explosion numbers;
* :class:`OptSmtSynthesizer` then runs an exact branch-and-bound over
  per-dependent sketch choices under the global acyclicity constraint
  (a DGP must be a DAG), maximizing coverage among ε-valid candidates —
  the same objective as Alg. 2, but over the unreduced search space.

The solver is exact but exponential; with a time budget it reports
``timed_out=True``, which is precisely the behaviour Table 7 and §8.3
attribute to the monolithic approach.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations

from ..dsl import Program, Statement, program_coverage, statement_coverage
from ..relation import Relation
from ..sketch import StatementSketch, fill_statement_sketch


class SolverBudgetExceeded(RuntimeError):
    """Raised when the encoding or search exceeds its configured budget."""


def iter_candidate_sketches(
    attributes: list[str], max_determinants: int
):
    """Every (determinant subset, dependent) pair — the unreduced space."""
    for dependent in attributes:
        others = [a for a in attributes if a != dependent]
        for size in range(1, max_determinants + 1):
            for subset in combinations(others, size):
                yield StatementSketch(subset, dependent)


def estimate_clause_count(
    relation: Relation, max_determinants: int = 2
) -> int:
    """Soft-clause count of the monolithic OptSMT encoding.

    One clause per (candidate sketch, warranted condition, candidate
    literal, covered row).  For a condition with support ``s`` and a
    dependent domain of size ``m`` that is ``s * m`` clauses; summing
    over all conditions of a sketch gives ``n_rows * m`` (conditions
    partition the rows), so the count is computed in closed form.
    """
    attributes = list(relation.schema.categorical_names())
    n_rows = relation.n_rows
    total = 0
    for sketch in iter_candidate_sketches(attributes, max_determinants):
        total += n_rows * max(relation.cardinality(sketch.dependent), 1)
    return total


@dataclass
class OptSmtOutcome:
    """Result of a monolithic solve attempt."""

    program: Program
    coverage: float
    timed_out: bool
    n_candidates: int
    n_clauses: int
    elapsed: float
    nodes_explored: int = 0


@dataclass
class OptSmtSynthesizer:
    """Exact (exponential) synthesis over the unreduced program space.

    Parameters
    ----------
    epsilon:
        Noise tolerance, as in Eqn. 3.
    max_determinants:
        Largest determinant set considered per statement.
    time_limit:
        Wall-clock budget in seconds; exceeding it aborts the search and
        returns the incumbent with ``timed_out=True``.
    max_clauses:
        Abort immediately (without search) if the encoding would exceed
        this many soft clauses — mirrors the solver capacity limits the
        paper reports.
    budget:
        Optional :class:`repro.resilience.Budget` shared with the rest
        of a pipeline run; its remaining wall-clock (and step cap,
        charged per search node) tightens ``time_limit``, and
        exhaustion reports ``timed_out=True`` like a deadline would.
    """

    epsilon: float = 0.01
    max_determinants: int = 2
    time_limit: float = 10.0
    max_clauses: int | None = None
    min_support: int = 1
    budget: object | None = None
    _deadline: float = field(default=0.0, repr=False)

    def solve(self, relation: Relation) -> OptSmtOutcome:
        """Run the OptSMT encoding on ``relation``; return the outcome."""
        start = time.perf_counter()
        limit = self.time_limit
        if self.budget is not None:
            self.budget.start()
            remaining = self.budget.remaining_seconds()
            if remaining is not None:
                limit = min(limit, remaining)
        self._deadline = start + limit
        n_clauses = estimate_clause_count(relation, self.max_determinants)
        if self.max_clauses is not None and n_clauses > self.max_clauses:
            raise SolverBudgetExceeded(
                f"encoding needs {n_clauses} clauses "
                f"(budget {self.max_clauses})"
            )

        attributes = list(relation.schema.categorical_names())
        # Concretize every candidate sketch up front (the "ground" step
        # of the encoding).  ε-invalid candidates drop out here.
        candidates: dict[str, list[tuple[StatementSketch, Statement, float]]] = {
            a: [] for a in attributes
        }
        n_candidates = 0
        timed_out = False
        for sketch in iter_candidate_sketches(
            attributes, self.max_determinants
        ):
            if time.perf_counter() > self._deadline:
                timed_out = True
                break
            if self.budget is not None:
                self.budget.spend(1, kind="optsmt.ground")
                if self.budget.exhausted():
                    timed_out = True
                    break
            n_candidates += 1
            statement = fill_statement_sketch(
                sketch, relation, self.epsilon, min_support=self.min_support
            )
            if statement is None:
                continue
            coverage = statement_coverage(statement, relation)
            candidates[sketch.dependent].append((sketch, statement, coverage))

        for options in candidates.values():
            options.sort(key=lambda item: -item[2])

        best = {"coverage": -1.0, "program": Program.empty(), "nodes": 0}
        if not timed_out:
            try:
                self._search(attributes, candidates, 0, [], set(), best)
            except SolverBudgetExceeded:
                timed_out = True
        program = best["program"]
        return OptSmtOutcome(
            program=program,
            coverage=program_coverage(program, relation),
            timed_out=timed_out,
            n_candidates=n_candidates,
            n_clauses=n_clauses,
            elapsed=time.perf_counter() - start,
            nodes_explored=best["nodes"],
        )

    def _search(
        self,
        attributes: list[str],
        candidates: dict[str, list[tuple[StatementSketch, Statement, float]]],
        index: int,
        chosen: list[tuple[Statement, float]],
        edges: set[tuple[str, str]],
        best: dict,
    ) -> None:
        """Branch over per-dependent sketch choice under acyclicity."""
        best["nodes"] += 1
        if best["nodes"] % 256 == 0:
            if time.perf_counter() > self._deadline:
                raise SolverBudgetExceeded("time budget exhausted")
            if self.budget is not None:
                self.budget.spend(256, kind="optsmt.node")
                if self.budget.exhausted():
                    raise SolverBudgetExceeded("shared budget exhausted")
        if index == len(attributes):
            if chosen:
                coverage = sum(c for _, c in chosen) / len(chosen)
            else:
                coverage = 0.0
            if coverage > best["coverage"]:
                best["coverage"] = coverage
                best["program"] = Program(tuple(s for s, _ in chosen))
            return
        dependent = attributes[index]
        # Option 1: leave this attribute unmodeled.
        self._search(attributes, candidates, index + 1, chosen, edges, best)
        # Option 2: each ε-valid candidate that keeps the edge set acyclic.
        for sketch, statement, coverage in candidates[dependent]:
            new_edges = {(d, dependent) for d in sketch.determinants}
            if _would_cycle(edges | new_edges):
                continue
            chosen.append((statement, coverage))
            self._search(
                attributes, candidates, index + 1, chosen,
                edges | new_edges, best,
            )
            chosen.pop()


def _would_cycle(edges: set[tuple[str, str]]) -> bool:
    """Cycle check on a small edge set (Kahn's algorithm)."""
    nodes = {u for u, _ in edges} | {v for _, v in edges}
    indeg = {n: 0 for n in nodes}
    for _, v in edges:
        indeg[v] += 1
    queue = [n for n in nodes if indeg[n] == 0]
    seen = 0
    while queue:
        node = queue.pop()
        seen += 1
        for u, v in edges:
            if u == node:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
    return seen != len(nodes)
