"""GUARDRAIL synthesis: Algorithm 2 and the user-facing facade.

Pipeline (paper Fig. 4):

    data ──sampler──> auxiliary samples ──PC──> CPDAG (the MEC)
         ──enumerate DAGs──> sketches ──Alg. 1──> candidate programs
         ──max coverage──> the synthesized integrity-constraint program

:func:`synthesize` runs the pipeline once and returns the best program
plus diagnostics; :class:`Guardrail` wraps it in a fit/check/handle API
mirroring the paper's deployment story (Fig. 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..dsl import Program, program_coverage, program_loss, program_violations
from ..pgm import CITester, PCResult, enumerate_mec, learn_cpdag
from ..relation import Relation
from ..sketch import FillCache, FillStats, ProgramSketch, SketchJudge, fill_program_sketch
from .config import GuardrailConfig


class GuardrailLoadError(ValueError):
    """Raised by :meth:`Guardrail.load` on a missing/corrupt payload."""


@dataclass
class SynthesisResult:
    """The synthesized program plus everything the evaluation reports."""

    program: Program
    coverage: float
    loss: int
    pc_result: PCResult
    n_dags_enumerated: int
    fill_stats: FillStats
    timings: dict[str, float] = field(default_factory=dict)
    partial: bool = False
    """True when a :class:`repro.resilience.Budget` cut a phase short;
    the program is the best found within the budget, not the optimum."""
    budget_notes: tuple[str, ...] = ()
    """Which phases were truncated and where (empty when complete)."""
    resumed: bool = False
    """True when this run continued from a journaled checkpoint
    (``synthesize(resume_from=...)``) instead of starting fresh."""

    @property
    def total_time(self) -> float:
        """Sum of the per-phase wall-clock timings."""
        return sum(self.timings.values())


def enumerate_candidate_dags(
    cpdag, max_dags: int | None = None, budget=None
):
    """DAG candidates entailed by a (possibly noisy) learned pattern.

    Yields the consistent extensions of the pattern; when the pattern
    admits none (conflicting collider evidence on finite data can make
    it cyclic), falls back to extensions of its undirected *skeleton*
    so downstream coverage selection always has candidates.
    """
    from ..pgm import PDAG

    produced = 0
    for dag in enumerate_mec(
        cpdag, max_dags=max_dags, verify_leaves=False, budget=budget
    ):
        produced += 1
        yield dag
    if produced == 0 and cpdag.skeleton():
        skeleton = PDAG(
            cpdag.nodes,
            undirected=(tuple(sorted(e)) for e in cpdag.skeleton()),
        )
        for dag in enumerate_mec(
            skeleton, max_dags=max_dags, verify_leaves=False, budget=budget
        ):
            produced += 1
            yield dag
    if produced == 0 and cpdag.skeleton():
        # Non-chordal skeletons admit no collider-free orientation at
        # all; orient along a fixed node order as a last-resort
        # candidate (always acyclic; coverage selection judges it).
        from ..pgm import DAG

        order = {node: i for i, node in enumerate(cpdag.nodes)}
        edges = [
            tuple(sorted(edge, key=lambda n: order[n]))
            for edge in cpdag.skeleton()
        ]
        yield DAG(cpdag.nodes, edges)


_WORKER_FILL_CACHES: dict[int, FillCache] = {}
"""Per-process fill caches for :func:`_fill_dag_job`, keyed by the
identity of the fork-inherited shared tuple (fresh per pool launch)."""


def _fill_dag_job(index: int):
    """Worker task: prune + fill one candidate DAG (parallel Alg. 2).

    Reads the fork-inherited shared tuple ``(relation, dags, epsilon,
    min_support, judge, seed_entries)``, fills against a worker-local
    :class:`~repro.sketch.FillCache` seeded from the parent's, and
    returns ``(program, selection_score, delta_entries, stats)`` — the
    parent merges the delta into the shared cache and applies the
    serial earliest-maximum selection rule in DAG order.
    """
    from ..parallel import get_shared

    shared = get_shared()
    relation, dags, epsilon, min_support, judge, seed_entries = shared
    local = _WORKER_FILL_CACHES.get(id(shared))
    if local is None:
        local = FillCache(entries=dict(seed_entries))
        _WORKER_FILL_CACHES[id(shared)] = local
    sketch = ProgramSketch.from_dag(dags[index])
    if judge is not None:
        sketch = judge.prune_to_gnt(sketch)
    stats = FillStats()
    before = set(local.entries)
    program = fill_program_sketch(
        sketch,
        relation,
        epsilon,
        min_support=min_support,
        cache=local,
        stats=stats,
    )
    delta = {
        key: value
        for key, value in local.entries.items()
        if key not in before
    }
    score = program_coverage(program, relation) * max(len(program), 1)
    return program, score, delta, stats


def synthesize(
    relation: Relation,
    config: GuardrailConfig | None = None,
    budget=None,
    *,
    workers=None,
    warm_start=None,
    fill_cache: FillCache | None = None,
    checkpoint_path=None,
    resume_from=None,
) -> SynthesisResult:
    """Synthesize the optimal ε-valid program for a dataset (Alg. 2).

    Enumerates the DAGs of the learned Markov equivalence class, derives
    the program sketch each DAG entails, concretizes it with Algorithm 1
    (sharing a statement-level fill cache across DAGs), and returns the
    program with the highest coverage.

    With a :class:`repro.resilience.Budget`, every combinatorial phase
    (PC's CI tests, MEC enumeration, sketch filling) spends against it
    and stops gracefully on exhaustion; the result is then the best
    program found so far, flagged ``partial=True``.  The first candidate
    DAG is always concretized in full, so a budgeted run returns a
    usable program whenever the data admits one.

    Parameters
    ----------
    workers:
        An int or a :class:`repro.parallel.WorkerPool`: PC's level-wise
        CI tests and Algorithm 2's per-DAG sketch fills fan out across
        forked worker processes, with worker-local fill caches merged
        back into the shared :class:`~repro.sketch.FillCache`.  The
        synthesized program is **bit-identical** to the serial run at
        any worker count; only ``fill_stats`` bookkeeping (cache-hit
        counts, which depend on work placement) may differ.  Under a
        wall-clock budget, truncation lands on DAG/level boundaries
        instead of mid-fill — partial results remain valid.
    warm_start:
        A prior run's :class:`~repro.pgm.PCResult`: its skeleton seeds
        PC's starting graph (PC then only prunes within it) and its
        separating sets carry over, cutting CI tests when the structure
        has not wholesale changed — the common case when the
        self-healing loop re-synthesizes after drift.
    fill_cache:
        A caller-owned :class:`~repro.sketch.FillCache` shared across
        runs; it is :meth:`~repro.sketch.FillCache.scope`-d to this
        relation/config first, so stale entries never leak between
        datasets.
    checkpoint_path:
        When set, synthesis state is journaled here (atomic writes):
        once after structure learning and again after every fully
        concretized DAG.  A killed process loses at most one DAG's
        work.
    resume_from:
        A checkpoint path (or loaded
        :class:`~repro.synth.SynthesisCheckpoint`) from a prior run on
        the *same* data and config: structure learning is skipped and
        enumeration continues past the journaled cursor.  With
        deterministic enumeration and pure fills, the resumed result
        equals the uninterrupted run's.  Raises
        :class:`~repro.synth.CheckpointError` on a corrupt checkpoint
        or a data/config mismatch.
    """
    config = config or GuardrailConfig()
    if budget is not None:
        budget.start()
    with obs.span(
        "synth.synthesize",
        n_rows=relation.n_rows,
        n_attributes=len(relation.schema),
        epsilon=config.epsilon,
    ) as run_span:
        result = _synthesize(
            relation,
            config,
            budget,
            workers=workers,
            warm_start=warm_start,
            fill_cache=fill_cache,
            checkpoint_path=checkpoint_path,
            resume_from=resume_from,
        )
        run_span.set(
            statements=len(result.program),
            dags=result.n_dags_enumerated,
            ci_tests=result.pc_result.n_ci_tests,
            loss=result.loss,
            partial=result.partial,
        )
    return result


def _synthesize(
    relation: Relation,
    config: GuardrailConfig,
    budget=None,
    workers=None,
    warm_start=None,
    fill_cache: FillCache | None = None,
    checkpoint_path=None,
    resume_from=None,
) -> SynthesisResult:
    """The span-free body of :func:`synthesize` (Alg. 2 proper)."""
    from ..parallel import as_pool

    pool = as_pool(workers)
    rng = np.random.default_rng(config.seed)
    timings: dict[str, float] = {}

    checkpoint = None
    if resume_from is not None:
        from .checkpoint import (
            CheckpointError,
            SynthesisCheckpoint,
            config_fingerprint,
            relation_fingerprint,
        )

        checkpoint = (
            resume_from
            if isinstance(resume_from, SynthesisCheckpoint)
            else SynthesisCheckpoint.load(resume_from)
        )
        if checkpoint.relation_token != relation_fingerprint(relation):
            raise CheckpointError(
                "checkpoint was journaled for different data than this "
                "run's relation; refusing to resume (the result would "
                "mix two datasets)"
            )
        if checkpoint.config_token != config_fingerprint(config):
            raise CheckpointError(
                "checkpoint was journaled under a different synthesis "
                "config (seed/epsilon/learner/...); refusing to resume"
            )
        if obs.enabled():
            obs.count("synth.resume")

    # Phase 1: sampling (auxiliary distribution by default, §4.6).
    start = time.perf_counter()
    with obs.span("synth.sampling"):
        codes, names = config.sampler.transform(relation, rng)
    timings["sampling"] = time.perf_counter() - start

    # Phase 2: structure learning to the MEC (§4.4).  A resumed run
    # reuses the journaled pattern instead of re-running PC.
    start = time.perf_counter()
    with obs.span("synth.structure_learning", learner=config.learner):
        tester = CITester(
            codes,
            names,
            alpha=config.alpha,
            min_samples_per_dof=config.min_samples_per_dof,
        )
        if checkpoint is not None:
            pc_result = checkpoint.pc_result()
        elif config.learner == "hc":
            # Score-based alternative: hill-climb a DAG, then take its
            # equivalence class (the CPDAG) so the rest of Alg. 2 is
            # shared.
            from ..pgm import cpdag_from_dag, hill_climb

            hc_result = hill_climb(codes, names)
            pc_result = PCResult(
                cpdag=cpdag_from_dag(hc_result.dag),
                separating_sets={},
                n_ci_tests=hc_result.families_scored,
            )
        else:
            pc_result = learn_cpdag(
                tester,
                max_condition_size=config.max_condition_size,
                budget=budget,
                initial_skeleton=(
                    warm_start.cpdag if warm_start is not None else None
                ),
                initial_separating=(
                    warm_start.separating_sets
                    if warm_start is not None
                    else None
                ),
                pool=pool,
            )
    timings["structure_learning"] = time.perf_counter() - start

    def journal(phase: str, cursor: int, program, score: float) -> None:
        from .checkpoint import checkpoint_from_state

        checkpoint_from_state(
            relation,
            config,
            pc_result,
            phase=phase,
            dag_cursor=cursor,
            best_program=program,
            best_selection_score=score,
            budget=budget,
        ).save(checkpoint_path)
        if obs.enabled():
            obs.count("synth.checkpoint")

    # Journal only states an uninterrupted run would also reach: a
    # budget-truncated PC pass learned a different (denser) pattern, so
    # nothing downstream of it may seed a resume either.
    can_journal = checkpoint_path is not None and not pc_result.notes
    if can_journal:
        journal("pc", 0, None, -1.0)

    # Phase 3: MEC enumeration + sketch concretization (Alg. 2).
    start = time.perf_counter()
    if fill_cache is not None:
        # A caller-owned cache shared across runs: flush entries filled
        # against other data/parameters before trusting it.
        cache = fill_cache.scope(
            relation, config.epsilon, min_support=config.min_support
        )
    else:
        cache = FillCache()
    stats = FillStats()
    judge = SketchJudge(tester) if config.prune_gnt else None

    best_program = Program.empty()
    best_coverage = -1.0
    skip_dags = 0
    if checkpoint is not None:
        best_program = checkpoint.best_program()
        best_coverage = checkpoint.best_selection_score
        skip_dags = checkpoint.dag_cursor
    n_dags = 0
    # PC output on finite noisy data is not always a perfectly valid
    # CPDAG (conflicting v-structures); treat it as background knowledge
    # and enumerate its consistent extensions instead of enforcing exact
    # class membership — Alg. 2's coverage criterion then selects among
    # them.
    def consider(dag, dag_budget=None) -> None:
        nonlocal best_program, best_coverage, n_dags
        n_dags += 1
        sketch = ProgramSketch.from_dag(dag)
        if judge is not None:
            sketch = judge.prune_to_gnt(sketch)
        program = fill_program_sketch(
            sketch,
            relation,
            config.epsilon,
            min_support=config.min_support,
            cache=cache,
            stats=stats,
            budget=dag_budget,
        )
        # Selection uses *total* statement coverage: unlike the average,
        # it does not reward DAGs whose statements fail to concretize
        # (⊥ statements are dropped, which would inflate an average).
        coverage = program_coverage(program, relation) * max(len(program), 1)
        if coverage > best_coverage:
            best_coverage = coverage
            best_program = program

    with obs.span("synth.enumeration_and_fill") as fill_span:
        if pool is not None and pool.parallel:
            from ..sketch.fill import _MISS

            # Parallel Alg. 2: materialize the (deterministic) DAG list,
            # fan the per-DAG prune+fill out across forked workers, and
            # reduce the ordered results exactly as the serial loop
            # would — earliest maximum wins, so the selected program is
            # bit-identical at any worker count.  Workers fill against
            # worker-local caches seeded from the shared one; their
            # deltas merge back first-wins (fills are deterministic, so
            # placement only moves bookkeeping, never content).
            dags = list(
                enumerate_candidate_dags(
                    pc_result.cpdag, max_dags=config.max_dags, budget=budget
                )
            )
            start_index = min(skip_dags, len(dags))
            n_dags = start_index
            shared = (
                relation,
                dags,
                config.epsilon,
                config.min_support,
                judge,
                dict(cache.entries),
            )
            results = pool.imap(
                _fill_dag_job,
                list(range(start_index, len(dags))),
                shared=shared,
            )
            try:
                for program, score, delta, job_stats in results:
                    first = start_index == 0 and n_dags == 0
                    n_dags += 1
                    for key, value in delta.items():
                        if cache.get(key) is _MISS:
                            cache.put(key, value)
                    stats.statements_filled += job_stats.statements_filled
                    stats.cache_hits += job_stats.cache_hits
                    stats.branches_considered += job_stats.branches_considered
                    stats.branches_kept += job_stats.branches_kept
                    if score > best_coverage:
                        best_coverage = score
                        best_program = program
                    if can_journal:
                        journal("fill", n_dags, best_program, best_coverage)
                    # Budget lands on DAG boundaries here: the first DAG
                    # is free (the partial-result guarantee), later ones
                    # charge their fresh fills and exhaustion stops the
                    # reduction — a coarser truncation point than the
                    # serial per-statement one, but every intermediate
                    # state is one the serial run also reaches.
                    if budget is not None and not first and delta:
                        budget.spend(len(delta), kind="sketch.fill")
                    if (
                        budget is not None
                        and n_dags > 0
                        and budget.exhausted()
                    ):
                        budget.note(
                            f"enumeration: stopped after {n_dags} DAGs"
                        )
                        break
            finally:
                results.close()
        else:
            for dag in enumerate_candidate_dags(
                pc_result.cpdag, max_dags=config.max_dags, budget=budget
            ):
                if n_dags < skip_dags:
                    # Resume: this prefix of the deterministic
                    # enumeration was already concretized before the
                    # crash; its best survivor is seeded above.
                    n_dags += 1
                    continue
                # The first DAG concretizes in full even under an
                # exhausted budget (the partial-result guarantee); later
                # DAGs respect it and may stop mid-fill.
                dag_budget = None if n_dags == 0 else budget
                consider(dag, dag_budget=dag_budget)
                fill_complete = (
                    dag_budget is None or not dag_budget.exhausted()
                )
                if can_journal and fill_complete:
                    # A truncated fill is never journaled: the
                    # checkpoint must only hold states the uninterrupted
                    # run reaches.
                    journal("fill", n_dags, best_program, best_coverage)
                if budget is not None and n_dags > 0 and budget.exhausted():
                    budget.note(
                        f"enumeration: stopped after {n_dags} DAGs"
                    )
                    break
        fill_span.set(
            dags=n_dags,
            cache_hits=stats.cache_hits,
            statements_filled=stats.statements_filled,
        )
    timings["enumeration_and_fill"] = time.perf_counter() - start

    partial = budget is not None and (
        budget.truncated or budget.exhausted()
    )
    loss = program_loss(best_program, relation)
    return SynthesisResult(
        program=best_program,
        # Reported coverage follows the paper's definition (average
        # statement coverage, Eqn. 6), independent of the selection
        # criterion above.
        coverage=program_coverage(best_program, relation),
        loss=loss,
        pc_result=pc_result,
        n_dags_enumerated=n_dags,
        fill_stats=stats,
        timings=timings,
        partial=partial,
        budget_notes=tuple(budget.notes) if budget is not None else (),
        resumed=checkpoint is not None,
    )


class Guardrail:
    """The deployable artifact: fit once, then vet incoming rows.

    >>> guard = Guardrail(GuardrailConfig(epsilon=0.02))
    >>> guard.fit(train)                    # offline synthesis
    >>> mask = guard.check(test)            # True where a row violates
    >>> clean = guard.handle(test, "rectify")
    """

    def __init__(self, config: GuardrailConfig | None = None):
        self.config = config or GuardrailConfig()
        self._result: SynthesisResult | None = None

    # ------------------------------------------------------------------

    def fit(self, relation: Relation, budget=None, workers=None) -> "Guardrail":
        """Synthesize integrity constraints from (noisy) training data.

        An optional :class:`repro.resilience.Budget` caps the synthesis;
        a budget-truncated fit is still usable (``result.partial``).
        ``workers`` (an int or a :class:`repro.parallel.WorkerPool`)
        fans the CI tests and per-DAG fills across forked workers.
        """
        self._result = synthesize(
            relation, self.config, budget=budget, workers=workers
        )
        return self

    @property
    def is_fitted(self) -> bool:
        """Has ``fit()`` completed?"""
        return self._result is not None

    @property
    def result(self) -> SynthesisResult:
        """The full SynthesisResult; raises RuntimeError when unfitted."""
        if self._result is None:
            raise RuntimeError("Guardrail is not fitted; call fit() first")
        return self._result

    @property
    def program(self) -> Program:
        """The synthesized program."""
        return self.result.program

    # ------------------------------------------------------------------

    def check(self, relation: Relation, pool=None) -> np.ndarray:
        """Boolean mask of rows violating the synthesized constraints.

        Runs through the compiled kernels of :mod:`repro.dsl.compiled`
        (lowered once per program/codec pair, condition masks cached per
        relation), so repeated checks over the same data are cheap.
        ``pool`` (a :class:`repro.parallel.WorkerPool` or worker count)
        shards large relations across forked workers, bit-identically.
        """
        from ..parallel import as_pool

        pool = as_pool(pool)
        if pool is not None and pool.parallel:
            from ..dsl import compiled_for

            compiled = compiled_for(self.program, relation)
            return compiled.detect_sharded(relation, pool).row_mask
        return program_violations(self.program, relation)

    def check_row(self, row: dict) -> bool:
        """Does a single (decoded) row violate the constraints?"""
        from ..dsl import row_conforms

        return not row_conforms(self.program, row)

    def row_guard(self):
        """A :class:`repro.errors.RowGuard` over the fitted program.

        Per-row hash-probe vetting for one-at-a-time arrival; verdicts
        match :meth:`check` exactly (canonical Eqn. 1 semantics).
        """
        from ..errors import RowGuard

        return RowGuard(self.program)

    def batch_guard(self, batch_size: int = 256):
        """A :class:`repro.errors.BatchGuard` over the fitted program.

        Micro-batched kernel vetting for streaming arrival; verdicts
        match :meth:`check` exactly (canonical Eqn. 1 semantics).
        """
        from ..errors import BatchGuard

        return BatchGuard(self.program, batch_size=batch_size)

    def handle(self, relation: Relation, strategy: str = "rectify", pool=None):
        """Apply an error-handling strategy; see :mod:`repro.errors`.

        ``pool`` shards the detection pass across forked workers (see
        :mod:`repro.parallel`); verdicts stay bit-identical to serial.
        """
        from ..errors import apply_strategy

        return apply_strategy(self.program, relation, strategy, pool=pool)

    def rectify(self, relation: Relation) -> Relation:
        """Shorthand for the rectify strategy, returning only the data."""
        outcome = self.handle(relation, "rectify")
        return outcome.relation

    def save(self, path) -> None:
        """Persist the synthesized program as DSL text.

        The text form round-trips exactly (``parse_program``), so a
        saved guardrail can be audited, edited, and reloaded.  The
        write is atomic (tmp + fsync + rename via
        :func:`repro.resilience.atomic_write_text`): a crash mid-save
        leaves the previous file intact, never a torn program a later
        ``load`` would reject.
        """
        from ..dsl import format_program
        from ..resilience.durability import atomic_write_text

        atomic_write_text(path, format_program(self.program) + "\n")

    @classmethod
    def from_program(
        cls, program: Program, config: GuardrailConfig | None = None
    ) -> "Guardrail":
        """Wrap an existing program (hand-written or parsed) as a guard.

        The instance can check/handle data immediately; synthesis
        metadata (timings, PC diagnostics) is absent.
        """
        if not isinstance(program, Program):
            raise GuardrailLoadError(
                f"expected a Program, got {type(program).__name__}"
            )
        guard = cls(config)
        guard._result = SynthesisResult(
            program=program,
            coverage=float("nan"),
            loss=0,
            pc_result=None,  # type: ignore[arg-type]
            n_dags_enumerated=0,
            fill_stats=FillStats(),
        )
        return guard

    @classmethod
    def from_result(
        cls,
        result: SynthesisResult,
        config: GuardrailConfig | None = None,
    ) -> "Guardrail":
        """Wrap an existing :class:`SynthesisResult` as a guardrail.

        The self-healing loop synthesizes candidates via
        :func:`synthesize` directly (to thread budgets, warm starts and
        fill caches) and then promotes the winner with this — keeping
        the full diagnostics (PC result, timings) that
        :meth:`from_program` discards, so the *next* heal can warm-start
        from this run's skeleton.
        """
        if not isinstance(result, SynthesisResult):
            raise GuardrailLoadError(
                f"expected a SynthesisResult, got {type(result).__name__}"
            )
        guard = cls(config)
        guard._result = result
        return guard

    @classmethod
    def load(cls, path, config: GuardrailConfig | None = None) -> "Guardrail":
        """Reconstruct a guardrail from a saved program file.

        The payload is validated before use: a missing file, an empty or
        binary payload, or DSL text that fails to parse all raise
        :class:`GuardrailLoadError` naming the path and the cause,
        instead of leaking ``KeyError``/parser tracebacks to the caller.
        """
        from pathlib import Path

        from ..dsl import DslError, parse_program

        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise GuardrailLoadError(
                f"no such guardrail file: {path}"
            ) from None
        except (OSError, UnicodeDecodeError) as error:
            raise GuardrailLoadError(
                f"cannot read guardrail file {path}: {error}"
            ) from error
        if not text.strip():
            raise GuardrailLoadError(
                f"guardrail file {path} is empty (expected DSL text; "
                f"was the save truncated?)"
            )
        try:
            program = parse_program(text)
        except DslError as error:
            raise GuardrailLoadError(
                f"guardrail file {path} is not a valid DSL program: "
                f"{error}"
            ) from error
        return cls.from_program(program, config)

    def describe(self) -> str:
        """Human-readable summary of the fitted constraints."""
        from ..dsl import format_program

        result = self.result
        ci_tests = (
            result.pc_result.n_ci_tests if result.pc_result else "n/a"
        )
        lines = [
            f"Guardrail: {len(result.program)} statements, "
            f"{len(result.program.branches)} branches",
            f"coverage={result.coverage:.3f} loss={result.loss} "
            f"dags={result.n_dags_enumerated} "
            f"ci_tests={ci_tests}",
        ]
        if result.program:
            lines.append(format_program(result.program))
        return "\n".join(lines)
