"""Configuration for GUARDRAIL synthesis."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sampler import AuxiliarySampler, Sampler


@dataclass
class GuardrailConfig:
    """Knobs of the synthesis pipeline (paper defaults in brackets).

    Attributes
    ----------
    epsilon:
        Noise tolerance ε of Eqn. 3 [0.01–0.05 recommended, §8.3].
    alpha:
        Significance level of the conditional-independence tests behind
        structure learning.
    sampler:
        How data reaches the structure learner: the auxiliary binary
        distribution (default, §4.6) or the identity sampler (Table 8's
        ablation arm).
    learner:
        Structure learner backend: ``"pc"`` (constraint-based,
        the paper's choice) or ``"hc"`` (BIC hill climbing — the
        score-based alternative).
    max_dags:
        Cap on Markov-equivalence-class enumeration (Alg. 2 footnote).
    max_condition_size:
        Cap on PC conditioning-set size (None = unbounded).
    min_support:
        Minimum number of rows a warranted condition must cover before
        Algorithm 1 will emit a branch for it.
    prune_gnt:
        Run the explicit GNT pruning pass on the learned sketch.  The
        sketch of a faithfully learned MEC is GNT by Thm. 4.1, so this
        defaults to off; it matters when PC output is noisy.
    seed:
        Seed for the sampler's row pairing.
    """

    epsilon: float = 0.01
    alpha: float = 0.01
    sampler: Sampler = field(default_factory=AuxiliarySampler)
    learner: str = "pc"
    max_dags: int = 512
    max_condition_size: int | None = 3
    min_support: int = 1
    min_samples_per_dof: float = 5.0
    prune_gnt: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.learner not in ("pc", "hc"):
            raise ValueError("learner must be 'pc' or 'hc'")
        if not 0.0 <= self.epsilon < 1.0:
            raise ValueError("epsilon must be in [0, 1)")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.max_dags < 1:
            raise ValueError("max_dags must be positive")
        if self.min_support < 1:
            raise ValueError("min_support must be positive")
