"""Synthesis core: Algorithm 2, the Guardrail facade, OptSMT baseline."""

from .checkpoint import (
    CheckpointError,
    SynthesisCheckpoint,
    relation_fingerprint,
)
from .config import GuardrailConfig
from .optsmt import (
    OptSmtOutcome,
    OptSmtSynthesizer,
    SolverBudgetExceeded,
    estimate_clause_count,
    iter_candidate_sketches,
)
from .synthesizer import (
    Guardrail,
    GuardrailLoadError,
    SynthesisResult,
    enumerate_candidate_dags,
    synthesize,
)

__all__ = [
    "CheckpointError",
    "Guardrail",
    "GuardrailConfig",
    "GuardrailLoadError",
    "SynthesisCheckpoint",
    "SynthesisResult",
    "relation_fingerprint",
    "synthesize",
    "enumerate_candidate_dags",
    "OptSmtOutcome",
    "OptSmtSynthesizer",
    "SolverBudgetExceeded",
    "estimate_clause_count",
    "iter_candidate_sketches",
]
