"""Crash-safe synthesis checkpoints (journal + resume).

A long :func:`repro.synth.synthesize` run has two expensive phases —
PC's CI tests and the MEC enumeration/fill loop — and a killed process
used to restart both from scratch.  This module journals the synthesis
state to disk so a successor resumes where the casualty stopped:

* the learned pattern (CPDAG + separating sets) once PC completes;
* the enumeration cursor (how many DAGs were *fully* concretized), the
  best-so-far program (as round-trippable DSL text), its selection
  score, and the budget spent so far, updated after every DAG.

Journal entries are written atomically (temp file + ``os.replace``), so
a crash mid-write leaves the previous consistent entry, never a torn
one.  Only state an *uninterrupted* run would also have produced is
journaled — a budget-truncated fill is not — which is what makes
``synthesize(resume_from=...)`` return a program equivalent to the
uninterrupted run (the enumeration order is deterministic and the fill
is a pure function of sketch × data).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

FORMAT_VERSION = 1
"""Journal schema version; bumped on incompatible layout changes."""


class CheckpointError(ValueError):
    """Raised when a synthesis checkpoint is missing, corrupt, or was
    written for different data/config than the resuming run's."""


def relation_fingerprint(relation) -> str:
    """A content digest identifying a relation for resume validation.

    Covers the row count, the attribute names, and the encoded cell
    values, so resuming against *different* data is rejected instead of
    silently producing a program synthesized from a mixture.
    """
    digest = hashlib.sha256()
    digest.update(str(relation.n_rows).encode())
    digest.update("\x1f".join(relation.names).encode())
    digest.update(relation.codes_matrix().tobytes())
    return digest.hexdigest()[:16]


@dataclass
class SynthesisCheckpoint:
    """One journal entry: everything a resumed run needs to continue."""

    phase: str
    """``"pc"`` (structure learning done) or ``"fill"`` (mid-loop)."""
    relation_token: str
    """:func:`relation_fingerprint` of the training relation."""
    config_token: str
    """Fingerprint of the synthesis config (seed, epsilon, ...)."""
    cpdag_nodes: list[str] = field(default_factory=list)
    cpdag_directed: list[list[str]] = field(default_factory=list)
    cpdag_undirected: list[list[str]] = field(default_factory=list)
    separating_sets: list[list[list[str]]] = field(default_factory=list)
    """Pairs ``[[x, y], [s1, s2, ...]]`` of PC's recorded separators."""
    n_ci_tests: int = 0
    levels_run: int = 0
    dag_cursor: int = 0
    """How many leading DAGs of the deterministic enumeration were
    fully concretized; the resumed run skips exactly these."""
    best_program_text: str = ""
    """Best-so-far program as DSL text (empty = no winner yet)."""
    best_selection_score: float = -1.0
    """The selection criterion value of ``best_program_text``."""
    budget_steps_spent: int = 0
    budget_seconds_spent: float = 0.0
    format_version: int = FORMAT_VERSION

    # ------------------------------------------------------------------

    def pc_result(self):
        """Rebuild the journaled :class:`~repro.pgm.PCResult`."""
        from ..pgm import PCResult, PDAG

        cpdag = PDAG(
            self.cpdag_nodes,
            directed=[tuple(e) for e in self.cpdag_directed],
            undirected=[tuple(e) for e in self.cpdag_undirected],
        )
        separating = {
            frozenset(pair): frozenset(sepset)
            for pair, sepset in self.separating_sets
        }
        return PCResult(
            cpdag=cpdag,
            separating_sets=separating,
            n_ci_tests=self.n_ci_tests,
            levels_run=self.levels_run,
        )

    def best_program(self):
        """Rebuild the journaled best-so-far program."""
        from ..dsl import Program, parse_program

        if not self.best_program_text.strip():
            return Program.empty()
        return parse_program(self.best_program_text)

    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Journal this entry atomically (tmp + fsync + ``os.replace``).

        Routed through the shared
        :func:`repro.resilience.atomic_write_text` helper, so every
        persistence path in the repo has the same crash guarantee —
        including the fsync the previous inline tmp+replace lacked.
        """
        from ..resilience.durability import atomic_write_text

        payload = json.dumps(self.__dict__, indent=2, sort_keys=True)
        atomic_write_text(Path(path), payload + "\n")

    @classmethod
    def load(cls, path) -> "SynthesisCheckpoint":
        """Read a journal entry; typed errors on any corruption.

        Raises :class:`CheckpointError` for a missing file, non-JSON
        payload, wrong format version, or missing fields — never a bare
        ``KeyError``/``JSONDecodeError``.
        """
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise CheckpointError(
                f"no such checkpoint file: {path}"
            ) from None
        except (OSError, UnicodeDecodeError) as error:
            raise CheckpointError(
                f"cannot read checkpoint file {path}: {error}"
            ) from error
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"checkpoint file {path} is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"checkpoint file {path} does not hold a JSON object"
            )
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint file {path} has format version {version!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise CheckpointError(
                f"checkpoint file {path} is missing or has unexpected "
                f"fields: {error}"
            ) from error


def config_fingerprint(config) -> str:
    """Fingerprint of the config fields that shape the synthesis output."""
    digest = hashlib.sha256()
    fields = (
        config.seed,
        config.epsilon,
        config.alpha,
        config.learner,
        config.max_dags,
        config.max_condition_size,
        config.min_support,
        config.min_samples_per_dof,
        config.prune_gnt,
    )
    digest.update(repr(fields).encode())
    return digest.hexdigest()[:16]


def checkpoint_from_state(
    relation,
    config,
    pc_result,
    phase: str = "pc",
    dag_cursor: int = 0,
    best_program=None,
    best_selection_score: float = -1.0,
    budget=None,
) -> SynthesisCheckpoint:
    """Assemble a journal entry from live synthesis state."""
    from ..dsl import format_program

    cpdag = pc_result.cpdag
    return SynthesisCheckpoint(
        phase=phase,
        relation_token=relation_fingerprint(relation),
        config_token=config_fingerprint(config),
        cpdag_nodes=list(cpdag.nodes),
        cpdag_directed=[list(e) for e in sorted(cpdag.directed_edges())],
        cpdag_undirected=[list(e) for e in cpdag.undirected_edges()],
        separating_sets=[
            [sorted(pair), sorted(sepset)]
            for pair, sepset in sorted(
                pc_result.separating_sets.items(),
                key=lambda item: sorted(item[0]),
            )
        ],
        n_ci_tests=pc_result.n_ci_tests,
        levels_run=pc_result.levels_run,
        dag_cursor=dag_cursor,
        best_program_text=(
            format_program(best_program)
            if best_program is not None and len(best_program)
            else ""
        ),
        best_selection_score=best_selection_score,
        budget_steps_spent=budget.steps if budget is not None else 0,
        budget_seconds_spent=(
            budget.elapsed() if budget is not None else 0.0
        ),
    )
