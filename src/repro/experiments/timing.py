"""Offline synthesis time (paper Table 4) and phase breakdown.

The paper reports total offline synthesis time per dataset (600–1400 s
on a 32-core Threadripper).  Here we report our own wall-clock per
phase; the *shape* to reproduce is that time grows with attribute count
and with the number of DAGs in the MEC, moderated by the statement-level
fill cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..synth import synthesize
from .harness import ExperimentContext, Prepared, format_table, prepare


@dataclass
class TimingRow:
    """Table 4 row: offline synthesis time on one dataset."""
    dataset_id: int
    dataset_name: str
    n_attributes: int
    n_rows: int
    total_seconds: float
    sampling_seconds: float
    structure_seconds: float
    fill_seconds: float
    n_dags: int
    cache_hits: int


def run_timing(
    dataset_key: "int | str",
    context: ExperimentContext,
    prepared: Prepared | None = None,
) -> TimingRow:
    """Time one dataset's synthesis (Table 4 protocol)."""
    prepared = prepared or prepare(dataset_key, context)
    result = synthesize(prepared.train, context.guardrail_config())
    return TimingRow(
        dataset_id=prepared.spec.id,
        dataset_name=prepared.spec.name,
        n_attributes=prepared.spec.n_attributes,
        n_rows=prepared.train.n_rows,
        total_seconds=result.total_time,
        sampling_seconds=result.timings.get("sampling", 0.0),
        structure_seconds=result.timings.get("structure_learning", 0.0),
        fill_seconds=result.timings.get("enumeration_and_fill", 0.0),
        n_dags=result.n_dags_enumerated,
        cache_hits=result.fill_stats.cache_hits,
    )


def run_table4(
    context: ExperimentContext, dataset_ids: list[int] | None = None
) -> list[TimingRow]:
    """Run synthesis timing across the evaluation datasets."""
    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    return [run_timing(i, context) for i in ids]


def format_table4(rows: list[TimingRow]) -> str:
    """Render Table 4 as plain text."""
    headers = [
        "Dataset ID", "# Attr.", "Total Time (s)", "sampling",
        "structure", "enum+fill", "# DAGs", "cache hits",
    ]
    body = [
        [
            r.dataset_id, r.n_attributes, r.total_seconds,
            r.sampling_seconds, r.structure_seconds, r.fill_seconds,
            r.n_dags, r.cache_hits,
        ]
        for r in rows
    ]
    return format_table(headers, body)
