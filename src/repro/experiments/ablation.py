"""Auxiliary-sampler ablation (paper Table 8).

Per dataset: synthesize once with the auxiliary binary distribution
(§4.6) and once with the identity sampler (raw categorical codes), and
compare the coverage of the resulting programs.  The paper's shape: the
auxiliary sampler wins everywhere, and the identity sampler collapses to
zero coverage on high-cardinality datasets where structure learning
cannot find any edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sampler import AuxiliarySampler, IdentitySampler
from ..synth import synthesize
from .harness import ExperimentContext, Prepared, format_table, prepare


@dataclass
class AblationRow:
    """Table 8 row: auxiliary vs identity sampler on one dataset."""
    dataset_id: int
    dataset_name: str
    coverage_identity: float
    coverage_auxiliary: float

    @property
    def auxiliary_wins(self) -> bool:
        """Did the auxiliary sampler beat the identity sampler?"""
        return self.coverage_auxiliary >= self.coverage_identity


def _normalized_coverage(result, prepared: Prepared) -> float:
    """Total covered statement mass over the attribute count.

    The paper's Table 8 reports *normalized* coverage; plain average
    statement coverage would reward degenerate one-statement programs,
    so we normalize the program's total coverage by how many attributes
    could in principle carry a statement.
    """
    n_attributes = len(prepared.train.schema)
    if n_attributes == 0:
        return 0.0
    total = result.coverage * len(result.program)
    return total / n_attributes


def run_sampler_ablation(
    dataset_key: "int | str",
    context: ExperimentContext,
    prepared: Prepared | None = None,
) -> AblationRow:
    """Run the Table 8 protocol on one dataset."""
    prepared = prepared or prepare(dataset_key, context)
    with_aux = synthesize(
        prepared.train,
        context.guardrail_config(sampler=AuxiliarySampler()),
    )
    with_identity = synthesize(
        prepared.train,
        context.guardrail_config(sampler=IdentitySampler()),
    )
    return AblationRow(
        dataset_id=prepared.spec.id,
        dataset_name=prepared.spec.name,
        coverage_identity=_normalized_coverage(with_identity, prepared),
        coverage_auxiliary=_normalized_coverage(with_aux, prepared),
    )


def run_table8(
    context: ExperimentContext, dataset_ids: list[int] | None = None
) -> list[AblationRow]:
    """Run the sampler ablation across the evaluation datasets."""
    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    return [run_sampler_ablation(i, context) for i in ids]


def format_table8(rows: list[AblationRow]) -> str:
    """Render Table 8 as plain text."""
    headers = ["Dataset ID"] + [str(r.dataset_id) for r in rows]
    body = [
        ["w/o Auxiliary Sampler"]
        + [r.coverage_identity for r in rows],
        ["w/ Auxiliary Sampler"]
        + [r.coverage_auxiliary for r in rows],
    ]
    return format_table(headers, body)
