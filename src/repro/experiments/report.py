"""Live evaluation report: run experiments and emit Markdown.

``generate_report`` reruns a chosen set of the paper's artifacts at the
current workload scale and renders one self-contained Markdown document
— the "fresh numbers" companion to the curated EXPERIMENTS.md.  Used by
the ``python -m repro experiment`` CLI command.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from .ablation import format_table8, run_table8
from .detection import format_table3, run_table3, wins
from .epsilon import format_figure7, run_figure7
from .harness import ExperimentContext
from .mispred import (
    error_mispred_correlation,
    format_table1,
    format_table5,
    run_table1,
    run_table5,
)
from .optsmt_study import clause_counts, format_clauses
from .overhead import format_table6, run_table6
from .queries import average_reduction, format_figure6, run_figure6
from .searchspace import format_table7, run_table7
from .timing import format_table4, run_table4


@dataclass(frozen=True)
class Artifact:
    """One runnable evaluation artifact."""

    key: str
    title: str
    runner: Callable[[ExperimentContext], str]


def _table1(context: ExperimentContext) -> str:
    rows = run_table1(context)
    correlation = error_mispred_correlation(rows)
    return format_table1(rows) + (
        f"\n\nSpearman rho = {correlation.coefficient:.3f} "
        f"(p = {correlation.p_value:.3g}); paper: 0.947"
    )


def _table3(context: ExperimentContext) -> str:
    rows = run_table3(context)
    return format_table3(rows) + (
        f"\n\nGUARDRAIL first in {wins(rows)} / 24 (paper: 17 / 24)"
    )


def _table4(context: ExperimentContext) -> str:
    return format_table4(run_table4(context))


def _table5(context: ExperimentContext) -> str:
    return format_table5(run_table5(context))


def _table6(context: ExperimentContext) -> str:
    return format_table6(run_table6(context))


def _table7(context: ExperimentContext) -> str:
    return format_table7(run_table7(context))


def _table8(context: ExperimentContext) -> str:
    rows = run_table8(context)
    n_wins = sum(r.auxiliary_wins for r in rows)
    return format_table8(rows) + (
        f"\n\nauxiliary wins or ties on {n_wins} / 12 datasets"
    )


def _figure6(context: ExperimentContext) -> str:
    rows = run_figure6(context)
    mean, std = average_reduction(rows)
    return format_figure6(rows) + (
        f"\n\naverage reduction {mean:.2f} +- {std:.2f} "
        "(paper: 0.87 +- 0.25)"
    )


def _figure7(context: ExperimentContext) -> str:
    return format_figure7(
        run_figure7(context, dataset_ids=[1, 2, 4, 6, 9, 12])
    )


def _optsmt(context: ExperimentContext) -> str:
    return format_clauses(clause_counts(context))


ARTIFACTS: tuple[Artifact, ...] = (
    Artifact("table1", "Table 1 — errors vs. mis-predictions", _table1),
    Artifact("table3", "Table 3 — error detection (F1/MCC)", _table3),
    Artifact("table4", "Table 4 — offline synthesis time", _table4),
    Artifact("table5", "Table 5 — mis-prediction detection P/R", _table5),
    Artifact("table6", "Table 6 — query-time overhead", _table6),
    Artifact("table7", "Table 7 — search space w/ and w/o MEC", _table7),
    Artifact("table8", "Table 8 — auxiliary sampler ablation", _table8),
    Artifact("fig6", "Figure 6 — query rectification", _figure6),
    Artifact("fig7", "Figure 7 — epsilon sweep", _figure7),
    Artifact("optsmt", "§8.3 — OptSMT clause explosion", _optsmt),
)


def artifact_keys() -> list[str]:
    """The runnable artifact keys, in report order."""
    return [a.key for a in ARTIFACTS]


def run_artifact(key: str, context: ExperimentContext) -> str:
    """Run one artifact by key and return its rendered body."""
    for artifact in ARTIFACTS:
        if artifact.key == key:
            return artifact.runner(context)
    raise KeyError(
        f"unknown artifact {key!r}; choose from {artifact_keys()}"
    )


def generate_report(
    context: ExperimentContext | None = None,
    keys: list[str] | None = None,
) -> str:
    """Run the selected artifacts and render a Markdown report."""
    context = context or ExperimentContext()
    selected = keys or artifact_keys()
    scale = context.scale_rows or "full (Table 2 sizes)"
    sections = [
        "# GUARDRAIL evaluation report (live run)",
        "",
        f"- workload scale: {scale} rows per dataset",
        f"- epsilon = {context.epsilon}, alpha = {context.alpha}, "
        f"error rate = {context.error_rate}",
        "",
    ]
    for key in selected:
        artifact = next(a for a in ARTIFACTS if a.key == key)
        started = time.perf_counter()
        body = artifact.runner(context)
        elapsed = time.perf_counter() - started
        sections.append(f"## {artifact.title}")
        sections.append("")
        sections.append("```")
        sections.append(body)
        sections.append("```")
        sections.append(f"*(generated in {elapsed:.1f}s)*")
        sections.append("")
    return "\n".join(sections)
