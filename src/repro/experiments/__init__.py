"""Experiment runners regenerating every table and figure of §8."""

from .ablation import AblationRow, format_table8, run_sampler_ablation, run_table8
from .detection import (
    DetectionRow,
    DetectionScores,
    format_table3,
    run_detection,
    run_table3,
    wins,
)
from .epsilon import (
    DEFAULT_EPSILONS,
    EpsilonPoint,
    format_figure7,
    run_epsilon_sweep,
    run_figure7,
)
from .harness import (
    ExperimentContext,
    Prepared,
    fit_guardrail,
    format_table,
    prepare,
)
from .learner_ablation import (
    LearnerRow,
    format_learner_table,
    run_learner_ablation,
    run_learner_table,
)
from .mispred import (
    MispredRow,
    error_mispred_correlation,
    format_table1,
    format_table5,
    run_mispred,
    run_table1,
    run_table5,
)
from .optsmt_study import (
    ClauseRow,
    SolveRow,
    clause_counts,
    format_clauses,
    format_scaling,
    scaling_study,
)
from .overhead import OverheadRow, format_table6, run_overhead, run_table6
from .queries import (
    QueryErrorRow,
    average_reduction,
    format_figure6,
    normalized_series,
    run_figure6,
    run_queries,
)
from .searchspace import (
    SearchSpaceRow,
    format_table7,
    run_searchspace,
    run_table7,
)
from .report import (
    ARTIFACTS,
    artifact_keys,
    generate_report,
    run_artifact,
)
from .timing import TimingRow, format_table4, run_table4, run_timing

__all__ = [
    "ExperimentContext",
    "Prepared",
    "prepare",
    "fit_guardrail",
    "format_table",
    "DetectionRow",
    "DetectionScores",
    "run_detection",
    "run_table3",
    "format_table3",
    "wins",
    "MispredRow",
    "run_mispred",
    "run_table1",
    "run_table5",
    "format_table1",
    "format_table5",
    "error_mispred_correlation",
    "TimingRow",
    "run_timing",
    "run_table4",
    "format_table4",
    "OverheadRow",
    "run_overhead",
    "run_table6",
    "format_table6",
    "SearchSpaceRow",
    "run_searchspace",
    "run_table7",
    "format_table7",
    "AblationRow",
    "run_sampler_ablation",
    "run_table8",
    "format_table8",
    "QueryErrorRow",
    "run_queries",
    "run_figure6",
    "format_figure6",
    "normalized_series",
    "average_reduction",
    "EpsilonPoint",
    "DEFAULT_EPSILONS",
    "run_epsilon_sweep",
    "run_figure7",
    "format_figure7",
    "ClauseRow",
    "SolveRow",
    "clause_counts",
    "scaling_study",
    "format_clauses",
    "format_scaling",
    "ARTIFACTS",
    "artifact_keys",
    "generate_report",
    "run_artifact",
    "LearnerRow",
    "run_learner_ablation",
    "run_learner_table",
    "format_learner_table",
]
