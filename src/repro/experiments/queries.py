"""RQ2 — rectification effect on ML-integrated queries (paper Fig. 6).

For each of the 48 queries (4 per dataset):

* run it on the **clean** test split — the ground-truth outcome;
* run it on the **error-injected** split without GUARDRAIL — the red
  series of Fig. 6;
* run it on the error-injected split with GUARDRAIL rectification —
  the blue series;

and compare outcomes by relative L1 error against the clean result,
min–max normalized across queries as in the paper.  The headline number
is the average error reduction (paper: 0.87 ± 0.25).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import queries_for
from ..metrics import min_max_normalize, relative_error
from ..ml import AutoModel
from ..sql import QueryExecutor, QueryResult
from .harness import ExperimentContext, Prepared, fit_guardrail, format_table, prepare


@dataclass
class QueryErrorRow:
    """Figure 6 row: query result error before/after rectification."""
    dataset_id: int
    query_index: int
    sql: str
    error_dirty: float
    error_rectified: float

    @property
    def name(self) -> str:
        """Short identifier of the benchmark query."""
        return f"D{self.dataset_id}-Q{self.query_index}"

    @property
    def reduction(self) -> float | None:
        """Fractional error removed by rectification (1.0 = perfect)."""
        if self.error_dirty <= 0:
            return None
        improvement = self.error_dirty - self.error_rectified
        return improvement / self.error_dirty


def _result_vector(
    reference: QueryResult, candidate: QueryResult
) -> tuple[list[float], list[float]]:
    """Align two query results into comparable numeric vectors.

    Group-by results can differ in which keys appear (errors can create
    or remove groups); rows are matched on their non-numeric prefix and
    absent rows contribute zeros.
    """
    def keyed(result: QueryResult) -> dict[tuple, list[float]]:
        out: dict[tuple, list[float]] = {}
        for row in result.rows:
            key_parts = []
            numbers = []
            for value in row:
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    numbers.append(float(value))
                else:
                    key_parts.append(value)
            out[tuple(key_parts)] = numbers
        return out

    ref = keyed(reference)
    cand = keyed(candidate)
    width = max(
        (len(v) for v in list(ref.values()) + list(cand.values())),
        default=0,
    )
    truth: list[float] = []
    observed: list[float] = []
    for key in sorted(set(ref) | set(cand), key=str):
        ref_values = ref.get(key, [0.0] * width)
        cand_values = cand.get(key, [0.0] * width)
        ref_values = ref_values + [0.0] * (width - len(ref_values))
        cand_values = cand_values + [0.0] * (width - len(cand_values))
        truth.extend(ref_values)
        observed.extend(cand_values)
    return observed, truth


RQ2_ERROR_RATE = 0.05
"""Injection rate for the query experiments.

RQ2 measures how far errors drag query outcomes and how much
rectification recovers; at the 1% rate of Table 3 the aggregate queries
barely move on scaled-down data, so the query study uses a heavier rate
(the paper's Fig. 6 red dots likewise show substantial degradation)."""


def run_queries(
    dataset_key: "int | str",
    context: ExperimentContext,
    prepared: Prepared | None = None,
) -> list[QueryErrorRow]:
    # RQ2 protocol: inject only constraint-covered errors (§8.2), at a
    # rate that measurably perturbs the aggregates.
    """Run the 48-query rectification protocol on one dataset."""
    if prepared is None:
        import dataclasses

        rq2_context = dataclasses.replace(
            context, error_rate=RQ2_ERROR_RATE
        )
        prepared = prepare(dataset_key, rq2_context, constrained_only=True)
    target = prepared.dataset.target
    model = AutoModel(seed=context.seed).fit(prepared.train, target)
    guard = fit_guardrail(prepared, context)

    clean_exec = QueryExecutor({"t": prepared.test_clean}, {"m": model})
    dirty_exec = QueryExecutor({"t": prepared.test_dirty}, {"m": model})
    guarded_exec = QueryExecutor(
        {"t": prepared.test_dirty},
        {"m": model},
        guardrail=guard,
        strategy="rectify",
    )

    rows = []
    for query in queries_for(prepared.dataset):
        truth = clean_exec.execute(query.sql)
        dirty = dirty_exec.execute(query.sql)
        rectified = guarded_exec.execute(query.sql)
        dirty_vec, truth_vec = _result_vector(truth, dirty)
        rect_vec, truth_vec2 = _result_vector(truth, rectified)
        rows.append(
            QueryErrorRow(
                dataset_id=prepared.spec.id,
                query_index=query.index,
                sql=query.sql,
                error_dirty=relative_error(dirty_vec, truth_vec),
                error_rectified=relative_error(rect_vec, truth_vec2),
            )
        )
    return rows


def run_figure6(
    context: ExperimentContext, dataset_ids: list[int] | None = None
) -> list[QueryErrorRow]:
    """Run the query study across the evaluation datasets."""
    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    out: list[QueryErrorRow] = []
    for dataset_id in ids:
        out.extend(run_queries(dataset_id, context))
    return out


def normalized_series(
    rows: list[QueryErrorRow],
) -> tuple[list[float], list[float]]:
    """Fig. 6's two series after joint min–max normalization."""
    combined = [r.error_dirty for r in rows] + [
        r.error_rectified for r in rows
    ]
    normalized = min_max_normalize(combined)
    half = len(rows)
    return normalized[:half], normalized[half:]


def average_reduction(rows: list[QueryErrorRow]) -> tuple[float, float]:
    """Mean ± std of per-query error reduction (queries already clean
    on dirty data count as fully preserved, reduction = 1)."""
    reductions = []
    for row in rows:
        value = row.reduction
        if value is None:
            value = 1.0 if row.error_rectified <= 0 else 0.0
        reductions.append(max(min(value, 1.0), -1.0))
    arr = np.asarray(reductions)
    return float(arr.mean()), float(arr.std())


def format_figure6(rows: list[QueryErrorRow]) -> str:
    """Render the Figure 6 table as plain text."""
    headers = [
        "Query", "RelErr (dirty)", "RelErr (rectified)", "Reduction"
    ]
    body = [
        [r.name, r.error_dirty, r.error_rectified, r.reduction]
        for r in rows
    ]
    return format_table(headers, body)
