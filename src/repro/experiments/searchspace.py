"""Search-space reduction from MEC-level reasoning (paper Table 7).

Per dataset: the number of DAGs in the learned Markov equivalence class
(and the time to enumerate them) versus the unconstrained search space —
the count of *all* labeled DAGs on that many attributes (Robinson's
formula).  The reduction by many orders of magnitude is the paper's
headline ablation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..pgm import CITester, count_dags_scientific, learn_cpdag
from ..sampler import AuxiliarySampler
from ..synth.synthesizer import enumerate_candidate_dags
from .harness import ExperimentContext, Prepared, format_table, prepare


@dataclass
class SearchSpaceRow:
    """Table 7 row: MEC size vs raw DAG space on one dataset."""
    dataset_id: int
    dataset_name: str
    n_attributes: int
    n_dags_with_mec: int
    enumeration_seconds: float
    n_dags_without_mec: str  # scientific notation (astronomically large)


def run_searchspace(
    dataset_key: "int | str",
    context: ExperimentContext,
    prepared: Prepared | None = None,
) -> SearchSpaceRow:
    """Measure the search-space reduction on one dataset."""
    prepared = prepared or prepare(dataset_key, context)
    rng = np.random.default_rng(context.seed)
    sampler = AuxiliarySampler()
    codes, names = sampler.transform(prepared.train, rng)
    tester = CITester(codes, names, alpha=context.alpha)
    pc_result = learn_cpdag(
        tester, max_condition_size=context.max_condition_size
    )
    started = time.perf_counter()
    n_dags = sum(
        1
        for _ in enumerate_candidate_dags(
            pc_result.cpdag, max_dags=context.max_dags
        )
    )
    elapsed = time.perf_counter() - started
    return SearchSpaceRow(
        dataset_id=prepared.spec.id,
        dataset_name=prepared.spec.name,
        n_attributes=prepared.spec.n_attributes,
        n_dags_with_mec=n_dags,
        enumeration_seconds=elapsed,
        n_dags_without_mec=count_dags_scientific(
            prepared.spec.n_attributes
        ),
    )


def run_table7(
    context: ExperimentContext, dataset_ids: list[int] | None = None
) -> list[SearchSpaceRow]:
    """Run the search-space measurement across the datasets."""
    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    return [run_searchspace(i, context) for i in ids]


def format_table7(rows: list[SearchSpaceRow]) -> str:
    """Render Table 7 as plain text."""
    headers = ["Dataset ID"] + [str(r.dataset_id) for r in rows]
    body = [
        ["# Attr."] + [r.n_attributes for r in rows],
        ["# DAGs (w/ MEC)"] + [r.n_dags_with_mec for r in rows],
        ["Time (w/ MEC)"]
        + [round(r.enumeration_seconds, 3) for r in rows],
        ["# DAGs (w/o MEC)"] + [r.n_dags_without_mec for r in rows],
    ]
    return format_table(headers, body)
