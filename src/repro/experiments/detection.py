"""RQ1 — error detection effectiveness (paper Table 3).

Per dataset: discover constraints on the clean split with GUARDRAIL and
each FD baseline, flag rows of the error-injected split, and score the
flags against the injected ground truth with F1 and MCC.  Baselines that
die (FDX's ill-conditioned regression) report ``None``, rendered as the
paper's "-".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import (
    CFDErrorDetector,
    FDErrorDetector,
    FdxIllConditioned,
    ctane,
    fdx,
    tane,
)
from ..metrics import confusion, f1_score, mcc_score
from .harness import ExperimentContext, Prepared, fit_guardrail, format_table, prepare


@dataclass
class DetectionScores:
    """Precision/recall/F1/MCC of one detector on one dataset."""
    f1: float | None
    mcc: float | None
    flagged: int = 0

    @classmethod
    def from_masks(
        cls, predicted: np.ndarray, actual: np.ndarray
    ) -> "DetectionScores":
        """Score a predicted violation mask against ground truth."""
        counts = confusion(predicted, actual)
        return cls(
            f1=f1_score(counts),
            mcc=mcc_score(counts),
            flagged=int(np.count_nonzero(predicted)),
        )

    @classmethod
    def failed(cls) -> "DetectionScores":
        """Sentinel scores for a method that crashed or was skipped."""
        return cls(f1=None, mcc=None)


@dataclass
class DetectionRow:
    """Table 3 row: per-method detection scores on one dataset."""
    dataset_id: int
    dataset_name: str
    guardrail: DetectionScores
    tane: DetectionScores
    ctane: DetectionScores
    fdx: DetectionScores

    def methods(self) -> dict[str, DetectionScores]:
        """Method name -> scores, in report order."""
        return {
            "Guardrail": self.guardrail,
            "TANE": self.tane,
            "CTANE": self.ctane,
            "FDX": self.fdx,
        }


def run_detection(
    dataset_key: "int | str",
    context: ExperimentContext,
    prepared: Prepared | None = None,
) -> DetectionRow:
    """Run the Table 3 protocol on one dataset."""
    prepared = prepared or prepare(dataset_key, context)
    truth = prepared.injection.row_mask
    dirty = prepared.test_dirty
    train = prepared.train

    guard = fit_guardrail(prepared, context)
    guardrail_scores = DetectionScores.from_masks(guard.check(dirty), truth)

    # TANE runs its approximate-FD variant (g3 tolerance equal to
    # GUARDRAIL's ε); CTANE keeps its exact constant-CFD semantics.
    # Both overfit accidental dependencies on noisy data — the paper's
    # observation — because neither has a structural prior.
    try:
        tane_result = tane(train, max_lhs=2, max_error=context.epsilon)
        detector = FDErrorDetector(tane_result.fds).fit(train)
        tane_scores = DetectionScores.from_masks(detector.detect(dirty), truth)
    except (MemoryError, RuntimeError):
        tane_scores = DetectionScores.failed()

    try:
        ctane_result = ctane(
            train, max_lhs=2, min_support=3, min_confidence=1.0
        )
        cfd_detector = CFDErrorDetector(ctane_result.cfds)
        ctane_scores = DetectionScores.from_masks(
            cfd_detector.detect(dirty), truth
        )
    except (MemoryError, RuntimeError):
        ctane_scores = DetectionScores.failed()

    try:
        fdx_result = fdx(train)
        fdx_detector = FDErrorDetector(fdx_result.fds).fit(train)
        fdx_scores = DetectionScores.from_masks(
            fdx_detector.detect(dirty), truth
        )
    except FdxIllConditioned:
        fdx_scores = DetectionScores.failed()

    return DetectionRow(
        dataset_id=prepared.spec.id,
        dataset_name=prepared.spec.name,
        guardrail=guardrail_scores,
        tane=tane_scores,
        ctane=ctane_scores,
        fdx=fdx_scores,
    )


def run_table3(
    context: ExperimentContext, dataset_ids: list[int] | None = None
) -> list[DetectionRow]:
    """Run error detection across the evaluation datasets."""
    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    return [run_detection(i, context) for i in ids]


def format_table3(rows: list[DetectionRow]) -> str:
    """Render Table 3 as plain text."""
    headers = ["Dataset", "Metric", "Guardrail", "TANE", "CTANE", "FDX"]
    body: list[list[object]] = []
    for row in rows:
        methods = row.methods()
        body.append(
            [row.dataset_id, "F1"]
            + [methods[m].f1 for m in ("Guardrail", "TANE", "CTANE", "FDX")]
        )
        body.append(
            [row.dataset_id, "MCC"]
            + [methods[m].mcc for m in ("Guardrail", "TANE", "CTANE", "FDX")]
        )
    return format_table(headers, body)


def wins(rows: list[DetectionRow]) -> int:
    """Number of (dataset × metric) comparisons GUARDRAIL ranks first in.

    The paper reports 17 / 24; ties count as wins (rank one includes
    equal bests) and failed baselines score -inf.
    """
    count = 0
    for row in rows:
        methods = row.methods()
        for metric in ("f1", "mcc"):
            def score(s: DetectionScores) -> float:
                value = getattr(s, metric)
                if value is None or value != value:
                    return float("-inf")
                return value

            best = max(score(s) for s in methods.values())
            if score(row.guardrail) >= best and score(
                row.guardrail
            ) != float("-inf"):
                count += 1
    return count
