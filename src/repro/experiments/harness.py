"""Shared experiment harness (setup of §8).

Every evaluation artifact follows the same protocol:

1. materialize a dataset twin (optionally scaled down — this
   reproduction runs on one core, the paper used a 32-core server);
2. split it into a clean discovery split and a test split;
3. inject random errors into the test split (1% rate, small-dataset
   adjustment per :func:`repro.errors.resolve_error_count`);
4. hand the pieces to a table/figure-specific runner.

:class:`ExperimentContext` centralizes the knobs so benchmarks and the
EXPERIMENTS.md generator agree on the workload, and :class:`Prepared`
caches the per-dataset artifacts that several tables share (the fitted
Guardrail, the trained model, the injected errors).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..datasets import Dataset, DatasetSpec, get_spec, load
from ..errors import InjectionReport, inject_errors
from ..relation import Relation
from ..synth import Guardrail, GuardrailConfig


def default_scale() -> int | None:
    """Row cap for experiments; REPRO_FULL=1 runs the paper's sizes."""
    if os.environ.get("REPRO_FULL") == "1":
        return None
    value = os.environ.get("REPRO_SCALE_ROWS")
    return int(value) if value else 2400


@dataclass
class ExperimentContext:
    """Workload configuration shared by all experiment runners."""

    scale_rows: int | None = field(default_factory=default_scale)
    seed: int = 7
    epsilon: float = 0.02
    alpha: float = 0.01
    error_rate: float = 0.01
    train_fraction: float = 0.6
    max_condition_size: int = 2
    max_dags: int = 256
    min_support: int = 4

    def guardrail_config(self, **overrides) -> GuardrailConfig:
        """A GuardrailConfig from the context's knobs plus overrides."""
        parameters = dict(
            epsilon=self.epsilon,
            alpha=self.alpha,
            max_condition_size=self.max_condition_size,
            max_dags=self.max_dags,
            min_support=self.min_support,
            seed=self.seed,
        )
        parameters.update(overrides)
        return GuardrailConfig(**parameters)

    def rows_for(self, spec: DatasetSpec) -> int:
        """Row count to load for a dataset under the current scale cap."""
        if self.scale_rows is None:
            return spec.n_rows
        return min(spec.n_rows, self.scale_rows)


@dataclass
class Prepared:
    """Per-dataset artifacts shared across experiment runners."""

    dataset: Dataset
    train_clean: Relation
    train_injection: InjectionReport
    test_clean: Relation
    injection: InjectionReport

    @property
    def train(self) -> Relation:
        """The discovery split, with its own injected noise.

        GUARDRAIL's premise is synthesis *from noisy data*; a perfectly
        clean discovery split would be unrealistically kind to exact
        methods (TANE/CTANE), so discovery sees the same 1% error
        process as the test split.
        """
        return self.train_injection.relation

    @property
    def test_dirty(self) -> Relation:
        """The test split with injected errors (the serving feed)."""
        return self.injection.relation

    @property
    def spec(self) -> DatasetSpec:
        """The dataset's registry spec."""
        return self.dataset.spec


def prepare(
    dataset_key: "int | str",
    context: ExperimentContext,
    constrained_only: bool = False,
) -> Prepared:
    """Load, split, and corrupt one dataset per the shared protocol.

    ``constrained_only`` restricts injection to attributes covered by
    the ground-truth constraints (the non-root SEM nodes) — the RQ2
    protocol isolating the impact of undetectable errors (§8.2).
    """
    spec = get_spec(dataset_key)
    rng = np.random.default_rng(context.seed + spec.id)
    with obs.span("experiment.prepare", dataset=spec.name):
        dataset = load(
            spec.id, n_rows=context.rows_for(spec), seed=context.seed
        )
        train, test_clean = dataset.relation.split(
            context.train_fraction, rng
        )
        attributes = None
        if constrained_only:
            dag = dataset.ground_truth_dag()
            attributes = [n for n in dag.nodes if dag.parents(n)]
        injection = inject_errors(
            test_clean,
            rate=context.error_rate,
            rng=rng,
            attributes=attributes,
        )
        train_injection = inject_errors(
            train,
            rate=context.error_rate,
            rng=np.random.default_rng(context.seed + 500 + spec.id),
        )
    return Prepared(
        dataset=dataset,
        train_clean=train,
        train_injection=train_injection,
        test_clean=test_clean,
        injection=injection,
    )


def fit_guardrail(
    prepared: Prepared, context: ExperimentContext, **overrides
) -> Guardrail:
    """Fit GUARDRAIL on the (noisy) discovery split."""
    config = context.guardrail_config(**overrides)
    with obs.span(
        "experiment.fit_guardrail", dataset=prepared.spec.name
    ):
        return Guardrail(config).fit(prepared.train)


def format_table(
    headers: list[str], rows: list[list[object]]
) -> str:
    """Plain-text table renderer shared by all benchmark printouts."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(
        " | ".join(c.ljust(w) for c, w in zip(row, widths))
        for row in cells
    )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        return f"{value:.3f}"
    return str(value)
