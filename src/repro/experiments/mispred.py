"""Errors vs. mis-predictions (paper Table 1 and Table 5, §5).

Per dataset: train the AutoML model on the clean split, inject errors
into the test split, and measure

* how many injected errors flip the model's prediction relative to the
  clean inputs (**error-induced mis-predictions**, Table 1), and
* how GUARDRAIL-detected errors intersect those flips (Table 5):
  ``P = |detected ∩ mispredicted| / |detected|`` and
  ``R = |missed ∩ mispredicted| / |missed|`` (the paper's finding is
  that missed errors essentially never flip predictions).

Also reports the Spearman rank correlation between per-dataset error
counts and mis-prediction counts (the paper: ρ = 0.947, p < 0.05).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics import SpearmanResult, spearman
from ..ml import AutoModel, mispredictions_caused_by_errors
from .harness import ExperimentContext, Prepared, fit_guardrail, format_table, prepare


@dataclass
class MispredRow:
    """Tables 1/5 row: errors vs model mis-predictions on one dataset."""
    dataset_id: int
    dataset_name: str
    n_errors: int
    n_mispredictions: int
    n_detected: int
    detected_mispredictions: int
    missed_errors: int
    missed_mispredictions: int

    @property
    def precision_vs_mispred(self) -> float | None:
        """Table 5's P: flagged rows that are error-induced flips."""
        if self.n_detected == 0:
            return None
        return self.detected_mispredictions / self.n_detected

    @property
    def missed_rate(self) -> float | None:
        """Table 5's R: missed error rows that nevertheless flip."""
        if self.missed_errors == 0:
            return None
        return self.missed_mispredictions / self.missed_errors


def run_mispred(
    dataset_key: "int | str",
    context: ExperimentContext,
    prepared: Prepared | None = None,
    constrained_only: bool = False,
) -> MispredRow:
    """Run the mis-prediction protocol on one dataset."""
    prepared = prepared or prepare(
        dataset_key, context, constrained_only=constrained_only
    )
    target = prepared.dataset.target

    model = AutoModel(seed=context.seed)
    model.fit(prepared.train, target)

    flips = mispredictions_caused_by_errors(
        model, prepared.test_clean, prepared.test_dirty
    )
    guard = fit_guardrail(prepared, context)
    detected = guard.check(prepared.test_dirty)
    truth = prepared.injection.row_mask

    missed = truth & ~detected
    return MispredRow(
        dataset_id=prepared.spec.id,
        dataset_name=prepared.spec.name,
        n_errors=int(truth.sum()),
        n_mispredictions=int(flips.sum()),
        n_detected=int(detected.sum()),
        detected_mispredictions=int(np.count_nonzero(detected & flips)),
        missed_errors=int(missed.sum()),
        missed_mispredictions=int(np.count_nonzero(missed & flips)),
    )


TABLE1_ERROR_RATE = 0.05
"""Injection rate for the §5 mis-prediction study.

Table 1's Spearman claim needs error counts that *vary* across
datasets; at the detection protocol's 1%-capped-at-30 rate every scaled
dataset lands on the cap and the correlation is undefined."""


def run_table1(
    context: ExperimentContext, dataset_ids: list[int] | None = None
) -> list[MispredRow]:
    """Table 1 protocol: random injection into any attribute (§5)."""
    import dataclasses

    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    table1_context = dataclasses.replace(
        context, error_rate=TABLE1_ERROR_RATE
    )
    return [run_mispred(i, table1_context) for i in ids]


def run_table5(
    context: ExperimentContext, dataset_ids: list[int] | None = None
) -> list[MispredRow]:
    """Table 5 protocol: constraint-covered injection only (§8.2)."""
    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    return [
        run_mispred(i, context, constrained_only=True) for i in ids
    ]


def error_mispred_correlation(rows: list[MispredRow]) -> SpearmanResult:
    """Spearman correlation of error vs mis-prediction counts (S5)."""
    return spearman(
        [r.n_errors for r in rows],
        [r.n_mispredictions for r in rows],
    )


def format_table1(rows: list[MispredRow]) -> str:
    """Render Table 1 as plain text."""
    headers = ["Dataset ID"] + [str(r.dataset_id) for r in rows]
    body = [
        ["# Errors"] + [r.n_errors for r in rows],
        ["# Mis-pred"] + [r.n_mispredictions for r in rows],
    ]
    return format_table(headers, body)


def format_table5(rows: list[MispredRow]) -> str:
    """Render Table 5 as plain text."""
    headers = ["ID"] + [str(r.dataset_id) for r in rows]
    body = [
        ["#Mis-pred."] + [r.n_mispredictions for r in rows],
        ["P"] + [r.precision_vs_mispred for r in rows],
        ["R"] + [r.missed_rate for r in rows],
    ]
    return format_table(headers, body)
