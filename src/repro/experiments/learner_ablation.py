"""Structure-learner ablation: constraint-based (PC) vs score-based (HC).

The paper's pipeline uses constraint-based learning to the MEC (§4.4);
score-based search is the classic alternative.  This ablation runs both
backends through the identical synthesis pipeline and compares the
programs they yield — normalized coverage, parent-set precision/recall
against the ground-truth SEM (which the synthetic twins expose), and
wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..synth import synthesize
from .harness import ExperimentContext, Prepared, format_table, prepare


@dataclass
class LearnerRow:
    """PC vs hill-climbing comparison on one dataset."""
    dataset_id: int
    dataset_name: str
    coverage_pc: float
    coverage_hc: float
    edge_f1_pc: float
    edge_f1_hc: float
    seconds_pc: float
    seconds_hc: float


def _edge_f1(program, dag) -> float:
    """F1 of (determinant → dependent) pairs vs ground-truth edges."""
    predicted = {
        (det, s.dependent)
        for s in program
        for det in s.determinants
    }
    actual = set(dag.edges())
    if not predicted and not actual:
        return 1.0
    if not predicted or not actual:
        return 0.0
    tp = len(predicted & actual)
    precision = tp / len(predicted)
    recall = tp / len(actual)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def run_learner_ablation(
    dataset_key: "int | str",
    context: ExperimentContext,
    prepared: Prepared | None = None,
) -> LearnerRow:
    """Compare structure learners on one dataset."""
    prepared = prepared or prepare(dataset_key, context)
    dag = prepared.dataset.ground_truth_dag()
    n_attrs = len(prepared.train.schema)

    started = time.perf_counter()
    pc = synthesize(prepared.train, context.guardrail_config(learner="pc"))
    seconds_pc = time.perf_counter() - started

    started = time.perf_counter()
    hc = synthesize(prepared.train, context.guardrail_config(learner="hc"))
    seconds_hc = time.perf_counter() - started

    return LearnerRow(
        dataset_id=prepared.spec.id,
        dataset_name=prepared.spec.name,
        coverage_pc=pc.coverage * len(pc.program) / max(n_attrs, 1),
        coverage_hc=hc.coverage * len(hc.program) / max(n_attrs, 1),
        edge_f1_pc=_edge_f1(pc.program, dag),
        edge_f1_hc=_edge_f1(hc.program, dag),
        seconds_pc=seconds_pc,
        seconds_hc=seconds_hc,
    )


def run_learner_table(
    context: ExperimentContext, dataset_ids: list[int] | None = None
) -> list[LearnerRow]:
    """Run the learner ablation across the evaluation datasets."""
    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    return [run_learner_ablation(i, context) for i in ids]


def format_learner_table(rows: list[LearnerRow]) -> str:
    """Render the learner-ablation table as plain text."""
    headers = [
        "Dataset", "cov (PC)", "cov (HC)",
        "edge F1 (PC)", "edge F1 (HC)", "s (PC)", "s (HC)",
    ]
    body = [
        [
            r.dataset_id, r.coverage_pc, r.coverage_hc,
            r.edge_f1_pc, r.edge_f1_hc,
            round(r.seconds_pc, 2), round(r.seconds_hc, 2),
        ]
        for r in rows
    ]
    return format_table(headers, body)
