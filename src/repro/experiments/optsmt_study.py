"""OptSMT baseline blow-up study (paper §8.3).

Two measurements reproduce the paper's finding that monolithic
optimizing synthesis does not scale:

* the soft-clause count of the full encoding per dataset ("tens of
  millions of clauses"), computed in closed form; and
* actual branch-and-bound solves on progressively wider attribute
  subsets of the smallest dataset with a strict time budget — the
  solver starts timing out within a handful of attributes while
  GUARDRAIL's MEC pipeline finishes in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..synth import OptSmtSynthesizer, estimate_clause_count, synthesize
from .harness import ExperimentContext, Prepared, format_table, prepare


@dataclass
class ClauseRow:
    """Clause-count row of the OptSMT study (S8.3)."""
    dataset_id: int
    n_attributes: int
    n_clauses: int


@dataclass
class SolveRow:
    """Solve-time row of the OptSMT scaling study."""
    n_attributes: int
    optsmt_seconds: float
    optsmt_timed_out: bool
    optsmt_coverage: float
    guardrail_seconds: float
    guardrail_coverage: float


def clause_counts(
    context: ExperimentContext, dataset_ids: list[int] | None = None
) -> list[ClauseRow]:
    """Count OptSMT clauses per dataset without solving."""
    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    rows = []
    for dataset_id in ids:
        prepared = prepare(dataset_id, context)
        rows.append(
            ClauseRow(
                dataset_id=prepared.spec.id,
                n_attributes=prepared.spec.n_attributes,
                n_clauses=estimate_clause_count(
                    prepared.train, max_determinants=2
                ),
            )
        )
    return rows


def scaling_study(
    context: ExperimentContext,
    dataset_key: "int | str" = 6,  # Blood Transfusion, the 4-attr dataset
    widths: tuple[int, ...] = (3, 4, 5, 6),
    time_limit: float = 2.0,
    prepared: Prepared | None = None,
) -> list[SolveRow]:
    """Solve attribute-prefix subsets with both approaches."""
    import time

    prepared = prepared or prepare(dataset_key, context)
    source = prepared.train
    rows = []
    names = list(source.schema.categorical_names())
    for width in widths:
        subset_names = names[: min(width, len(names))]
        subset = source.project(subset_names)
        solver = OptSmtSynthesizer(
            epsilon=context.epsilon,
            max_determinants=2,
            time_limit=time_limit,
            min_support=context.min_support,
        )
        outcome = solver.solve(subset)
        started = time.perf_counter()
        guardrail_result = synthesize(
            subset, context.guardrail_config()
        )
        guardrail_seconds = time.perf_counter() - started
        rows.append(
            SolveRow(
                n_attributes=len(subset_names),
                optsmt_seconds=outcome.elapsed,
                optsmt_timed_out=outcome.timed_out,
                optsmt_coverage=outcome.coverage,
                guardrail_seconds=guardrail_seconds,
                guardrail_coverage=guardrail_result.coverage,
            )
        )
        if len(subset_names) < width:
            break
    return rows


def format_clauses(rows: list[ClauseRow]) -> str:
    """Render the clause-count table as plain text."""
    headers = ["Dataset", "# Attr.", "# soft clauses (OptSMT encoding)"]
    body = [
        [r.dataset_id, r.n_attributes, f"{r.n_clauses:,}"] for r in rows
    ]
    return format_table(headers, body)


def format_scaling(rows: list[SolveRow]) -> str:
    """Render the scaling study as plain text."""
    headers = [
        "# Attr.", "OptSMT s", "timeout", "OptSMT cov",
        "Guardrail s", "Guardrail cov",
    ]
    body = [
        [
            r.n_attributes, r.optsmt_seconds,
            "yes" if r.optsmt_timed_out else "no",
            r.optsmt_coverage, r.guardrail_seconds, r.guardrail_coverage,
        ]
        for r in rows
    ]
    return format_table(headers, body)
