"""Runtime overhead of the guard at query time (paper Table 6).

Per dataset: execute an ML-integrated query with GUARDRAIL attached and
report the time spent in the guard stage (constraint checking +
rectification) next to the model inference time.  The paper's shape:
guard time is dominated by rows × program complexity and is comparable
to or smaller than inference time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets import queries_for
from ..ml import AutoModel
from ..sql import QueryExecutor
from .harness import ExperimentContext, Prepared, fit_guardrail, format_table, prepare


@dataclass
class OverheadRow:
    """Table 6 row: guard time vs inference time on one dataset."""
    dataset_id: int
    dataset_name: str
    guardrail_seconds: float
    inference_seconds: float
    rows_checked: int
    rows_rectified: int


def run_overhead(
    dataset_key: "int | str",
    context: ExperimentContext,
    prepared: Prepared | None = None,
) -> OverheadRow:
    """Measure guard vs inference time on one dataset."""
    prepared = prepared or prepare(dataset_key, context)
    target = prepared.dataset.target
    model = AutoModel(seed=context.seed).fit(prepared.train, target)
    guard = fit_guardrail(prepared, context)
    executor = QueryExecutor(
        {"t": prepared.test_dirty},
        {"m": model},
        guardrail=guard,
        strategy="rectify",
    )
    query = queries_for(prepared.dataset)[0]
    executor.execute(query.sql)
    metrics = executor.last_metrics
    return OverheadRow(
        dataset_id=prepared.spec.id,
        dataset_name=prepared.spec.name,
        guardrail_seconds=metrics.guard_seconds,
        inference_seconds=metrics.inference_seconds,
        rows_checked=metrics.rows_scanned,
        rows_rectified=metrics.rows_rectified,
    )


def run_table6(
    context: ExperimentContext, dataset_ids: list[int] | None = None
) -> list[OverheadRow]:
    """Run the overhead measurement across the evaluation datasets."""
    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    return [run_overhead(i, context) for i in ids]


def format_table6(rows: list[OverheadRow]) -> str:
    """Render Table 6 as plain text."""
    headers = ["Dataset ID"] + [str(r.dataset_id) for r in rows]
    body = [
        ["Guardrail Time"]
        + [round(r.guardrail_seconds, 4) for r in rows],
        ["Inference Time"]
        + [round(r.inference_seconds, 4) for r in rows],
    ]
    return format_table(headers, body)
