"""Impact of the ε threshold on coverage and loss (paper Fig. 7).

Sweep ε and record, per dataset, the coverage of the synthesized
program and its loss rate (violating-row fraction on the training
data).  The paper's shape: coverage rises with ε while loss rises too,
with ε ≈ 0.01–0.05 the recommended trade-off region.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..synth import synthesize
from .harness import ExperimentContext, Prepared, format_table, prepare

DEFAULT_EPSILONS: tuple[float, ...] = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2)


@dataclass
class EpsilonPoint:
    """One (dataset, epsilon) point of Figure 7: coverage vs loss."""
    dataset_id: int
    epsilon: float
    coverage: float
    loss_rate: float
    n_statements: int


def run_epsilon_sweep(
    dataset_key: "int | str",
    context: ExperimentContext,
    epsilons: tuple[float, ...] = DEFAULT_EPSILONS,
    prepared: Prepared | None = None,
) -> list[EpsilonPoint]:
    """Sweep epsilon on one dataset (Figure 7 protocol)."""
    prepared = prepared or prepare(dataset_key, context)
    n_rows = max(prepared.train.n_rows, 1)
    points = []
    for epsilon in epsilons:
        result = synthesize(
            prepared.train, context.guardrail_config(epsilon=epsilon)
        )
        points.append(
            EpsilonPoint(
                dataset_id=prepared.spec.id,
                epsilon=epsilon,
                coverage=result.coverage,
                loss_rate=result.loss / n_rows,
                n_statements=len(result.program),
            )
        )
    return points


def run_figure7(
    context: ExperimentContext,
    dataset_ids: list[int] | None = None,
    epsilons: tuple[float, ...] = DEFAULT_EPSILONS,
) -> list[EpsilonPoint]:
    """Run the epsilon sweep across the evaluation datasets."""
    from ..datasets import DATASETS

    ids = dataset_ids or [s.id for s in DATASETS]
    out: list[EpsilonPoint] = []
    for dataset_id in ids:
        out.extend(run_epsilon_sweep(dataset_id, context, epsilons))
    return out


def format_figure7(points: list[EpsilonPoint]) -> str:
    """Render the Figure 7 series as plain text."""
    headers = ["Dataset", "epsilon", "coverage", "loss rate", "#stmts"]
    body = [
        [p.dataset_id, p.epsilon, p.coverage, p.loss_rate, p.n_statements]
        for p in points
    ]
    return format_table(headers, body)
