"""Recursive-descent parser for the SQL subset.

Grammar (precedence low → high)::

    query      := SELECT items FROM ident [WHERE expr]
                  [GROUP BY expr_list] [ORDER BY order_list] [LIMIT n]
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | comparison
    comparison := additive (cmp_op additive | IN (...) | IS [NOT] NULL)?
    additive   := multiplicative ((+|-) multiplicative)*
    multiplic. := unary ((*|/) unary)*
    unary      := - unary | primary
    primary    := literal | CASE ... END | function(...) | PREDICT(...)
                | column | (expr)
"""

from __future__ import annotations

from .ast import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    LiteralExpr,
    OrderItem,
    Predict,
    SelectItem,
    SelectQuery,
    UnaryOp,
)
from .lexer import SqlSyntaxError, Token, tokenize

_COMPARISON_OPS = {
    "EQ": "=",
    "NEQ": "!=",
    "LT": "<",
    "LE": "<=",
    "GT": ">",
    "GE": ">=",
}


class Parser:
    """One-statement SQL parser."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._cursor = 0

    # Token plumbing -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._cursor + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._cursor]
        if token.kind != "EOF":
            self._cursor += 1
        return token

    def _accept(self, kind: str) -> Token | None:
        if self._peek().kind == kind:
            return self._advance()
        return None

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise SqlSyntaxError(
                f"expected {kind} at offset {token.position}, found "
                f"{token.kind} ({token.text!r})"
            )
        return self._advance()

    # Query --------------------------------------------------------------

    def parse_query(self) -> SelectQuery:
        """Parse a full SELECT query."""
        self._expect("SELECT")
        self._accept("DISTINCT")  # tolerated, results are not deduplicated
        items = [self._select_item()]
        while self._accept("COMMA"):
            items.append(self._select_item())
        self._expect("FROM")
        table = self._expect("IDENT").text
        where = None
        if self._accept("WHERE"):
            where = self.parse_expression()
        group_by: list[Expr] = []
        if self._accept("GROUP"):
            self._expect("BY")
            group_by.append(self.parse_expression())
            while self._accept("COMMA"):
                group_by.append(self.parse_expression())
        having = None
        if self._accept("HAVING"):
            if not group_by:
                raise SqlSyntaxError("HAVING requires GROUP BY")
            having = self.parse_expression()
        order_by: list[OrderItem] = []
        if self._accept("ORDER"):
            self._expect("BY")
            order_by.append(self._order_item())
            while self._accept("COMMA"):
                order_by.append(self._order_item())
        limit = None
        if self._accept("LIMIT"):
            limit = int(self._expect("NUMBER").text)
        self._accept("SEMI")
        if self._peek().kind != "EOF":
            token = self._peek()
            raise SqlSyntaxError(
                f"trailing content at offset {token.position}: "
                f"{token.text!r}"
            )
        return SelectQuery(
            items=tuple(items),
            table=table,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
        )

    def _select_item(self) -> SelectItem:
        expr = self.parse_expression()
        alias = None
        if self._accept("AS"):
            alias = self._expect("IDENT").text
        elif self._peek().kind == "IDENT":
            alias = self._advance().text
        return SelectItem(expr, alias)

    def _order_item(self) -> OrderItem:
        expr = self.parse_expression()
        descending = False
        if self._accept("DESC"):
            descending = True
        else:
            self._accept("ASC")
        return OrderItem(expr, descending)

    # Expressions ----------------------------------------------------------

    def parse_expression(self) -> Expr:
        """Parse one expression (precedence-climbing entry point)."""
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept("OR"):
            left = BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept("AND"):
            left = BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept("NOT"):
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        kind = self._peek().kind
        if kind in _COMPARISON_OPS:
            self._advance()
            return BinaryOp(_COMPARISON_OPS[kind], left, self._additive())
        if kind == "NOT" and self._peek(1).kind == "IN":
            self._advance()
            self._advance()
            return self._in_list(left, negated=True)
        if kind == "IN":
            self._advance()
            return self._in_list(left, negated=False)
        if kind == "IS":
            self._advance()
            negated = self._accept("NOT") is not None
            self._expect("NULL")
            return IsNull(left, negated)
        return left

    def _in_list(self, operand: Expr, negated: bool) -> Expr:
        self._expect("LPAREN")
        options = [self.parse_expression()]
        while self._accept("COMMA"):
            options.append(self.parse_expression())
        self._expect("RPAREN")
        return InList(operand, tuple(options), negated)

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            if self._accept("PLUS"):
                left = BinaryOp("+", left, self._multiplicative())
            elif self._accept("MINUS"):
                left = BinaryOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            if self._accept("STAR"):
                left = BinaryOp("*", left, self._unary())
            elif self._accept("SLASH"):
                left = BinaryOp("/", left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self._accept("MINUS"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return LiteralExpr(value)
        if token.kind == "STRING":
            self._advance()
            return LiteralExpr(token.text)
        if token.kind in ("TRUE", "FALSE"):
            self._advance()
            return LiteralExpr(token.kind == "TRUE")
        if token.kind == "NULL":
            self._advance()
            return LiteralExpr(None)
        if token.kind == "CASE":
            return self._case_when()
        if token.kind == "LPAREN":
            self._advance()
            inner = self.parse_expression()
            self._expect("RPAREN")
            return inner
        if token.kind == "IDENT":
            return self._identifier_expression()
        raise SqlSyntaxError(
            f"unexpected token {token.text!r} at offset {token.position}"
        )

    def _case_when(self) -> Expr:
        self._expect("CASE")
        branches: list[tuple[Expr, Expr]] = []
        while self._accept("WHEN"):
            condition = self.parse_expression()
            self._expect("THEN")
            value = self.parse_expression()
            branches.append((condition, value))
        if not branches:
            raise SqlSyntaxError("CASE requires at least one WHEN branch")
        default = None
        if self._accept("ELSE"):
            default = self.parse_expression()
        self._expect("END")
        return CaseWhen(tuple(branches), default)

    def _identifier_expression(self) -> Expr:
        name = self._expect("IDENT").text
        if self._peek().kind == "LPAREN":
            return self._call(name)
        if self._accept("DOT"):
            column = self._expect("IDENT").text
            return ColumnRef(column, table=name)
        return ColumnRef(name)

    def _call(self, name: str) -> Expr:
        self._expect("LPAREN")
        lowered = name.lower()
        if lowered == "predict":
            return self._predict_call()
        if self._accept("STAR"):
            self._expect("RPAREN")
            return FunctionCall(lowered, (), star=True)
        args: list[Expr] = []
        if self._peek().kind != "RPAREN":
            args.append(self.parse_expression())
            while self._accept("COMMA"):
                args.append(self.parse_expression())
        self._expect("RPAREN")
        return FunctionCall(lowered, tuple(args))

    def _predict_call(self) -> Expr:
        token = self._peek()
        if token.kind in ("IDENT", "STRING"):
            model = self._advance().text
        else:
            raise SqlSyntaxError(
                f"PREDICT expects a model name at offset {token.position}"
            )
        features: list[str] = []
        while self._accept("COMMA"):
            features.append(self._expect("IDENT").text)
        self._expect("RPAREN")
        return Predict(model, tuple(features))


def parse_query(text: str) -> SelectQuery:
    """Parse one SELECT statement."""
    return Parser(text).parse_query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used by tests)."""
    parser = Parser(text)
    expr = parser.parse_expression()
    if parser._peek().kind != "EOF":
        raise SqlSyntaxError("trailing content after expression")
    return expr
