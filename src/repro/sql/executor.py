"""Execution engine for ML-integrated SQL over relations (paper §7).

The executor walks the stage pipeline produced by the planner, carrying
a :class:`Relation` (plus materialized prediction columns) through the
row stages and a :class:`QueryResult` through the output stages.  When a
query invokes ``PREDICT(...)`` and a fitted :class:`~repro.synth.
Guardrail` is attached, model-input rows pass through the configured
error-handling strategy *before* inference — the interception that
off-the-shelf ML-in-DB systems lack.
"""

from __future__ import annotations

import functools
import inspect
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .. import obs
from ..errors.handle import DataIntegrityError
from ..relation import Relation
from ..resilience.policy import CircuitBreaker, GuardPolicy
from .ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    LiteralExpr,
    Predict,
    SelectItem,
    SelectQuery,
    SqlError,
    UnaryOp,
)
from .parser import parse_query
from .planner import (
    Aggregate,
    Filter,
    Guard,
    Limit,
    Plan,
    PredictStage,
    Project,
    Scan,
    Sort,
    plan_query,
)


class SqlRuntimeError(SqlError):
    """Raised for execution-time failures (unknown columns, models, ...)."""


def _predict_key(node: Predict) -> str:
    return f"@{node}"


def _accepts_pool(handle) -> bool:
    """Does a guardrail's ``handle`` accept a ``pool=`` argument?

    Duck-typed guardrails (baseline adapters, test doubles) may not;
    they then run the guard stage serially instead of crashing it.
    """
    try:
        parameters = inspect.signature(handle).parameters
    except (TypeError, ValueError):
        return False
    return "pool" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


# ---------------------------------------------------------------------------
# Frames and evaluation
# ---------------------------------------------------------------------------


class Frame:
    """Columns as decoded object arrays, plus computed extras."""

    def __init__(
        self, relation: Relation, extras: Mapping[str, np.ndarray] = ()
    ):
        self._relation = relation
        self._extras = dict(extras or {})
        self._cache: dict[str, np.ndarray] = {}
        self.n_rows = relation.n_rows

    def column(self, name: str) -> np.ndarray:
        """The named column (relation or materialized prediction)."""
        if name in self._extras:
            return self._extras[name]
        if name in self._cache:
            return self._cache[name]
        if name not in self._relation.schema:
            raise SqlRuntimeError(f"unknown column {name!r}")
        values = np.array(
            self._relation.column_values(name), dtype=object
        )
        self._cache[name] = values
        return values

    def has(self, name: str) -> bool:
        """Is the name resolvable in this frame?"""
        return name in self._extras or name in self._relation.schema


class Evaluator:
    """Expression evaluation against a frame, with alias resolution."""

    def __init__(
        self, frame: Frame, aliases: Mapping[str, Expr] | None = None
    ):
        self._frame = frame
        self._aliases = dict(aliases or {})
        self._resolving: set[str] = set()

    def eval(self, expr: Expr) -> np.ndarray:
        """Evaluate an expression to a column over the frame."""
        if isinstance(expr, LiteralExpr):
            return np.full(self._frame.n_rows, expr.value, dtype=object)
        if isinstance(expr, ColumnRef):
            return self._column(expr.name)
        if isinstance(expr, Predict):
            key = _predict_key(expr)
            if not self._frame.has(key):
                raise SqlRuntimeError(
                    f"prediction column for {expr} was not materialized"
                )
            return self._frame.column(key)
        if isinstance(expr, BinaryOp):
            return self._binary(expr)
        if isinstance(expr, UnaryOp):
            if expr.op == "not":
                return ~as_bool(self.eval(expr.operand))
            return -as_float(self.eval(expr.operand))
        if isinstance(expr, InList):
            operand = self.eval(expr.operand)
            mask = np.zeros(self._frame.n_rows, dtype=bool)
            for option in expr.options:
                mask |= _equal(operand, self.eval(option))
            return ~mask if expr.negated else mask
        if isinstance(expr, IsNull):
            operand = self.eval(expr.operand)
            mask = np.array([v is None for v in operand], dtype=bool)
            return ~mask if expr.negated else mask
        if isinstance(expr, CaseWhen):
            return self._case(expr)
        if isinstance(expr, FunctionCall):
            if expr.name in AGGREGATE_FUNCTIONS:
                raise SqlRuntimeError(
                    f"aggregate {expr.name.upper()} outside GROUP BY context"
                )
            raise SqlRuntimeError(f"unknown function {expr.name!r}")
        raise SqlRuntimeError(f"cannot evaluate {type(expr).__name__}")

    def _column(self, name: str) -> np.ndarray:
        if self._frame.has(name):
            return self._frame.column(name)
        alias_target = self._aliases.get(name)
        if alias_target is not None and name not in self._resolving:
            self._resolving.add(name)
            try:
                return self.eval(alias_target)
            finally:
                self._resolving.discard(name)
        raise SqlRuntimeError(f"unknown column {name!r}")

    def _binary(self, expr: BinaryOp) -> np.ndarray:
        op = expr.op
        if op == "and":
            return as_bool(self.eval(expr.left)) & as_bool(
                self.eval(expr.right)
            )
        if op == "or":
            return as_bool(self.eval(expr.left)) | as_bool(
                self.eval(expr.right)
            )
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if op == "=":
            return _equal(left, right)
        if op == "!=":
            return ~_equal(left, right)
        if op in ("<", "<=", ">", ">="):
            lf, rf = as_float(left), as_float(right)
            with np.errstate(invalid="ignore"):
                if op == "<":
                    return lf < rf
                if op == "<=":
                    return lf <= rf
                if op == ">":
                    return lf > rf
                return lf >= rf
        if op in ("+", "-", "*", "/"):
            lf, rf = as_float(left), as_float(right)
            with np.errstate(divide="ignore", invalid="ignore"):
                if op == "+":
                    return lf + rf
                if op == "-":
                    return lf - rf
                if op == "*":
                    return lf * rf
                return lf / rf
        raise SqlRuntimeError(f"unknown operator {op!r}")

    def _case(self, expr: CaseWhen) -> np.ndarray:
        result = (
            self.eval(expr.default)
            if expr.default is not None
            else np.full(self._frame.n_rows, None, dtype=object)
        )
        result = np.array(result, dtype=object)
        decided = np.zeros(self._frame.n_rows, dtype=bool)
        for condition, value in expr.branches:
            mask = as_bool(self.eval(condition)) & ~decided
            if mask.any():
                values = self.eval(value)
                result[mask] = (
                    values[mask]
                    if isinstance(values, np.ndarray) and values.ndim
                    else values
                )
            decided |= mask
        return result


def as_bool(values: np.ndarray) -> np.ndarray:
    """Coerce an evaluated column to a boolean mask."""
    if values.dtype == bool:
        return values
    return np.array(
        [bool(v) if v is not None else False for v in values], dtype=bool
    )


def as_float(values: np.ndarray) -> np.ndarray:
    """Coerce an evaluated column to floats."""
    if values.dtype.kind == "f":
        return values
    if values.dtype == bool:
        return values.astype(np.float64)
    out = np.empty(len(values), dtype=np.float64)
    for index, value in enumerate(values):
        if value is None:
            out[index] = np.nan
        elif isinstance(value, bool):
            out[index] = float(value)
        elif isinstance(value, (int, float)):
            out[index] = float(value)
        else:
            try:
                out[index] = float(value)
            except (TypeError, ValueError):
                out[index] = np.nan
    return out


def _equal(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if left.dtype == bool and right.dtype == object:
        right = as_bool(right)
    if right.dtype == bool and left.dtype == object:
        left = as_bool(left)
    if left.dtype.kind == "f" or right.dtype.kind == "f":
        lf, rf = as_float(left), as_float(right)
        with np.errstate(invalid="ignore"):
            return lf == rf
    out = np.array(
        [a == b if a is not None and b is not None else False
         for a, b in zip(left, right)],
        dtype=bool,
    )
    # Numeric-vs-string mismatch salvage: compare as floats where both parse.
    return out


# ---------------------------------------------------------------------------
# Query results
# ---------------------------------------------------------------------------


@dataclass
class QueryResult:
    """A small materialized result set."""

    names: list[str]
    rows: list[tuple] = field(default_factory=list)

    @property
    def n_rows(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    def column(self, name: str) -> list:
        """The values of the named result column."""
        try:
            index = self.names.index(name)
        except ValueError:
            raise SqlRuntimeError(f"no result column {name!r}") from None
        return [row[index] for row in self.rows]

    def scalar(self) -> object:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.names) != 1:
            raise SqlRuntimeError("result is not a single scalar")
        return self.rows[0][0]

    def to_dicts(self) -> list[dict]:
        """The result as a list of row dicts."""
        return [dict(zip(self.names, row)) for row in self.rows]

    def numeric_vector(self) -> list[float]:
        """All numeric cells in row-major order (Fig. 6's comparison basis)."""
        out = []
        for row in self.rows:
            for value in row:
                if isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)) and not (
                    isinstance(value, float) and np.isnan(value)
                ):
                    out.append(float(value))
        return out

    def to_text(self) -> str:
        """Plain-text table rendering of the result."""
        cells = [[_render(v) for v in row] for row in self.rows]
        widths = [
            max(len(n), *(len(c[i]) for c in cells)) if cells else len(n)
            for i, n in enumerate(self.names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(self.names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(c.ljust(w) for c, w in zip(row, widths))
            for row in cells
        ]
        return "\n".join([header, sep, *body])


def _render(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


@dataclass
class ExecutionMetrics:
    """Timing breakdown per executed query (Table 6), plus resilience
    bookkeeping: stage failures absorbed by the degradation policy, the
    rows it withheld, and a human-readable note per degradation."""

    guard_seconds: float = 0.0
    inference_seconds: float = 0.0
    total_seconds: float = 0.0
    rows_scanned: int = 0
    rows_predicted: int = 0
    rows_flagged: int = 0
    rows_rectified: int = 0
    guard_failures: int = 0
    model_failures: int = 0
    rows_rejected: int = 0
    degraded: bool = False
    degradations: list[str] = field(default_factory=list)
    guard_version: int | None = None
    """Version of the guardrail that vetted this query (None when the
    attached guardrail is unversioned or absent); lets audit trails tie
    each query to the exact program enforced during a hot-swap window."""


class QueryExecutor:
    """Run SQL over a catalog of relations with optional ML + GUARDRAIL.

    Parameters
    ----------
    catalog:
        Table name → relation.
    models:
        Model name → fitted :class:`~repro.ml.Classifier`, addressable
        from ``PREDICT(name, ...)``.
    guardrail:
        A fitted :class:`~repro.synth.Guardrail`; when set, model-input
        rows are vetted/handled before inference.
    strategy:
        Error-handling strategy the guard applies (``raise`` / ``ignore``
        / ``coerce`` / ``rectify``).
    policy:
        :class:`~repro.resilience.GuardPolicy` governing what happens
        when the guard or a model *fails* mid-query (raises, or the
        circuit is open).  ``strict`` (default) re-raises as
        :class:`SqlRuntimeError`; ``warn``/``pass_through`` let rows
        flow unvetted (recorded in :class:`ExecutionMetrics`);
        ``reject`` withholds the affected rows and completes the query
        over what remains.  Intended outcomes — the ``raise`` strategy's
        :class:`~repro.errors.DataIntegrityError`, malformed-query
        :class:`SqlRuntimeError` — always propagate regardless.
    guard_breaker / model_breaker:
        Circuit breakers for the two fallible stages (defaults: trip
        after 3 consecutive failures, no in-process retry).
    guard_timeout_seconds:
        Post-hoc watchdog on the guard stage: a slower run counts as a
        breaker failure and degrades per policy.
    workers:
        An int or a :class:`repro.parallel.WorkerPool`: the guard
        stage's detection scan shards large model-input relations
        across forked workers (verdicts stay bit-identical; see
        ``docs/PERFORMANCE.md``).  Guardrails whose ``handle`` does not
        take a ``pool`` argument (duck-typed baselines) run serially.
    """

    def __init__(
        self,
        catalog: Mapping[str, Relation],
        models: Mapping[str, object] | None = None,
        guardrail=None,
        strategy: str = "rectify",
        policy: "GuardPolicy | str" = GuardPolicy.STRICT,
        guard_breaker: CircuitBreaker | None = None,
        model_breaker: CircuitBreaker | None = None,
        guard_timeout_seconds: float | None = None,
        workers=None,
    ):
        from ..parallel import as_pool

        self.catalog = dict(catalog)
        self.models = dict(models or {})
        self.guardrail = guardrail
        self.strategy = strategy
        self.policy = GuardPolicy.parse(policy)
        self.guard_breaker = guard_breaker or CircuitBreaker(max_retries=0)
        self.model_breaker = model_breaker or CircuitBreaker(max_retries=0)
        self.guard_timeout_seconds = guard_timeout_seconds
        self.pool = as_pool(workers)
        self.last_metrics = ExecutionMetrics()
        self.last_plan: Plan | None = None

    def swap_guardrail(self, replacement) -> None:
        """Hot-swap the guardrail used by subsequent guard stages.

        Accepts a fitted :class:`~repro.synth.Guardrail`, a
        :class:`~repro.resilience.GuardrailVersions` holder (whose own
        swaps then apply live without calling this again), or a path to
        a saved guardrail file.  A corrupt/missing file raises
        :class:`~repro.synth.GuardrailLoadError` and the **previous
        guardrail stays active** — the load is validated before any
        state changes.
        """
        from ..synth import Guardrail, GuardrailLoadError

        if isinstance(replacement, (str, bytes)) or hasattr(
            replacement, "__fspath__"
        ):
            replacement = Guardrail.load(replacement)  # may raise, pre-swap
        elif not (
            isinstance(replacement, Guardrail)
            or hasattr(replacement, "handle")
        ):
            raise GuardrailLoadError(
                f"cannot swap in a {type(replacement).__name__}; expected "
                f"a Guardrail, a GuardrailVersions holder, or a path"
            )
        self.guardrail = replacement
        if obs.enabled():
            obs.count("sql.guard_swap")

    def execute(self, query: "str | SelectQuery") -> QueryResult:
        """Parse (if needed), plan, and run one query.

        The last run's timing breakdown is kept on ``last_metrics``;
        with tracing enabled, a ``sql.execute`` span plus per-stage
        guard/inference samples are emitted as well.
        """
        if isinstance(query, str):
            query = parse_query(query)
        guard_strategy = (
            self.strategy
            if self.guardrail is not None and query.uses_predict()
            else None
        )
        plan = plan_query(query, guard_strategy=guard_strategy)
        self.last_plan = plan
        metrics = ExecutionMetrics(
            guard_version=getattr(self.guardrail, "version", None)
        )
        started = time.perf_counter()

        relation: Relation | None = None
        extras: dict[str, np.ndarray] = {}
        result: QueryResult | None = None
        aliases = {
            item.alias: item.expr
            for item in query.items
            if item.alias is not None
        }

        # Published even when a stage raises (strict policy, query
        # errors), so callers can still read the failure counters.
        self.last_metrics = metrics
        for stage in plan.stages:
            if isinstance(stage, Scan):
                relation = self._scan(stage.table)
                metrics.rows_scanned = relation.n_rows
            elif isinstance(stage, Filter):
                assert relation is not None
                evaluator = Evaluator(Frame(relation, extras), aliases)
                mask = as_bool(evaluator.eval(stage.predicate))
                relation = relation.filter(mask)
                extras = {k: v[mask] for k, v in extras.items()}
            elif isinstance(stage, Guard):
                # Detection inside handle() runs through the compiled
                # kernels (repro.dsl.compiled), so the guard stage pays
                # array ops, not a per-branch Python loop.
                assert relation is not None
                tick = time.perf_counter()
                with obs.span(
                    "sql.guard", strategy=str(stage.strategy)
                ) as guard_span:
                    relation = self._guard_stage(
                        stage, relation, extras, metrics, guard_span
                    )
                metrics.guard_seconds += time.perf_counter() - tick
            elif isinstance(stage, PredictStage):
                assert relation is not None
                tick = time.perf_counter()
                with obs.span(
                    "sql.predict", n_rows=relation.n_rows
                ):
                    relation = self._predict_stage(
                        stage, relation, extras, metrics
                    )
                metrics.inference_seconds += time.perf_counter() - tick
            elif isinstance(stage, Aggregate):
                assert relation is not None
                result = self._aggregate(stage, relation, extras, aliases)
            elif isinstance(stage, Project):
                assert relation is not None
                result = self._project(stage, relation, extras, aliases)
            elif isinstance(stage, Sort):
                assert result is not None
                result = _sort_result(result, stage.keys)
            elif isinstance(stage, Limit):
                assert result is not None
                result.rows = result.rows[: stage.count]
        metrics.total_seconds = time.perf_counter() - started
        self.last_metrics = metrics
        if obs.enabled():
            obs.observe("sql.guard_seconds", metrics.guard_seconds)
            obs.observe(
                "sql.inference_seconds", metrics.inference_seconds
            )
            obs.record(
                "sql.query",
                total_s=metrics.total_seconds,
                rows_scanned=metrics.rows_scanned,
                rows_predicted=metrics.rows_predicted,
                rows_flagged=metrics.rows_flagged,
                rows_rectified=metrics.rows_rectified,
                degraded=metrics.degraded,
                rows_rejected=metrics.rows_rejected,
            )
        if result is None:
            raise SqlRuntimeError("plan produced no output stage")
        return result

    # ------------------------------------------------------------------

    def _scan(self, table: str) -> Relation:
        try:
            return self.catalog[table]
        except KeyError:
            raise SqlRuntimeError(f"unknown table {table!r}") from None

    def _guard_stage(
        self,
        stage: Guard,
        relation: Relation,
        extras: dict[str, np.ndarray],
        metrics: ExecutionMetrics,
        guard_span,
    ) -> Relation:
        """Run the guard under the breaker + degradation policy.

        A :class:`~repro.errors.DataIntegrityError` from the ``raise``
        strategy is the guard *working*, not failing, and propagates
        untouched; any other exception (or an open circuit, or a
        watchdog-slow run) degrades per :attr:`policy`.
        """
        start = time.perf_counter()
        handle = self.guardrail.handle
        if self.pool is not None and self.pool.parallel and _accepts_pool(
            handle
        ):
            handle = functools.partial(handle, pool=self.pool)
        try:
            outcome = self.guard_breaker.call(
                handle,
                relation,
                stage.strategy,
                expected=(DataIntegrityError,),
            )
        except DataIntegrityError:
            raise
        except Exception as error:
            metrics.guard_failures += 1
            return self._degrade("guard", error, relation, extras, metrics)
        elapsed = time.perf_counter() - start
        slow = (
            self.guard_timeout_seconds is not None
            and elapsed > self.guard_timeout_seconds
        )
        if slow:
            # Post-hoc watchdog: the outcome exists, but the stall is a
            # breaker failure; fail-closed policies discard the late
            # result, fail-open ones use it and record the degradation.
            self.guard_breaker.record_failure()
            metrics.guard_failures += 1
            if obs.enabled():
                obs.count("sql.resilience.guard_slow")
            if self.policy is GuardPolicy.STRICT:
                raise SqlRuntimeError(
                    f"guard stage exceeded its "
                    f"{self.guard_timeout_seconds}s deadline "
                    f"({elapsed:.3f}s) under strict policy"
                )
            if self.policy is GuardPolicy.REJECT:
                return self._degrade(
                    "guard",
                    TimeoutError(f"guard took {elapsed:.3f}s"),
                    relation,
                    extras,
                    metrics,
                )
            metrics.degraded = True
            metrics.degradations.append(
                f"guard: slow ({elapsed:.3f}s > "
                f"{self.guard_timeout_seconds}s)"
            )
        guard_span.set(
            rows_flagged=outcome.detection.n_flagged_rows,
            rows_rectified=outcome.n_changed,
        )
        metrics.rows_flagged = outcome.detection.n_flagged_rows
        metrics.rows_rectified = outcome.n_changed
        return outcome.relation

    def _predict_stage(
        self,
        stage: PredictStage,
        relation: Relation,
        extras: dict[str, np.ndarray],
        metrics: ExecutionMetrics,
    ) -> Relation:
        """Materialize prediction columns under the degradation policy.

        Query errors (unknown model/columns → :class:`SqlRuntimeError`)
        always raise; a model *fault* degrades per :attr:`policy`, with
        fail-open policies materializing an all-``None`` column.
        """
        for node in stage.predicts:
            try:
                column = self.model_breaker.call(
                    self._predict,
                    node,
                    relation,
                    expected=(SqlRuntimeError,),
                )
            except SqlRuntimeError:
                raise
            except Exception as error:
                metrics.model_failures += 1
                relation = self._degrade(
                    "model", error, relation, extras, metrics
                )
                column = np.full(relation.n_rows, None, dtype=object)
            extras[_predict_key(node)] = column
        metrics.rows_predicted = relation.n_rows * len(stage.predicts)
        return relation

    def _degrade(
        self,
        stage_name: str,
        error: BaseException,
        relation: Relation,
        extras: dict[str, np.ndarray],
        metrics: ExecutionMetrics,
    ) -> Relation:
        """Apply the degradation policy after a stage failure.

        ``strict`` raises; ``reject`` withholds the stage's rows (the
        query completes empty); ``warn``/``pass_through`` return the
        relation untouched so rows flow unvetted.  Every path records
        the event on the metrics and the obs counters.
        """
        note = f"{stage_name}: {type(error).__name__}: {error}"
        metrics.degradations.append(note)
        if obs.enabled():
            obs.count(f"sql.resilience.{stage_name}_failure")
            obs.record(
                "sql.degraded",
                stage=stage_name,
                policy=self.policy.value,
                error=type(error).__name__,
            )
        if self.policy is GuardPolicy.STRICT:
            raise SqlRuntimeError(
                f"{stage_name} stage failed under strict policy: {error}"
            ) from error
        metrics.degraded = True
        if self.policy is GuardPolicy.REJECT:
            metrics.rows_rejected += relation.n_rows
            for key in list(extras):
                extras[key] = extras[key][:0]
            return relation.filter(
                np.zeros(relation.n_rows, dtype=bool)
            )
        return relation

    def _predict(self, node: Predict, relation: Relation) -> np.ndarray:
        model = self.models.get(node.model)
        if model is None:
            raise SqlRuntimeError(f"unknown model {node.model!r}")
        if node.features:
            missing = [
                f for f in node.features if f not in relation.schema
            ]
            if missing:
                raise SqlRuntimeError(
                    f"PREDICT references unknown columns: {missing}"
                )
        values = model.predict_values(relation)
        return np.array(values, dtype=object)

    def _project(
        self,
        stage: Project,
        relation: Relation,
        extras: dict[str, np.ndarray],
        aliases: Mapping[str, Expr],
    ) -> QueryResult:
        evaluator = Evaluator(Frame(relation, extras), aliases)
        names = [
            item.output_name(index) for index, item in enumerate(stage.items)
        ]
        columns = [evaluator.eval(item.expr) for item in stage.items]
        rows = [
            tuple(_pythonic(column[i]) for column in columns)
            for i in range(relation.n_rows)
        ]
        return QueryResult(names, rows)

    def _aggregate(
        self,
        stage: Aggregate,
        relation: Relation,
        extras: dict[str, np.ndarray],
        aliases: Mapping[str, Expr],
    ) -> QueryResult:
        frame = Frame(relation, extras)
        evaluator = Evaluator(frame, aliases)
        names = [
            item.output_name(index) for index, item in enumerate(stage.items)
        ]
        if stage.group_by:
            key_columns = [evaluator.eval(e) for e in stage.group_by]
            groups: dict[tuple, list[int]] = {}
            for row in range(frame.n_rows):
                key = tuple(column[row] for column in key_columns)
                groups.setdefault(key, []).append(row)
            ordered = sorted(
                groups.items(), key=lambda kv: _sort_token(kv[0])
            )
        else:
            ordered = [((), list(range(frame.n_rows)))]
        rows = []
        for _, indices in ordered:
            index_array = np.asarray(indices, dtype=np.int64)
            if stage.having is not None:
                keep = _aggregate_item(
                    stage.having, evaluator, index_array
                )
                if not keep:
                    continue
            row = tuple(
                _pythonic(
                    _aggregate_item(item.expr, evaluator, index_array)
                )
                for item in stage.items
            )
            rows.append(row)
        return QueryResult(names, rows)


def _aggregate_item(
    expr: Expr, evaluator: Evaluator, indices: np.ndarray
) -> object:
    """Evaluate a select-item expression in one group's context."""
    if isinstance(expr, FunctionCall) and expr.name in AGGREGATE_FUNCTIONS:
        return _compute_aggregate(expr, evaluator, indices)
    if isinstance(expr, ColumnRef) and not evaluator._frame.has(expr.name):
        # Aliases of aggregate expressions (e.g. HAVING share > 0.5)
        # resolve in the group's context, not row context.
        target = evaluator._aliases.get(expr.name)
        if target is not None:
            return _aggregate_item(target, evaluator, indices)
    if isinstance(expr, BinaryOp):
        left = _aggregate_item(expr.left, evaluator, indices)
        right = _aggregate_item(expr.right, evaluator, indices)
        return _scalar_binary(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = _aggregate_item(expr.operand, evaluator, indices)
        if expr.op == "not":
            return not bool(operand)
        return -float(operand) if operand is not None else None
    # Non-aggregate leaf: constant within the group (take first row).
    values = evaluator.eval(expr)
    return values[indices[0]] if indices.size else None


def _compute_aggregate(
    call: FunctionCall, evaluator: Evaluator, indices: np.ndarray
) -> object:
    if call.star or not call.args:
        if call.name != "count":
            raise SqlRuntimeError(f"{call.name.upper()} requires an argument")
        return int(indices.size)
    values = evaluator.eval(call.args[0])[indices]
    if call.name == "count":
        return int(sum(1 for v in values if v is not None))
    floats = as_float(np.asarray(values, dtype=object))
    floats = floats[~np.isnan(floats)]
    if floats.size == 0:
        return None
    if call.name == "sum":
        return float(floats.sum())
    if call.name == "avg":
        return float(floats.mean())
    if call.name == "min":
        return float(floats.min())
    if call.name == "max":
        return float(floats.max())
    raise SqlRuntimeError(f"unknown aggregate {call.name!r}")


def _scalar_binary(op: str, left: object, right: object) -> object:
    if op == "and":
        return bool(left) and bool(right)
    if op == "or":
        return bool(left) or bool(right)
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if left is None or right is None:
        return None
    lf, rf = float(left), float(right)
    if op == "+":
        return lf + rf
    if op == "-":
        return lf - rf
    if op == "*":
        return lf * rf
    if op == "/":
        return lf / rf if rf != 0 else None
    if op == "<":
        return lf < rf
    if op == "<=":
        return lf <= rf
    if op == ">":
        return lf > rf
    if op == ">=":
        return lf >= rf
    raise SqlRuntimeError(f"unknown operator {op!r}")


def _sort_result(
    result: QueryResult, keys: Sequence
) -> QueryResult:
    positions = []
    for key in keys:
        expr = key.expr
        if isinstance(expr, ColumnRef) and expr.name in result.names:
            positions.append((result.names.index(expr.name), key.descending))
        elif isinstance(expr, LiteralExpr) and isinstance(expr.value, int):
            positions.append((expr.value - 1, key.descending))
        else:
            raise SqlRuntimeError(
                "ORDER BY must reference an output column or position"
            )

    def sort_key(row: tuple):
        return tuple(
            _sort_token((row[index],), descending)
            for index, descending in positions
        )

    rows = sorted(result.rows, key=sort_key)
    return QueryResult(result.names, rows)


def _sort_token(values: tuple, descending: bool = False):
    out = []
    for value in values:
        if value is None:
            token: tuple = (2, "")
        elif isinstance(value, bool):
            token = (0, float(value))
        elif isinstance(value, (int, float)):
            token = (0, float(value))
        else:
            token = (1, str(value))
        out.append(token)
    if descending:
        return _Reversed(tuple(out))
    return tuple(out)


class _Reversed:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


def _pythonic(value: object) -> object:
    if isinstance(value, np.generic):
        return value.item()
    return value
