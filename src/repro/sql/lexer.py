"""Tokenizer for the SQL subset."""

from __future__ import annotations

import re
from typing import NamedTuple

from .ast import SqlError


class SqlSyntaxError(SqlError):
    """Raised on malformed SQL text."""


class Token(NamedTuple):
    """One lexed token: kind, text, and source position."""
    kind: str
    text: str
    position: int

    @property
    def upper(self) -> str:
        """The token text uppercased (for keyword comparison)."""
        return self.text.upper()


KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT AS AND OR NOT IN IS
    NULL CASE WHEN THEN ELSE END ASC DESC TRUE FALSE DISTINCT
    """.split()
)

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|--[^\n]*)
  | (?P<STRING>'(?:[^']|'')*')
  | (?P<NUMBER>\d+\.\d+|\.\d+|\d+)
  | (?P<NEQ><>|!=)
  | (?P<LE><=)
  | (?P<GE>>=)
  | (?P<EQ>==?)
  | (?P<LT><)
  | (?P<GT>>)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.)
  | (?P<STAR>\*)
  | (?P<PLUS>\+)
  | (?P<MINUS>-)
  | (?P<SLASH>/)
  | (?P<SEMI>;)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_\-]*|"(?:[^"]|"")*")
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; keywords are detected case-insensitively."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {text[position]!r} at offset "
                f"{position}"
            )
        kind = match.lastgroup or ""
        raw = match.group()
        if kind != "WS":
            if kind == "IDENT":
                if raw.startswith('"'):
                    raw = raw[1:-1].replace('""', '"')
                elif raw.upper() in KEYWORDS:
                    kind = raw.upper()
            elif kind == "STRING":
                raw = raw[1:-1].replace("''", "'")
            tokens.append(Token(kind, raw, position))
        position = match.end()
    tokens.append(Token("EOF", "", position))
    return tokens
