"""AST for the ML-integrated SQL subset (paper §7).

The executor supports the query shapes the evaluation uses::

    SELECT income_pred, AVG(age)
    FROM adult
    WHERE workclass = 'Private'
    GROUP BY income_pred

with ``PREDICT(model, col, ...)`` expressions invoking a registered ML
model row-wise — the integration point GUARDRAIL intercepts.  Plus CASE
WHEN, arithmetic, comparisons, IN lists, ORDER BY, and LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class SqlError(ValueError):
    """Base error for the SQL layer."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base expression node."""

    def children(self) -> Iterator["Expr"]:
        """Direct child expressions (empty for leaves)."""
        return iter(())

    def walk(self) -> Iterator["Expr"]:
        """Yield this expression and every descendant."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly table-qualified) column reference."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class LiteralExpr(Expr):
    """A constant: string, number, boolean, or NULL."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Infix operators: comparisons, arithmetic, AND/OR."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> Iterator[Expr]:
        """Direct child expressions."""
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """NOT and unary minus."""

    op: str
    operand: Expr

    def children(self) -> Iterator[Expr]:
        """Direct child expressions."""
        yield self.operand

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class InList(Expr):
    """``expr IN (v1, v2, ...)`` (or NOT IN)."""

    operand: Expr
    options: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> Iterator[Expr]:
        """Direct child expressions."""
        yield self.operand
        yield from self.options

    def __str__(self) -> str:
        values = ", ".join(str(o) for o in self.options)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {keyword} ({values}))"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> Iterator[Expr]:
        """Direct child expressions."""
        yield self.operand

    def __str__(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {keyword})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Aggregate or scalar function call."""

    name: str
    args: tuple[Expr, ...]
    star: bool = False  # COUNT(*)

    def children(self) -> Iterator[Expr]:
        """Direct child expressions."""
        yield from self.args

    def __str__(self) -> str:
        inner = "*" if self.star else ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    branches: tuple[tuple[Expr, Expr], ...]
    default: Expr | None = None

    def children(self) -> Iterator[Expr]:
        """Direct child expressions."""
        for condition, value in self.branches:
            yield condition
            yield value
        if self.default is not None:
            yield self.default

    def __str__(self) -> str:
        parts = " ".join(
            f"WHEN {c} THEN {v}" for c, v in self.branches
        )
        default = f" ELSE {self.default}" if self.default else ""
        return f"(CASE {parts}{default} END)"


@dataclass(frozen=True)
class Predict(Expr):
    """``PREDICT(model_name, feature_col, ...)`` — the ML integration.

    With no feature columns the model's training feature list is used.
    """

    model: str
    features: tuple[str, ...] = ()

    def __str__(self) -> str:
        inner = ", ".join((self.model, *self.features))
        return f"PREDICT({inner})"


AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


def contains_aggregate(expr: Expr) -> bool:
    """Does the expression contain an aggregate call?"""
    return any(
        isinstance(node, FunctionCall)
        and node.name.lower() in AGGREGATE_FUNCTIONS
        for node in expr.walk()
    )


def contains_predict(expr: Expr) -> bool:
    """Does the expression contain a PREDICT call?"""
    return any(isinstance(node, Predict) for node in expr.walk())


def referenced_columns(expr: Expr) -> set[str]:
    """Column names referenced anywhere in the expression."""
    return {
        node.name for node in expr.walk() if isinstance(node, ColumnRef)
    }


# ---------------------------------------------------------------------------
# Query
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry: an expression plus optional alias."""
    expr: Expr
    alias: str | None = None

    def output_name(self, position: int) -> str:
        """The column name this item produces in the result."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        if isinstance(self.expr, Predict):
            return f"{self.expr.model}_pred"
        return f"col_{position}"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: expression plus direction."""
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """A parsed SELECT statement."""

    items: tuple[SelectItem, ...]
    table: str
    where: Expr | None = None
    group_by: tuple[Expr, ...] = field(default_factory=tuple)
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = field(default_factory=tuple)
    limit: int | None = None

    def uses_predict(self) -> bool:
        """Does any part of the query invoke PREDICT?"""
        expressions: list[Expr] = [item.expr for item in self.items]
        if self.where is not None:
            expressions.append(self.where)
        expressions.extend(self.group_by)
        if self.having is not None:
            expressions.append(self.having)
        expressions.extend(o.expr for o in self.order_by)
        return any(contains_predict(e) for e in expressions)

    def is_aggregate(self) -> bool:
        """Does the query aggregate (GROUP BY or aggregate calls)?"""
        return bool(self.group_by) or any(
            contains_aggregate(item.expr) for item in self.items
        )
