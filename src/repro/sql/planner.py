"""Logical planning for the SQL subset, with predicate pushdown (§7).

A query compiles into a linear pipeline of stages::

    Scan → Filter(pre) → Guard → Predict → Filter(post)
         → Aggregate | Project → Sort → Limit

The WHERE clause is split into conjuncts: those that do not depend on a
``PREDICT(...)`` expression are pushed *before* the guard/inference
stages (fewer rows vetted and predicted — the optimization the paper
names), while prediction-dependent conjuncts run after inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import (
    BinaryOp,
    Expr,
    OrderItem,
    Predict,
    SelectItem,
    SelectQuery,
    contains_predict,
)


@dataclass(frozen=True)
class Stage:
    """Base class for plan stages."""


@dataclass(frozen=True)
class Scan(Stage):
    """Stage: read a table from the catalog."""
    table: str


@dataclass(frozen=True)
class Filter(Stage):
    """Stage: keep rows satisfying a predicate."""
    predicate: Expr
    pushed_down: bool = False


@dataclass(frozen=True)
class Guard(Stage):
    """Vet model-input rows with the fitted GUARDRAIL before inference."""

    strategy: str


@dataclass(frozen=True)
class PredictStage(Stage):
    """Materialize each distinct PREDICT expression as a column."""

    predicts: tuple[Predict, ...]


@dataclass(frozen=True)
class Aggregate(Stage):
    """Stage: grouped or global aggregation."""
    group_by: tuple[Expr, ...]
    items: tuple[SelectItem, ...]
    having: Expr | None = None


@dataclass(frozen=True)
class Project(Stage):
    """Stage: evaluate the SELECT list."""
    items: tuple[SelectItem, ...]


@dataclass(frozen=True)
class Sort(Stage):
    """Stage: order the result rows."""
    keys: tuple[OrderItem, ...]


@dataclass(frozen=True)
class Limit(Stage):
    """Stage: truncate the result."""
    count: int


@dataclass
class Plan:
    """An ordered stage pipeline."""

    stages: list[Stage] = field(default_factory=list)

    def describe(self) -> str:
        """One-line-per-stage rendering of the plan."""
        lines = []
        for stage in self.stages:
            name = type(stage).__name__
            if isinstance(stage, Filter):
                marker = " (pushed down)" if stage.pushed_down else ""
                lines.append(f"{name}: {stage.predicate}{marker}")
            elif isinstance(stage, Scan):
                lines.append(f"{name}: {stage.table}")
            elif isinstance(stage, PredictStage):
                inner = ", ".join(str(p) for p in stage.predicts)
                lines.append(f"{name}: {inner}")
            elif isinstance(stage, Guard):
                lines.append(f"{name}: strategy={stage.strategy}")
            else:
                lines.append(name)
        return "\n".join(lines)


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten a tree of ANDs into its conjuncts."""
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[Expr]) -> Expr | None:
    """AND together a list of predicates (None when empty)."""
    if not conjuncts:
        return None
    out = conjuncts[0]
    for conjunct in conjuncts[1:]:
        out = BinaryOp("and", out, conjunct)
    return out


def collect_predicts(query: SelectQuery) -> tuple[Predict, ...]:
    """Distinct PREDICT expressions anywhere in the query."""
    seen: dict[Predict, None] = {}
    expressions: list[Expr] = [item.expr for item in query.items]
    if query.where is not None:
        expressions.append(query.where)
    expressions.extend(query.group_by)
    if query.having is not None:
        expressions.append(query.having)
    expressions.extend(o.expr for o in query.order_by)
    for expr in expressions:
        for node in expr.walk():
            if isinstance(node, Predict):
                seen[node] = None
    return tuple(seen)


def plan_query(
    query: SelectQuery,
    guard_strategy: str | None = None,
) -> Plan:
    """Compile a parsed query into a stage pipeline.

    ``guard_strategy`` inserts a :class:`Guard` stage before inference
    when set (and the query actually invokes a model).
    """
    plan = Plan([Scan(query.table)])
    predicts = collect_predicts(query)

    pre: list[Expr] = []
    post: list[Expr] = []
    if query.where is not None:
        for conjunct in split_conjuncts(query.where):
            (post if contains_predict(conjunct) else pre).append(conjunct)
    pre_predicate = conjoin(pre)
    post_predicate = conjoin(post)

    if pre_predicate is not None:
        plan.stages.append(Filter(pre_predicate, pushed_down=bool(predicts)))
    if predicts:
        if guard_strategy is not None:
            plan.stages.append(Guard(guard_strategy))
        plan.stages.append(PredictStage(predicts))
    if post_predicate is not None:
        plan.stages.append(Filter(post_predicate))

    if query.is_aggregate():
        plan.stages.append(
            Aggregate(query.group_by, query.items, query.having)
        )
    else:
        plan.stages.append(Project(query.items))
    if query.order_by:
        plan.stages.append(Sort(query.order_by))
    if query.limit is not None:
        plan.stages.append(Limit(query.limit))
    return plan
