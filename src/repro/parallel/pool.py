"""The fork-based worker pool behind every sharded stage.

Design notes
------------

**Fork, not spawn.**  Pools are created with the ``fork`` start method,
so workers inherit the parent's memory copy-on-write: the relation code
arrays, compiled programs, CI testers, and drift references a stage
shares with its workers cost nothing to transfer.  Only the per-item
payloads (shard indices, DAG indices, pair indices — small integers)
and the per-item results cross the process boundary via pickle.

**Shared state by inheritance.**  A stage passes its large read-only
state via ``map(..., shared=...)``; the pool installs it in a module
global *before* forking, and worker tasks read it back with
:func:`get_shared`.  Task functions must be module-level (picklable by
reference); closures cannot cross the boundary.

**Serial fallback.**  ``workers=1``, a platform without ``fork``, a
single work item, or a nested call from inside a worker all run the
identical task functions inline in the parent.  Call sites therefore
never branch on "am I parallel" — they call :meth:`WorkerPool.map` and
get the same answers either way (the bit-identical guarantee).

**Obs merging.**  When tracing is enabled in the parent, each worker
wraps its task in a private :class:`~repro.obs.MemorySink`; the events
ride back with the result and are re-emitted into the parent's sink by
:func:`repro.obs.merge_events`, tagged with the worker's pid.  Without
this, a forked worker's counters would be silently dropped (the child's
increments land in a copy of the sink that dies with the process).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, Iterable, Iterator, Sequence

from .. import obs

_WORKER_SHARED: Any = None
_WORKER_CAPTURE: bool = False
_IN_WORKER: bool = False

DEFAULT_MIN_SHARD_ROWS = 20_000
"""Below this many rows per shard, fan-out overhead (fork + pickle of
results) exceeds the kernel time saved; stages fall back to fewer
shards, possibly one (see ``docs/PERFORMANCE.md``)."""


def get_shared() -> Any:
    """The state installed by the currently running ``map``/``imap``.

    Inside a forked worker this is the parent's ``shared=`` object,
    inherited copy-on-write; on the serial fallback it is the same
    object by reference.  ``None`` outside any pool call.
    """
    return _WORKER_SHARED


def in_worker() -> bool:
    """Is this process a pool worker?  (Nested pools degrade to serial.)"""
    return _IN_WORKER


def fork_available() -> bool:
    """Does this platform support the ``fork`` start method?"""
    return "fork" in mp.get_all_start_methods()


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: ``None``→1, ``0``→all cores."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _worker_init(shared: Any, capture: bool) -> None:
    """Pool initializer (runs once per worker, post-fork).

    Resets tracing first: the worker inherited the parent's enabled
    flag *and sink object* via fork, and appending to a copy of the
    parent's JSONL file handle would interleave garbage.  Capture, when
    requested, happens per task via a private MemorySink instead.
    """
    global _WORKER_SHARED, _WORKER_CAPTURE, _IN_WORKER
    _IN_WORKER = True
    _WORKER_SHARED = shared
    _WORKER_CAPTURE = capture
    obs.configure(None)


def _invoke(payload: tuple) -> tuple:
    """Run one task in a worker, capturing its obs events if asked."""
    task, item = payload
    if _WORKER_CAPTURE:
        with obs.tracing(obs.MemorySink()) as sink:
            result = task(item)
        return result, sink.events, os.getpid()
    return task(item), None, 0


class WorkerPool:
    """A reusable worker-count + shard-size policy for sharded stages.

    Instances are cheap value objects: the actual ``multiprocessing``
    pool is created per ``map``/``imap`` call (fork is fast, and each
    stage shares different state), so a ``WorkerPool`` can be threaded
    through a whole pipeline — synthesis, detection, drift — and each
    stage forks against its own shared state.

    Parameters
    ----------
    workers:
        Worker processes to fan out to.  ``1`` (the default) and
        ``None`` mean serial; ``0`` means one per CPU core.
    min_shard_rows:
        Row-sharding floor: :meth:`shards_for` never cuts shards
        smaller than this, so tiny inputs run serial even at high
        worker counts (fan-out overhead would dominate).  Tests pass
        ``1`` to force the parallel path on small fixtures.
    """

    __slots__ = ("workers", "min_shard_rows")

    def __init__(
        self,
        workers: int | None = 1,
        min_shard_rows: int = DEFAULT_MIN_SHARD_ROWS,
    ):
        self.workers = resolve_workers(workers)
        if min_shard_rows < 1:
            raise ValueError("min_shard_rows must be >= 1")
        self.min_shard_rows = int(min_shard_rows)

    @property
    def parallel(self) -> bool:
        """Would ``map`` actually fork?  False forces the serial path."""
        return self.workers > 1 and fork_available() and not _IN_WORKER

    def shards_for(self, n_rows: int) -> list[tuple[int, int]]:
        """Contiguous row shard bounds for this pool's policy.

        At most ``workers`` shards, each at least ``min_shard_rows``
        rows (except when the input itself is smaller); one shard means
        the caller should run serial.
        """
        from .shard import shard_bounds

        if not self.parallel:
            return shard_bounds(n_rows, 1)
        return shard_bounds(
            n_rows, self.workers, min_rows=self.min_shard_rows
        )

    # ------------------------------------------------------------------

    def map(
        self,
        task: Callable[[Any], Any],
        items: Iterable[Any],
        shared: Any = None,
    ) -> list[Any]:
        """Run ``task`` over ``items``, in order, possibly in parallel.

        ``task`` must be a module-level function; it reads the large
        read-only ``shared`` state via :func:`get_shared`.  Results come
        back in item order regardless of completion order — the
        deterministic reduction every bit-identical stage relies on.
        """
        items = list(items)
        if not self.parallel or len(items) <= 1:
            return _serial_map(task, items, shared)
        capture = obs.enabled()
        chunksize = max(1, len(items) // (self.workers * 4))
        ctx = mp.get_context("fork")
        with ctx.Pool(
            self.workers,
            initializer=_worker_init,
            initargs=(shared, capture),
        ) as pool:
            outs = pool.map(
                _invoke,
                [(task, item) for item in items],
                chunksize=chunksize,
            )
        return [_merge_out(out) for out in outs]

    def imap(
        self,
        task: Callable[[Any], Any],
        items: Iterable[Any],
        shared: Any = None,
    ) -> Iterator[Any]:
        """Like :meth:`map`, but yields results as they complete **in
        item order**, so a budget-aware caller can stop consuming early
        (the pool is terminated when the generator is closed)."""
        items = list(items)
        if not self.parallel or len(items) <= 1:
            for result in _serial_imap(task, items, shared):
                yield result
            return
        capture = obs.enabled()
        ctx = mp.get_context("fork")
        with ctx.Pool(
            self.workers,
            initializer=_worker_init,
            initargs=(shared, capture),
        ) as pool:
            for out in pool.imap(
                _invoke, [(task, item) for item in items], chunksize=1
            ):
                yield _merge_out(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(workers={self.workers}, "
            f"min_shard_rows={self.min_shard_rows})"
        )


def _merge_out(out: tuple) -> Any:
    result, events, pid = out
    if events:
        obs.merge_events(events, worker=pid)
    return result


def _serial_map(
    task: Callable[[Any], Any], items: Sequence[Any], shared: Any
) -> list[Any]:
    """The inline fallback: same task functions, same shared-state
    protocol, current process (obs events flow to the live sink)."""
    global _WORKER_SHARED
    previous = _WORKER_SHARED
    _WORKER_SHARED = shared
    try:
        return [task(item) for item in items]
    finally:
        _WORKER_SHARED = previous


def _serial_imap(
    task: Callable[[Any], Any], items: Sequence[Any], shared: Any
) -> Iterator[Any]:
    global _WORKER_SHARED
    for item in items:
        previous = _WORKER_SHARED
        _WORKER_SHARED = shared
        try:
            yield task(item)
        finally:
            _WORKER_SHARED = previous


def as_pool(pool: "WorkerPool | int | None") -> "WorkerPool | None":
    """Coerce a ``workers`` knob (int or pool) to a :class:`WorkerPool`.

    ``None`` and ``1`` return ``None`` (pure serial, zero overhead);
    an int builds a pool with default shard policy; a pool passes
    through.  Every sharded entry point accepts this union.
    """
    if pool is None:
        return None
    if isinstance(pool, WorkerPool):
        return pool
    workers = resolve_workers(pool)
    if workers <= 1:
        return None
    return WorkerPool(workers)
