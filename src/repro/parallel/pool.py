"""The fork-based worker pool behind every sharded stage.

Design notes
------------

**Fork, not spawn.**  Pools are created with the ``fork`` start method,
so workers inherit the parent's memory copy-on-write: the relation code
arrays, compiled programs, CI testers, and drift references a stage
shares with its workers cost nothing to transfer.  Only the per-item
payloads (shard indices, DAG indices, pair indices — small integers)
and the per-item results cross the process boundary via pickle.

**Shared state by inheritance.**  A stage passes its large read-only
state via ``map(..., shared=...)``; the pool installs it in a module
global *before* forking, and worker tasks read it back with
:func:`get_shared`.  Task functions must be module-level (picklable by
reference); closures cannot cross the boundary.

**Serial fallback.**  ``workers=1``, a platform without ``fork``, a
single work item, or a nested call from inside a worker all run the
identical task functions inline in the parent.  Call sites therefore
never branch on "am I parallel" — they call :meth:`WorkerPool.map` and
get the same answers either way (the bit-identical guarantee).

**Obs merging.**  When tracing is enabled in the parent, each worker
wraps its task in a private :class:`~repro.obs.MemorySink`; the events
ride back with the result and are re-emitted into the parent's sink by
:func:`repro.obs.merge_events`, tagged with the worker's pid.  Without
this, a forked worker's counters would be silently dropped (the child's
increments land in a copy of the sink that dies with the process).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, Iterable, Iterator, Sequence

from .. import obs
from .supervise import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_TASK_TIMEOUT,
    run_supervised,
)

_WORKER_SHARED: Any = None
_WORKER_CAPTURE: bool = False
_IN_WORKER: bool = False

DEFAULT_MIN_SHARD_ROWS = 20_000
"""Below this many rows per shard, fan-out overhead (fork + pickle of
results) exceeds the kernel time saved; stages fall back to fewer
shards, possibly one (see ``docs/PERFORMANCE.md``)."""


def get_shared() -> Any:
    """The state installed by the currently running ``map``/``imap``.

    Inside a forked worker this is the parent's ``shared=`` object,
    inherited copy-on-write; on the serial fallback it is the same
    object by reference.  ``None`` outside any pool call.
    """
    return _WORKER_SHARED


def in_worker() -> bool:
    """Is this process a pool worker?  (Nested pools degrade to serial.)"""
    return _IN_WORKER


def fork_available() -> bool:
    """Does this platform support the ``fork`` start method?"""
    return "fork" in mp.get_all_start_methods()


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: ``None``→1, ``0``→all cores."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _worker_init(shared: Any, capture: bool) -> None:
    """Pool initializer (runs once per worker, post-fork).

    Resets tracing first: the worker inherited the parent's enabled
    flag *and sink object* via fork, and appending to a copy of the
    parent's JSONL file handle would interleave garbage.  Capture, when
    requested, happens per task via a private MemorySink instead.
    """
    global _WORKER_SHARED, _WORKER_CAPTURE, _IN_WORKER
    _IN_WORKER = True
    _WORKER_SHARED = shared
    _WORKER_CAPTURE = capture
    obs.configure(None)


class WorkerPool:
    """A reusable worker-count + shard-size policy for sharded stages.

    Instances are cheap value objects: the actual ``multiprocessing``
    pool is created per ``map``/``imap`` call (fork is fast, and each
    stage shares different state), so a ``WorkerPool`` can be threaded
    through a whole pipeline — synthesis, detection, drift — and each
    stage forks against its own shared state.

    Parameters
    ----------
    workers:
        Worker processes to fan out to.  ``1`` (the default) and
        ``None`` mean serial; ``0`` means one per CPU core.
    min_shard_rows:
        Row-sharding floor: :meth:`shards_for` never cuts shards
        smaller than this, so tiny inputs run serial even at high
        worker counts (fan-out overhead would dominate).  Tests pass
        ``1`` to force the parallel path on small fixtures.
    task_timeout:
        Per-task progress deadline in seconds (default a generous
        backstop, :data:`~repro.parallel.DEFAULT_TASK_TIMEOUT`): a
        worker holding work that reports nothing for this long is
        presumed wedged, killed, and its items retried.  ``None``
        disables hang detection (death detection stays on).
    max_retries:
        How many times one item is re-dispatched to workers after a
        fault before degrading to inline serial execution.

    After each ``map``/``imap`` call, :attr:`last_faults` holds the
    tuple of :class:`~repro.parallel.WorkerFault` incidents the
    supervisor absorbed (empty on a healthy run).
    """

    __slots__ = (
        "workers",
        "min_shard_rows",
        "task_timeout",
        "max_retries",
        "last_faults",
    )

    def __init__(
        self,
        workers: int | None = 1,
        min_shard_rows: int = DEFAULT_MIN_SHARD_ROWS,
        task_timeout: "float | None" = DEFAULT_TASK_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ):
        self.workers = resolve_workers(workers)
        if min_shard_rows < 1:
            raise ValueError("min_shard_rows must be >= 1")
        self.min_shard_rows = int(min_shard_rows)
        if task_timeout is not None and not task_timeout > 0:
            raise ValueError("task_timeout must be positive or None")
        self.task_timeout = task_timeout
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = int(max_retries)
        self.last_faults: tuple = ()

    @property
    def parallel(self) -> bool:
        """Would ``map`` actually fork?  False forces the serial path."""
        return self.workers > 1 and fork_available() and not _IN_WORKER

    def shards_for(self, n_rows: int) -> list[tuple[int, int]]:
        """Contiguous row shard bounds for this pool's policy.

        At most ``workers`` shards, each at least ``min_shard_rows``
        rows (except when the input itself is smaller); one shard means
        the caller should run serial.
        """
        from .shard import shard_bounds

        if not self.parallel:
            return shard_bounds(n_rows, 1)
        return shard_bounds(
            n_rows, self.workers, min_rows=self.min_shard_rows
        )

    # ------------------------------------------------------------------

    def map(
        self,
        task: Callable[[Any], Any],
        items: Iterable[Any],
        shared: Any = None,
    ) -> list[Any]:
        """Run ``task`` over ``items``, in order, possibly in parallel.

        ``task`` must be a module-level function; it reads the large
        read-only ``shared`` state via :func:`get_shared`.  Results come
        back in item order regardless of completion order — the
        deterministic reduction every bit-identical stage relies on.

        Collection is supervised (see :mod:`repro.parallel.supervise`):
        a worker that dies or wedges mid-item never hangs the call —
        its items are retried in a re-forked worker and, past the retry
        budget, run inline serially, so the returned list is always
        complete and bit-identical to a serial run of pure tasks.
        """
        items = list(items)
        if not self.parallel or len(items) <= 1:
            self.last_faults = ()
            return _serial_map(task, items, shared)
        chunk_size = max(1, len(items) // (self.workers * 4))
        outs: list = [None] * len(items)
        for index, payload in self._supervised(items, task, shared, chunk_size):
            outs[index] = payload
        return [_merge_out(out) for out in outs]

    def imap(
        self,
        task: Callable[[Any], Any],
        items: Iterable[Any],
        shared: Any = None,
    ) -> Iterator[Any]:
        """Like :meth:`map`, but yields results as they complete **in
        item order**, so a budget-aware caller can stop consuming early.

        The workers are torn down (shutdown sentinel, bounded join,
        then kill) whenever the generator ends — normal exhaustion, a
        consumer that raises mid-iteration, or one that abandons the
        generator early — so no orphaned fork processes outlive a
        failed stage.
        """
        items = list(items)
        if not self.parallel or len(items) <= 1:
            self.last_faults = ()
            for result in _serial_imap(task, items, shared):
                yield result
            return
        buffered: dict[int, tuple] = {}
        next_index = 0
        for index, payload in self._supervised(items, task, shared, 1):
            buffered[index] = payload
            while next_index in buffered:
                yield _merge_out(buffered.pop(next_index))
                next_index += 1

    def _supervised(
        self, items: list, task: Callable, shared: Any, chunk_size: int
    ) -> Iterator[tuple]:
        """Run the supervised engine, guaranteeing teardown and
        publishing :attr:`last_faults` however the consumer leaves."""
        faults: list = []
        engine = run_supervised(
            task,
            items,
            shared,
            workers=min(self.workers, len(items)),
            capture=obs.enabled(),
            chunk_size=chunk_size,
            task_timeout=self.task_timeout,
            max_retries=self.max_retries,
            max_reforks=self.workers,
            faults=faults,
        )
        try:
            yield from engine
        finally:
            engine.close()
            self.last_faults = tuple(faults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(workers={self.workers}, "
            f"min_shard_rows={self.min_shard_rows}, "
            f"task_timeout={self.task_timeout}, "
            f"max_retries={self.max_retries})"
        )


def _merge_out(out: tuple) -> Any:
    result, events, pid = out
    if events:
        obs.merge_events(events, worker=pid)
    return result


def _serial_map(
    task: Callable[[Any], Any], items: Sequence[Any], shared: Any
) -> list[Any]:
    """The inline fallback: same task functions, same shared-state
    protocol, current process (obs events flow to the live sink)."""
    global _WORKER_SHARED
    previous = _WORKER_SHARED
    _WORKER_SHARED = shared
    try:
        return [task(item) for item in items]
    finally:
        _WORKER_SHARED = previous


def _serial_imap(
    task: Callable[[Any], Any], items: Sequence[Any], shared: Any
) -> Iterator[Any]:
    global _WORKER_SHARED
    for item in items:
        previous = _WORKER_SHARED
        _WORKER_SHARED = shared
        try:
            yield task(item)
        finally:
            _WORKER_SHARED = previous


def as_pool(pool: "WorkerPool | int | None") -> "WorkerPool | None":
    """Coerce a ``workers`` knob (int or pool) to a :class:`WorkerPool`.

    ``None`` and ``1`` return ``None`` (pure serial, zero overhead);
    an int builds a pool with default shard policy; a pool passes
    through.  Every sharded entry point accepts this union.
    """
    if pool is None:
        return None
    if isinstance(pool, WorkerPool):
        return pool
    workers = resolve_workers(pool)
    if workers <= 1:
        return None
    return WorkerPool(workers)
