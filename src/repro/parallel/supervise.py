"""Supervised fork execution: the fault-tolerant engine behind the pool.

:class:`~repro.parallel.WorkerPool` used to hand its items to a blind
``multiprocessing.Pool.map`` — a worker that was OOM-killed or wedged
left the call blocked forever, taking sharded detection, synthesis, and
the drift scanner down with it.  This module replaces that collection
loop with a supervised one:

* **Dead-worker detection.**  Each worker gets a private duplex pipe;
  the parent waits on every result channel *and* every process sentinel
  at once (:func:`multiprocessing.connection.wait`).  A SIGKILLed
  worker trips its sentinel and EOFs its pipe; both paths converge on
  the same recovery.
* **Per-task deadlines.**  A worker that holds dispatched items but
  makes no progress for ``task_timeout`` seconds is presumed wedged,
  killed, and treated as dead (fault kind ``task_deadline``).
* **Bounded retry.**  Items in flight on a dead worker are re-dispatched
  (at most ``max_retries`` times per item) to a re-forked replacement
  worker, while a refork budget remains.
* **Serial fallback.**  An item that exhausts its retries — or has no
  worker left to run on — executes inline in the parent, so the caller
  still gets the bit-identical result the serial path would produce.
* **Typed incidents.**  Every fault is surfaced as a
  :class:`WorkerFault` (kept on ``pool.last_faults``), an obs counter
  (``parallel.worker_faults``) and a ``worker_fault`` obs event —
  never a silent stall.

Tasks must be pure functions of ``(item, shared)``: a retried or
inlined item recomputes the same answer, which is what makes recovery
invisible to callers.

The chaos hook (:func:`worker_chaos`) is test-only: it plants a fault
description in a module global that forked workers inherit, letting the
chaos harness SIGKILL a worker mid-item, wedge it past the deadline, or
poison its result — exercising the real recovery paths end to end.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Iterator, Sequence

from .. import obs

WORKER_FAULT_KINDS = (
    "worker_died",
    "task_deadline",
    "result_unpicklable",
)
"""Every ``WorkerFault.kind`` the supervisor can emit."""

DEFAULT_TASK_TIMEOUT = 600.0
"""Backstop per-task progress deadline (seconds).  No healthy shard job
comes within two orders of magnitude of this; it exists so a wedged
worker can never hang a caller forever.  ``None`` disables deadlines."""

DEFAULT_MAX_RETRIES = 1
"""Times one item is re-dispatched to a worker before falling back to
inline serial execution in the parent."""

_PREFETCH_CHUNKS = 2
"""Chunks kept outstanding per worker (pipelines dispatch latency)."""

_POLL_SECONDS = 0.25
"""Upper bound on one supervisor wait (keeps deadline checks timely)."""

_JOIN_SECONDS = 0.5
"""How long to wait for a worker to exit before killing it."""

_CHAOS_FAULTS = ("kill", "hang", "unpicklable")


@dataclass(frozen=True)
class WorkerFault:
    """One process-level incident the supervisor absorbed.

    Attributes
    ----------
    kind:
        One of :data:`WORKER_FAULT_KINDS`.
    items:
        The item indices that were in flight on the affected worker.
    worker:
        The worker's pid (0 when unknown).
    attempt:
        The highest dispatch attempt among the affected items at the
        time of the fault (0 = first try).
    detail:
        Free-text diagnosis (exit code, deadline, pickling error).
    """

    kind: str
    items: tuple
    worker: int
    attempt: int
    detail: str = ""


class WorkerTaskError(RuntimeError):
    """A worker task raised an exception that could not itself be
    pickled back to the parent; the repr rides in the message."""


@dataclass(frozen=True)
class WorkerChaos:
    """A planted process-level fault (test-only; see :func:`worker_chaos`)."""

    fault: str
    item: int = 0
    times: int = 1
    hang_seconds: float = 30.0

    def matches(self, index: int, attempt: int) -> bool:
        """Should the fault fire for this (item, attempt) pair?"""
        return index == self.item and attempt < self.times


_CHAOS: "WorkerChaos | None" = None


@contextmanager
def worker_chaos(
    fault: str,
    item: int = 0,
    times: int = 1,
    hang_seconds: float = 30.0,
):
    """Plant a process-level fault for pool calls inside the block.

    ``fault`` is one of ``kill`` (the worker SIGKILLs itself when it
    picks up ``item``), ``hang`` (it sleeps ``hang_seconds`` first,
    tripping the pool's ``task_timeout``), or ``unpicklable`` (its
    result for ``item`` cannot be pickled back).  The fault fires on
    the first ``times`` dispatch attempts of ``item``, so retries (or
    the inline fallback, which injection never touches) recover.

    Workers inherit the planted fault via fork; the injection check
    lives only on the worker side, so parent-side inline execution is
    never sabotaged — exactly the recovery path under test.
    """
    global _CHAOS
    if fault not in _CHAOS_FAULTS:
        raise ValueError(
            f"unknown chaos fault {fault!r} (one of {_CHAOS_FAULTS})"
        )
    previous = _CHAOS
    _CHAOS = WorkerChaos(
        fault=fault, item=item, times=times, hang_seconds=hang_seconds
    )
    try:
        yield _CHAOS
    finally:
        _CHAOS = previous


class _Unpicklable:
    """A result that refuses to cross the process boundary."""

    def __reduce__(self):
        raise TypeError("chaos: poisoned result is not picklable")


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------


def _worker_main(parent_conn, conn, task, items, shared, capture) -> None:
    """Worker loop: recv ``(indices, attempt)`` chunks, send per-item
    ``("ok", index, payload)`` messages; ``None`` means shut down."""
    parent_conn.close()  # only the parent reads our results
    from . import pool

    pool._worker_init(shared, capture)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        indices, attempt = message
        for index in indices:
            chaos = _CHAOS
            if chaos is not None and chaos.matches(index, attempt):
                if chaos.fault == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                elif chaos.fault == "hang":
                    time.sleep(chaos.hang_seconds)
            try:
                payload = _run_item(task, items[index], capture)
            except Exception as error:
                if not _send_raise(conn, index, error):
                    return
                continue
            if (
                chaos is not None
                and chaos.fault == "unpicklable"
                and chaos.matches(index, attempt)
            ):
                payload = (_Unpicklable(), None, os.getpid())
            try:
                conn.send(("ok", index, payload))
            except (BrokenPipeError, OSError):
                return  # parent gone; nothing left to report to
            except Exception as error:
                # The result itself would not pickle (the pipe is
                # intact: pickling happens before any byte is written).
                try:
                    conn.send(
                        (
                            "fault",
                            index,
                            f"{type(error).__name__}: {error}",
                        )
                    )
                except (BrokenPipeError, OSError):
                    return


def _run_item(task, item, capture: bool) -> tuple:
    """Run one task, capturing its obs events when the parent traces."""
    if capture:
        with obs.tracing(obs.MemorySink()) as sink:
            result = task(item)
        return result, sink.events, os.getpid()
    return task(item), None, 0


def _send_raise(conn, index, error) -> bool:
    """Report a task exception; False when the parent is unreachable."""
    try:
        conn.send(("raise", index, error))
    except (BrokenPipeError, OSError):
        return False
    except Exception:
        # The exception object itself would not pickle; degrade to its
        # repr (the parent raises WorkerTaskError with it).
        try:
            conn.send(
                ("raise_text", index, f"{type(error).__name__}: {error!r}")
            )
        except (BrokenPipeError, OSError):
            return False
    return True


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------


class _Handle:
    """Parent-side bookkeeping for one live worker."""

    __slots__ = ("proc", "conn", "inflight", "last_progress", "alive")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.inflight: dict[int, int] = {}  # item index -> attempt
        self.last_progress = time.monotonic()
        self.alive = True


def _run_inline(task, item, shared) -> Any:
    """The parent-side fallback: identical task, serial protocol."""
    from . import pool

    previous = pool._WORKER_SHARED
    pool._WORKER_SHARED = shared
    try:
        return task(item)
    finally:
        pool._WORKER_SHARED = previous


def run_supervised(
    task: Callable[[Any], Any],
    items: Sequence[Any],
    shared: Any,
    *,
    workers: int,
    capture: bool,
    chunk_size: int,
    task_timeout: "float | None",
    max_retries: int,
    max_reforks: int,
    faults: list,
) -> Iterator[tuple]:
    """Run ``task`` over ``items`` under supervision; yield
    ``(index, payload)`` pairs in completion order.

    ``payload`` is the same ``(result, events, pid)`` triple the old
    pool protocol used; inline-fallback items carry ``(result, None,
    0)`` (their obs events flowed straight to the live sink).  Worker
    incidents are appended to ``faults`` as :class:`WorkerFault`.

    Closing the generator (or an exception from a worker task, which
    re-raises here) tears the workers down in a ``finally``: shutdown
    sentinels, bounded join, then SIGKILL for stragglers — no orphaned
    fork processes, however the consumer leaves.
    """
    ctx = mp.get_context("fork")
    n_items = len(items)
    pending = set(range(n_items))
    dispatch: deque = deque(
        (tuple(range(start, min(start + chunk_size, n_items))), 0)
        for start in range(0, n_items, chunk_size)
    )
    inline: deque = deque()
    ready: deque = deque()
    handles: list[_Handle] = []
    forks_left = workers + max_reforks

    def record_fault(kind, indices, pid, attempt, detail):
        fault = WorkerFault(
            kind=kind,
            items=tuple(indices),
            worker=pid or 0,
            attempt=attempt,
            detail=detail,
        )
        faults.append(fault)
        if obs.enabled():
            obs.count("parallel.worker_faults")
            # Field named "fault" (not "kind"): obs.record's first
            # positional parameter already claims that name.
            obs.record(
                "worker_fault",
                fault=kind,
                items=list(fault.items),
                pid=fault.worker,
                attempt=attempt,
                detail=detail,
            )

    def requeue(index, attempt):
        if attempt + 1 > max_retries:
            inline.append(index)
        else:
            dispatch.appendleft(((index,), attempt + 1))

    def deliver(handle, message):
        tag, index, payload = message
        handle.last_progress = time.monotonic()
        if tag == "raise":
            raise payload
        if tag == "raise_text":
            raise WorkerTaskError(payload)
        attempt = handle.inflight.pop(index, None)
        if attempt is None or index not in pending:
            return  # stale duplicate after a retry; drop it
        if tag == "ok":
            pending.discard(index)
            ready.append((index, payload))
        else:  # "fault": the result would not pickle
            record_fault(
                "result_unpicklable",
                (index,),
                handle.proc.pid,
                attempt,
                payload,
            )
            requeue(index, attempt)

    def on_death(handle, kind, detail):
        handle.alive = False
        # Salvage results already buffered in the pipe: the worker may
        # have finished (and reported) items before dying.
        try:
            while handle.conn.poll(0):
                deliver(handle, handle.conn.recv())
        except (EOFError, OSError):
            pass
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.proc.join(timeout=_JOIN_SECONDS)
        affected = sorted(i for i in handle.inflight if i in pending)
        if affected:
            record_fault(
                kind,
                affected,
                handle.proc.pid,
                max(handle.inflight[i] for i in affected),
                detail,
            )
            for index in affected:
                requeue(index, handle.inflight[index])
        handle.inflight.clear()
        handles.remove(handle)

    def feed(handle):
        """Top up one worker's outstanding work; False if its pipe died."""
        budget = _PREFETCH_CHUNKS * max(1, chunk_size)
        while dispatch and len(handle.inflight) < budget:
            indices, attempt = dispatch[0]
            try:
                handle.conn.send((indices, attempt))
            except (BrokenPipeError, OSError):
                return False
            dispatch.popleft()
            for index in indices:
                handle.inflight[index] = attempt
        return True

    def spawn():
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(parent_conn, child_conn, task, items, shared, capture),
            daemon=True,
        )
        proc.start()
        # Close the child end in the parent *now*: a later-forked
        # worker must not inherit it, or a dead worker's pipe would
        # never EOF and death detection would silently degrade.
        child_conn.close()
        handles.append(_Handle(proc, parent_conn))

    try:
        while pending:
            while ready:
                yield ready.popleft()
            if inline:
                index = inline.popleft()
                if index in pending:
                    pending.discard(index)
                    yield index, (_run_inline(task, items[index], shared), None, 0)
                continue
            if not pending:
                break
            while dispatch and len(handles) < workers and forks_left > 0:
                spawn()
                forks_left -= 1
            if not handles:
                # No workers and no refork budget: degrade every
                # remaining item to inline serial execution.
                while dispatch:
                    indices, _attempt = dispatch.popleft()
                    inline.extend(i for i in indices if i in pending)
                if not inline:  # pragma: no cover - defensive
                    inline.extend(sorted(pending))
                continue
            for handle in list(handles):
                if dispatch and handle.alive and not feed(handle):
                    on_death(
                        handle,
                        "worker_died",
                        f"dispatch pipe closed "
                        f"(exitcode {handle.proc.exitcode})",
                    )
            timeout = _POLL_SECONDS
            if task_timeout is not None:
                now = time.monotonic()
                soonest = min(
                    (
                        h.last_progress + task_timeout
                        for h in handles
                        if h.inflight
                    ),
                    default=None,
                )
                if soonest is not None:
                    timeout = min(timeout, max(0.01, soonest - now))
            waitables = {}
            for handle in handles:
                waitables[handle.conn] = (handle, "conn")
                waitables[handle.proc.sentinel] = (handle, "sentinel")
            dead = []
            for obj in mp_connection.wait(list(waitables), timeout):
                handle, what = waitables[obj]
                if not handle.alive:
                    continue
                if what == "sentinel":
                    if handle not in dead:
                        dead.append(handle)
                    continue
                try:
                    while handle.conn.poll(0):
                        deliver(handle, handle.conn.recv())
                except (EOFError, OSError):
                    if handle not in dead:
                        dead.append(handle)
            for handle in dead:
                if handle.alive:
                    on_death(
                        handle,
                        "worker_died",
                        f"exitcode {handle.proc.exitcode}",
                    )
            if task_timeout is not None:
                now = time.monotonic()
                for handle in list(handles):
                    if (
                        handle.alive
                        and handle.inflight
                        and now - handle.last_progress > task_timeout
                    ):
                        handle.proc.kill()
                        handle.proc.join(timeout=_JOIN_SECONDS)
                        on_death(
                            handle,
                            "task_deadline",
                            f"no progress in {task_timeout:.3g}s",
                        )
        while ready:
            yield ready.popleft()
    finally:
        for handle in handles:
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + _JOIN_SECONDS
        for handle in handles:
            handle.proc.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
        for handle in handles:
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join()
            try:
                handle.conn.close()
            except OSError:
                pass
