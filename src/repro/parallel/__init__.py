"""Sharded multicore execution for synthesis and detection.

The hot paths of the reproduction — compiled detection, PC's level-wise
CI tests, Algorithm 2's per-DAG sketch fill, and drift-window statistics
— are embarrassingly parallel over row shards or independent work items.
This package provides the one primitive they all share:
:class:`WorkerPool`, a fork-based ``multiprocessing`` pool with

* **shared-memory numpy partitions**: workers are forked, so relation
  code arrays (and any other shared state) are inherited copy-on-write
  — nothing large is ever pickled;
* **a serial fallback**: ``workers=1``, a platform without ``fork``, or
  a nested pool all run the same task functions inline, so every call
  site has exactly one code path;
* **obs merging**: when tracing is enabled, each worker's counters,
  histograms, and spans are captured per task and re-emitted into the
  parent's sink (tagged with the worker pid), so ``repro obs report``
  stays truthful under parallelism.

Results are **bit-identical to the serial path at any worker count**:
every fan-out in the repo reduces in deterministic (shard/item) order
and the per-item work is pure, so parallelism changes wall-clock only.
See ``docs/PERFORMANCE.md`` for the performance model.

Execution is **supervised** (:mod:`repro.parallel.supervise`): a worker
that is SIGKILLed, crashes, wedges past its deadline, or produces an
unpicklable result never hangs the caller.  Affected items are retried
in re-forked workers and, past the retry budget, run inline serially —
the caller still gets complete, bit-identical results, and every
incident is surfaced as a typed :class:`WorkerFault` obs event plus the
``parallel.worker_faults`` counter.  :func:`worker_chaos` is the
test-only hook the chaos harness uses to plant such faults.
"""

from .pool import (
    WorkerPool,
    as_pool,
    fork_available,
    get_shared,
    in_worker,
    resolve_workers,
)
from .shard import shard_bounds, shard_relation
from .supervise import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_TASK_TIMEOUT,
    WORKER_FAULT_KINDS,
    WorkerFault,
    WorkerTaskError,
    worker_chaos,
)

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_TASK_TIMEOUT",
    "WORKER_FAULT_KINDS",
    "WorkerFault",
    "WorkerPool",
    "WorkerTaskError",
    "as_pool",
    "fork_available",
    "get_shared",
    "in_worker",
    "resolve_workers",
    "shard_bounds",
    "shard_relation",
    "worker_chaos",
]
