"""Horizontal row sharding over :class:`~repro.relation.Relation`.

Shards are **contiguous row ranges**, realized as numpy basic slices of
the relation's column arrays — views, not copies.  Under a forked
worker pool the views alias the parent's pages copy-on-write, which is
what "shared-memory numpy partitions" means here: a 1M-row relation
fans out to 4 workers without duplicating a single code array.

Contiguity is also what makes the reductions order-deterministic:
concatenating per-shard results in shard order reconstructs exactly
the serial result (see :meth:`CompiledProgram.detect_sharded
<repro.dsl.compiled.CompiledProgram.detect_sharded>`).
"""

from __future__ import annotations

from ..relation import Relation


def shard_bounds(
    n_rows: int, n_shards: int, min_rows: int = 1
) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into at most ``n_shards`` contiguous ranges.

    Shards are balanced to within one row and never smaller than
    ``min_rows`` (the shard count shrinks instead, possibly to one);
    ``n_rows == 0`` yields a single empty shard so callers need no
    special case.

    >>> shard_bounds(10, 4)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    >>> shard_bounds(10, 4, min_rows=5)
    [(0, 5), (5, 10)]
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if min_rows < 1:
        raise ValueError("min_rows must be >= 1")
    if n_rows <= 0:
        return [(0, 0)]
    shards = min(n_shards, max(1, n_rows // min_rows))
    base, extra = divmod(n_rows, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def shard_relation(
    relation: Relation, bounds: list[tuple[int, int]]
) -> list[Relation]:
    """Materialize the shard views for precomputed ``bounds``.

    Each shard is a zero-copy :meth:`~repro.relation.Relation.slice_rows`
    view sharing the parent's column arrays.
    """
    return [relation.slice_rows(start, stop) for start, stop in bounds]
