"""Train/evaluate harness for the ML substrate.

Wraps the fit → holdout-accuracy → mis-prediction-analysis flow the
evaluation sections repeat (Tables 1 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relation import Relation
from .ensemble import AutoModel
from .model import Classifier, _remap_column


@dataclass
class TrainedModel:
    """A fitted classifier with its holdout evaluation."""

    model: Classifier
    target: str
    train_accuracy: float
    test_accuracy: float


def train_model(
    train: Relation,
    test: Relation,
    target: str,
    features: list[str] | None = None,
    model: Classifier | None = None,
) -> TrainedModel:
    """Fit a classifier (AutoModel by default) and score both splits."""
    model = model or AutoModel()
    model.fit(train, target, features)
    return TrainedModel(
        model=model,
        target=target,
        train_accuracy=model.accuracy(train),
        test_accuracy=model.accuracy(test),
    )


def misprediction_mask(
    model: Classifier, relation: Relation
) -> np.ndarray:
    """Rows where the model's prediction differs from the stored label."""
    assert model.target is not None and model._target_codec is not None
    predicted = model.predict(relation)
    actual = _remap_column(relation, model.target, model._target_codec)
    return predicted != actual


def mispredictions_caused_by_errors(
    model: Classifier,
    clean: Relation,
    corrupted: Relation,
) -> np.ndarray:
    """Rows mis-predicted on corrupted inputs but not on clean inputs.

    This is the paper's notion of *error-induced* mis-prediction (§5):
    the prediction flips away from the clean-data prediction because of
    an injected error in the features.
    """
    clean_predictions = model.predict(clean)
    corrupted_predictions = model.predict(corrupted)
    return clean_predictions != corrupted_predictions
