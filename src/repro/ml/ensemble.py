"""AutoML-style ensemble — the autogluon stand-in (paper §7).

The paper trains "various ML models (NN, tree-based models, etc.)" via
autogluon and ensembles them.  :class:`AutoModel` reproduces the shape
of that pipeline with the substrates in this package: it trains every
member model, scores each on an internal validation split, and predicts
by validation-accuracy-weighted voting.
"""

from __future__ import annotations

import numpy as np

from ..relation import Relation
from .decision_tree import DecisionTree
from .logistic import LogisticRegression
from .majority import MajorityClass
from .model import Classifier, ModelError
from .naive_bayes import NaiveBayes


class AutoModel(Classifier):
    """Train several classifiers, weight them by validation accuracy."""

    def __init__(
        self,
        members: list[Classifier] | None = None,
        validation_fraction: float = 0.2,
        seed: int = 0,
    ):
        super().__init__()
        self.validation_fraction = validation_fraction
        self.seed = seed
        self._member_factory = members
        self.members: list[Classifier] = []
        self.weights: list[float] = []

    def _default_members(self) -> list[Classifier]:
        return [
            NaiveBayes(),
            DecisionTree(max_depth=8),
            LogisticRegression(n_iterations=120),
            MajorityClass(),
        ]

    # AutoModel orchestrates other classifiers, so it overrides fit()
    # instead of the code-level hooks.
    def fit(
        self,
        relation: Relation,
        target: str,
        features: list[str] | None = None,
    ) -> "AutoModel":
        """Fit every member and weight it by validation accuracy."""
        rng = np.random.default_rng(self.seed)
        if relation.n_rows < 10:
            raise ModelError("need at least 10 rows to train AutoModel")
        train, validation = relation.split(
            1.0 - self.validation_fraction, rng
        )
        self.members = (
            list(self._member_factory)
            if self._member_factory is not None
            else self._default_members()
        )
        self.weights = []
        for member in self.members:
            member.fit(train, target, features)
            accuracy = member.accuracy(validation)
            self.weights.append(0.0 if np.isnan(accuracy) else accuracy)
        if not any(self.weights):
            self.weights = [1.0] * len(self.members)
        # Adopt the bookkeeping of the best member for codec handling.
        best = int(np.argmax(self.weights))
        reference = self.members[best]
        self.target = reference.target
        self.features = reference.features
        self._feature_codecs = reference._feature_codecs
        self._target_codec = reference._target_codec
        return self

    def predict(self, relation: Relation) -> np.ndarray:
        """Weighted-vote predictions over the relation's rows."""
        if not self.members:
            raise ModelError("AutoModel is not fitted")
        votes = np.zeros((relation.n_rows, self.n_classes))
        for member, weight in zip(self.members, self.weights):
            if weight <= 0:
                continue
            predictions = member.predict(relation)
            votes[np.arange(relation.n_rows), predictions] += weight
        return np.argmax(votes, axis=1).astype(np.int32)

    def leaderboard(self) -> list[tuple[str, float]]:
        """(member name, validation accuracy) sorted best-first."""
        rows = [
            (type(member).__name__, weight)
            for member, weight in zip(self.members, self.weights)
        ]
        return sorted(rows, key=lambda row: -row[1])

    def _fit_codes(self, matrix, labels):  # pragma: no cover - unused
        raise NotImplementedError

    def _predict_codes(self, matrix):  # pragma: no cover - unused
        raise NotImplementedError
