"""Categorical naive Bayes with Laplace smoothing."""

from __future__ import annotations

import numpy as np

from .model import UNSEEN, Classifier, ModelError


class NaiveBayes(Classifier):
    """P(y | x) ∝ P(y) Π_j P(x_j | y) over integer-coded features.

    Unseen feature values contribute a uniform likelihood (they carry
    no evidence), so garbage injections degrade gracefully.
    """

    def __init__(self, smoothing: float = 1.0):
        super().__init__()
        if smoothing <= 0:
            raise ModelError("smoothing must be positive")
        self.smoothing = smoothing
        self._log_prior: np.ndarray | None = None
        self._log_likelihood: list[np.ndarray] = []

    def _fit_codes(self, matrix: np.ndarray, labels: np.ndarray) -> None:
        n_classes = self.n_classes
        class_counts = np.bincount(labels, minlength=n_classes).astype(
            np.float64
        )
        self._log_prior = np.log(
            (class_counts + self.smoothing)
            / (class_counts.sum() + self.smoothing * n_classes)
        )
        self._log_likelihood = []
        for j, name in enumerate(self.features):
            cardinality = self._feature_codecs[name].cardinality
            table = np.full((n_classes, cardinality), self.smoothing)
            column = matrix[:, j]
            valid = column >= 0
            np.add.at(table, (labels[valid], column[valid]), 1.0)
            table /= table.sum(axis=1, keepdims=True)
            self._log_likelihood.append(np.log(table))

    def _predict_codes(self, matrix: np.ndarray) -> np.ndarray:
        assert self._log_prior is not None
        n_rows = matrix.shape[0]
        scores = np.tile(self._log_prior, (n_rows, 1))
        for j, table in enumerate(self._log_likelihood):
            column = matrix[:, j]
            valid = column != UNSEEN
            scores[valid] += table[:, column[valid]].T
        return np.argmax(scores, axis=1).astype(np.int32)

    def predict_proba(self, relation) -> np.ndarray:
        """Posterior class probabilities per row."""
        matrix = self._remap(relation)
        assert self._log_prior is not None
        scores = np.tile(self._log_prior, (matrix.shape[0], 1))
        for j, table in enumerate(self._log_likelihood):
            column = matrix[:, j]
            valid = column != UNSEEN
            scores[valid] += table[:, column[valid]].T
        scores -= scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return exp / exp.sum(axis=1, keepdims=True)
