"""Majority-class baseline classifier."""

from __future__ import annotations

import numpy as np

from .model import Classifier


class MajorityClass(Classifier):
    """Always predict the most frequent training label.

    The sanity floor every real model must beat; also the fallback
    member of the AutoML ensemble when data is degenerate.
    """

    def __init__(self) -> None:
        super().__init__()
        self._prediction = 0

    def _fit_codes(self, matrix: np.ndarray, labels: np.ndarray) -> None:
        if labels.size:
            counts = np.bincount(labels, minlength=self.n_classes)
            self._prediction = int(np.argmax(counts))

    def _predict_codes(self, matrix: np.ndarray) -> np.ndarray:
        return np.full(matrix.shape[0], self._prediction, dtype=np.int32)
