"""Multinomial logistic regression over one-hot encoded categoricals.

Trained with full-batch gradient descent + L2 regularization; small and
deterministic, which keeps the evaluation reproducible on one core.
"""

from __future__ import annotations

import numpy as np

from .model import UNSEEN, Classifier, ModelError


class LogisticRegression(Classifier):
    """Softmax regression on one-hot features (unseen codes → zero row)."""

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 0.5,
        n_iterations: int = 200,
    ):
        super().__init__()
        if n_iterations < 1:
            raise ModelError("n_iterations must be >= 1")
        self.l2 = l2
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self._weights: np.ndarray | None = None
        self._offsets: list[int] = []
        self._width = 0

    def _one_hot(self, matrix: np.ndarray) -> np.ndarray:
        n_rows = matrix.shape[0]
        out = np.zeros((n_rows, self._width + 1))
        out[:, -1] = 1.0  # bias
        for j, offset in enumerate(self._offsets):
            column = matrix[:, j]
            valid = column != UNSEEN
            out[np.nonzero(valid)[0], offset + column[valid]] = 1.0
        return out

    def _fit_codes(self, matrix: np.ndarray, labels: np.ndarray) -> None:
        self._offsets = []
        offset = 0
        for name in self.features:
            self._offsets.append(offset)
            offset += self._feature_codecs[name].cardinality
        self._width = offset

        design = self._one_hot(matrix)
        n_rows, n_cols = design.shape
        n_classes = self.n_classes
        targets = np.zeros((n_rows, n_classes))
        targets[np.arange(n_rows), labels] = 1.0

        weights = np.zeros((n_cols, n_classes))
        for _ in range(self.n_iterations):
            logits = design @ weights
            logits -= logits.max(axis=1, keepdims=True)
            exp = np.exp(logits)
            probabilities = exp / exp.sum(axis=1, keepdims=True)
            gradient = design.T @ (probabilities - targets) / n_rows
            gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
        self._weights = weights

    def _predict_codes(self, matrix: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise ModelError("model is not fitted")
        design = self._one_hot(matrix)
        logits = design @ self._weights
        return np.argmax(logits, axis=1).astype(np.int32)
