"""ML substrate: classifiers, AutoML ensemble, training harness."""

from .decision_tree import DecisionTree
from .ensemble import AutoModel
from .logistic import LogisticRegression
from .majority import MajorityClass
from .model import UNSEEN, Classifier, ModelError
from .naive_bayes import NaiveBayes
from .train import (
    TrainedModel,
    misprediction_mask,
    mispredictions_caused_by_errors,
    train_model,
)

__all__ = [
    "UNSEEN",
    "Classifier",
    "ModelError",
    "NaiveBayes",
    "DecisionTree",
    "LogisticRegression",
    "MajorityClass",
    "AutoModel",
    "TrainedModel",
    "train_model",
    "misprediction_mask",
    "mispredictions_caused_by_errors",
]
