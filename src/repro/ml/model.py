"""Base classifier API over relations.

The paper delegates model training to autogluon (§7); this package is
the stand-in substrate: categorical classifiers with a common
fit/predict interface operating directly on :class:`Relation` columns.

Feature handling is centralized here: models memorize the training
codecs, and at prediction time test columns are *remapped* onto the
training code space (values unseen at training time map to the
``UNSEEN`` code).  This matters in GUARDRAIL's evaluation because
injected garbage values are by construction unseen.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..relation import MISSING, Codec, Relation

UNSEEN: int = -1
"""Code assigned at prediction time to values unseen during training."""


class ModelError(ValueError):
    """Raised on invalid training or prediction inputs."""


class Classifier(ABC):
    """A categorical classifier with sklearn-flavoured fit/predict."""

    def __init__(self) -> None:
        self.target: str | None = None
        self.features: list[str] = []
        self._feature_codecs: dict[str, Codec] = {}
        self._target_codec: Codec | None = None

    # ------------------------------------------------------------------

    def fit(
        self,
        relation: Relation,
        target: str,
        features: list[str] | None = None,
    ) -> "Classifier":
        """Train on the categorical columns of ``relation``."""
        if target not in relation.schema:
            raise ModelError(f"unknown target attribute {target!r}")
        if features is None:
            features = [
                name
                for name in relation.schema.categorical_names()
                if name != target
            ]
        if not features:
            raise ModelError("need at least one feature")
        if target in features:
            raise ModelError("target cannot be a feature")
        self.target = target
        self.features = list(features)
        self._feature_codecs = {
            name: relation.codec(name) for name in self.features
        }
        self._target_codec = relation.codec(target)
        matrix = relation.codes_matrix(self.features)
        labels = relation.codes(target)
        keep = labels != MISSING
        self._fit_codes(matrix[keep], labels[keep])
        return self

    def predict(self, relation: Relation) -> np.ndarray:
        """Predicted target codes (train codec) for every row."""
        if self.target is None:
            raise ModelError("model is not fitted")
        matrix = self._remap(relation)
        return self._predict_codes(matrix)

    def predict_values(self, relation: Relation) -> list[object]:
        """Predictions decoded through the training target codec."""
        assert self._target_codec is not None
        return [
            self._target_codec.decode_one(int(code))
            for code in self.predict(relation)
        ]

    def accuracy(self, relation: Relation) -> float:
        """Fraction of rows whose target matches the prediction."""
        assert self.target is not None and self._target_codec is not None
        predicted = self.predict(relation)
        actual = _remap_column(
            relation, self.target, self._target_codec
        )
        valid = actual != UNSEEN
        if not valid.any():
            return float("nan")
        return float(np.mean(predicted[valid] == actual[valid]))

    # ------------------------------------------------------------------

    def _remap(self, relation: Relation) -> np.ndarray:
        columns = [
            _remap_column(relation, name, self._feature_codecs[name])
            for name in self.features
        ]
        return np.column_stack(columns)

    @property
    def n_classes(self) -> int:
        """Number of target classes."""
        assert self._target_codec is not None
        return self._target_codec.cardinality

    def decode_label(self, code: int) -> object:
        """Map a class code back to the original label value."""
        assert self._target_codec is not None
        return self._target_codec.decode_one(int(code))

    # ------------------------------------------------------------------

    @abstractmethod
    def _fit_codes(self, matrix: np.ndarray, labels: np.ndarray) -> None:
        """Train from a feature code matrix and target codes."""

    @abstractmethod
    def _predict_codes(self, matrix: np.ndarray) -> np.ndarray:
        """Predict target codes from a (remapped) feature code matrix."""


def _remap_column(
    relation: Relation, name: str, train_codec: Codec
) -> np.ndarray:
    """Translate a column's codes into another codec's code space."""
    codec = relation.codec(name)
    if codec == train_codec:
        return relation.codes(name)
    translation = np.array(
        [
            train_codec.encode_one(value) if value in train_codec else UNSEEN
            for value in codec.values
        ],
        dtype=np.int32,
    )
    codes = relation.codes(name)
    out = np.full(codes.shape, UNSEEN, dtype=np.int32)
    valid = codes != MISSING
    out[valid] = translation[codes[valid]]
    return out
