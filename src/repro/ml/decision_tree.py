"""CART-style decision tree for categorical features.

Splits are equality tests ``feature == code`` chosen by Gini impurity
reduction; unseen/missing codes at prediction time follow the majority
(higher-population) child.  Depth, minimum split size, and minimum gain
are the regularization knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import UNSEEN, Classifier, ModelError


@dataclass
class _Node:
    prediction: int
    feature: int | None = None
    code: int | None = None
    match: "_Node | None" = None
    rest: "_Node | None" = None
    majority_branch: str = "rest"

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p**2).sum())


class DecisionTree(Classifier):
    """Binary-split CART over integer-coded categorical features."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 10,
        min_gain: float = 1e-4,
    ):
        super().__init__()
        if max_depth < 1:
            raise ModelError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_gain = min_gain
        self._root: _Node | None = None
        self.n_nodes = 0

    def _fit_codes(self, matrix: np.ndarray, labels: np.ndarray) -> None:
        self.n_nodes = 0
        self._root = self._build(matrix, labels, depth=0)

    def _build(
        self, matrix: np.ndarray, labels: np.ndarray, depth: int
    ) -> _Node:
        self.n_nodes += 1
        counts = np.bincount(labels, minlength=self.n_classes)
        prediction = int(np.argmax(counts))
        node = _Node(prediction=prediction)
        if (
            depth >= self.max_depth
            or labels.size < self.min_samples_split
            or counts.max() == labels.size
        ):
            return node

        parent_impurity = _gini(counts.astype(np.float64))
        best_gain = self.min_gain
        best: tuple[int, int, np.ndarray] | None = None
        n = labels.size
        for feature in range(matrix.shape[1]):
            column = matrix[:, feature]
            for code in np.unique(column):
                if code < 0:
                    continue
                mask = column == code
                size = int(mask.sum())
                if size == 0 or size == n:
                    continue
                left = np.bincount(
                    labels[mask], minlength=self.n_classes
                ).astype(np.float64)
                right = counts - left
                weighted = (
                    size * _gini(left) + (n - size) * _gini(right)
                ) / n
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, int(code), mask)
        if best is None:
            return node

        feature, code, mask = best
        node.feature = feature
        node.code = code
        node.match = self._build(matrix[mask], labels[mask], depth + 1)
        node.rest = self._build(matrix[~mask], labels[~mask], depth + 1)
        node.majority_branch = "match" if mask.sum() * 2 > n else "rest"
        return node

    def _predict_codes(self, matrix: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise ModelError("tree is not fitted")
        out = np.empty(matrix.shape[0], dtype=np.int32)
        self._predict_into(self._root, matrix, np.arange(matrix.shape[0]), out)
        return out

    def _predict_into(
        self,
        node: _Node,
        matrix: np.ndarray,
        rows: np.ndarray,
        out: np.ndarray,
    ) -> None:
        if rows.size == 0:
            return
        if node.is_leaf:
            out[rows] = node.prediction
            return
        column = matrix[rows, node.feature]
        unseen = column == UNSEEN
        match = (column == node.code) & ~unseen
        if node.majority_branch == "match":
            match |= unseen
        assert node.match is not None and node.rest is not None
        self._predict_into(node.match, matrix, rows[match], out)
        self._predict_into(node.rest, matrix, rows[~match], out)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.match), walk(node.rest))

        return walk(self._root)
