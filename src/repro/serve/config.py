"""Per-tenant serving configuration: execution mode and batching knobs.

The serving layer runs each tenant's guard either *blocking* (the
verdict gates the predict stage — a tripwire means the expensive model
never runs) or *parallel* (guard and predict run concurrently — best
latency, but a tripwire can only void a prediction that may already
have been computed).  This is the execution-mode tradeoff the
openai-agents guardrails documentation spells out, applied to the
paper's integrity-constraint guards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..resilience import GuardPolicy


class ServeMode(enum.Enum):
    """How the guard stage relates to the predict stage."""

    BLOCKING = "blocking"
    PARALLEL = "parallel"

    @classmethod
    def parse(cls, value: "ServeMode | str") -> "ServeMode":
        """Coerce a string (or member) into a :class:`ServeMode`."""
        if isinstance(value, ServeMode):
            return value
        try:
            return cls(value.lower().replace("-", "_"))
        except ValueError:
            options = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown serve mode {value!r}; expected one of {options}"
            ) from None


@dataclass(frozen=True)
class TenantConfig:
    """Admission, batching, and degradation knobs for one tenant.

    Parameters
    ----------
    mode:
        :class:`ServeMode` — ``blocking`` (verdict gates predict) or
        ``parallel`` (verdict races predict; a tripwire voids the
        prediction).
    policy:
        :class:`~repro.resilience.GuardPolicy` applied when the guard
        itself fails (distinct from a *violation*, which is a normal
        verdict): strict turns failures into error responses, warn /
        pass_through fail open, reject fails closed per row.
    max_batch:
        Micro-batch flush threshold — an admission queue flush happens
        at ``max_batch`` rows or ``max_wait_ms``, whichever first.
    max_wait_ms:
        Longest a queued request waits for batch-mates before the
        partial batch is flushed anyway.
    queue_size:
        Bound of the per-tenant admission queue.  A full queue rejects
        new work with a typed retry-after response (backpressure),
        never an exception.
    target_delay_ms:
        Adaptive-admission target for the tenant's queue sojourn time
        (:class:`~repro.resilience.AdmissionController`): once the
        sojourn EWMA has sat above this for a sustained interval, new
        arrivals are shed with honest jittered ``retry_after`` hints
        *before* the queue-full cliff.
    share:
        The tenant's weight in the server-wide fair-share concurrency
        budget (``GuardServer(budget=...)``): the tenant is guaranteed
        ``share / total_shares`` of the budget and may exceed it only
        while the server has headroom.  Ignored when no budget is set.
    failure_threshold / recovery_seconds:
        The tenant's :class:`~repro.resilience.CircuitBreaker` trip
        wire: consecutive guard failures that open the circuit, and
        how long it refuses calls before admitting a single half-open
        probe.
    watchdog_seconds:
        Post-hoc slow-call watchdog on guard calls (None disables).
    quarantine_capacity:
        Bound of the tenant's :class:`~repro.resilience
        .QuarantineBuffer` — rows whose verdicts tripped are held
        there for the self-healing loop (and journaled when the
        server runs with a ``state_dir``).
    """

    mode: "ServeMode | str" = ServeMode.BLOCKING
    policy: "GuardPolicy | str" = GuardPolicy.STRICT
    max_batch: int = 64
    max_wait_ms: float = 2.0
    queue_size: int = 1024
    target_delay_ms: float = 100.0
    share: float = 1.0
    failure_threshold: int = 5
    recovery_seconds: float = 0.05
    watchdog_seconds: float | None = None
    quarantine_capacity: int = 1024

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", ServeMode.parse(self.mode))
        object.__setattr__(self, "policy", GuardPolicy.parse(self.policy))
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if self.target_delay_ms <= 0:
            raise ValueError("target_delay_ms must be > 0")
        if self.share <= 0:
            raise ValueError("share must be > 0")
        if self.quarantine_capacity < 1:
            raise ValueError("quarantine_capacity must be >= 1")

    def to_payload(self) -> dict:
        """A JSON-round-trippable dict (journaled with the tenant).

        Inverse of :meth:`from_payload`; enum fields flatten to their
        string values so the payload survives the durability journal.
        """
        return {
            "mode": self.mode.value,
            "policy": self.policy.value,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "queue_size": self.queue_size,
            "target_delay_ms": self.target_delay_ms,
            "share": self.share,
            "failure_threshold": self.failure_threshold,
            "recovery_seconds": self.recovery_seconds,
            "watchdog_seconds": self.watchdog_seconds,
            "quarantine_capacity": self.quarantine_capacity,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TenantConfig":
        """Rebuild a config from :meth:`to_payload` output.

        Unknown keys are ignored (an older build can read a newer
        journal's config payloads without crashing recovery).
        """
        import dataclasses

        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})
