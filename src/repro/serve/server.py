"""The asyncio multi-tenant guard service front-end.

:class:`GuardServer` registers many named guardrails (tenants), accepts
concurrent ``check`` / ``rectify`` / ``predict`` requests, and
coalesces them per tenant into :class:`~repro.errors.BatchGuard`
micro-batches.  Verdicts are bit-identical to a direct serial
``check_batch`` over the same rows — batching changes latency and
throughput, never semantics — and per-tenant hot-swap
(:meth:`GuardServer.swap`) takes effect between flushes, so no request
ever observes a torn version.

    server = GuardServer()
    server.register("acme", guardrail, TenantConfig(mode="parallel"))
    async with server:
        response = await server.check("acme", row)
        response.verdict.ok

Predict requests run the tenant's registered predictor under the
configured :class:`~repro.serve.ServeMode`: blocking (the verdict
gates the predictor — a tripwire means it never runs) or parallel (the
predictor races the guard — a tripwire voids its output).
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import time
from typing import Callable, Hashable, Mapping

from .. import obs
from ..resilience import GuardrailVersions
from ..resilience.overload import (
    STEADY_CLOCK,
    BrownoutConfig,
    BrownoutController,
    FairShareLimiter,
)
from ..synth import Guardrail
from .config import ServeMode, TenantConfig
from .responses import ServeResponse, ServeStatus
from .tenant import Tenant, _FlushOutcome


class GuardServer:
    """A long-lived asyncio serving layer over many named guardrails.

    Lifecycle: :meth:`register` tenants (before or after
    :meth:`start`), serve requests, :meth:`stop` to drain.  The async
    context manager form (``async with server:``) starts and stops it
    around a block.

    Under overload the server sheds deliberately instead of
    collapsing: per-tenant adaptive admission rejects with honest
    jittered ``retry_after`` before the queue-full cliff, request
    ``deadline_ms`` budgets expire at dequeue (typed ``EXPIRED``, no
    guard work wasted), ``budget=`` splits a server-wide concurrency
    budget across tenants by their configured ``share`` weights, and
    the :attr:`brownout` controller steps service down (and, after a
    cool period, back up) through degradation tiers — every
    transition journaled when the server is durable.

    With ``state_dir=`` the server is **durable**: every control-plane
    event (tenant register/remove, hot-swap, rollback) is journaled to
    a write-ahead log *before* it activates, violating rows entering a
    tenant's quarantine are journaled alongside, and a snapshot every
    ``snapshot_every`` events bounds replay time.  After a crash,
    :meth:`recover` rebuilds every tenant at its last committed
    version — with verdicts bit-identical to an uninterrupted run —
    and refills its quarantine.  Steady-state request traffic is never
    journaled, so durability costs nothing on the hot path.
    """

    def __init__(
        self,
        state_dir=None,
        snapshot_every: "int | None" = 256,
        budget: "int | None" = None,
        brownout: "BrownoutConfig | None" = None,
    ):
        self._tenants: dict[str, Tenant] = {}
        self._tasks: dict[str, asyncio.Task] = {}
        self._ids = itertools.count(1)
        self._running = False
        self._store = None
        self._limiter = (
            FairShareLimiter(budget) if budget is not None else None
        )
        self._brownout = BrownoutController(brownout)
        self._brownout.on_transition(self._on_brownout_transition)
        if state_dir is not None:
            from ..resilience.durability import DurableStateStore

            self._store = DurableStateStore(
                state_dir,
                snapshot_every=snapshot_every,
                state_provider=self._durable_state,
            )
            self._brownout.attach_journal(
                lambda **data: self._store.append("brownout", **data)
            )

    # ------------------------------------------------------------------
    # Durability plumbing.
    # ------------------------------------------------------------------

    @property
    def store(self):
        """The :class:`~repro.resilience.DurableStateStore` backing
        this server, or None when running in-memory only."""
        return self._store

    @property
    def brownout(self) -> BrownoutController:
        """The server-wide :class:`~repro.resilience
        .BrownoutController` (tier 0 = full service)."""
        return self._brownout

    @property
    def limiter(self) -> "FairShareLimiter | None":
        """The fair-share concurrency limiter, or None when the
        server was built without a ``budget``."""
        return self._limiter

    def _on_brownout_transition(self, record: dict) -> None:
        """Surface one brownout tier change in the obs stream."""
        if obs.enabled():
            obs.record("serve.brownout", **record)
            direction = (
                "down" if record["tier"] > record["from"] else "up"
            )
            obs.count(f"serve.brownout_step_{direction}")

    def overload_snapshot(self) -> dict:
        """The overload-control state as one plain dict: brownout
        tier/transitions plus the fair-share budget and per-tenant
        usage (when a budget is configured)."""
        snapshot = {"brownout": self._brownout.snapshot()}
        if self._limiter is not None:
            snapshot["fair_share"] = self._limiter.snapshot()
        return snapshot

    def _durable_state(self) -> dict:
        """The full runtime state, shaped for a snapshot generation.

        The same shape :func:`repro.resilience.fold_runtime_state`
        produces, so snapshot-then-replay and pure-replay recoveries
        are interchangeable.
        """
        from ..dsl import format_program

        tenants = {}
        for name, tenant in self._tenants.items():
            versions = tenant.versions
            tenants[name] = {
                "config": tenant.config.to_payload(),
                "programs": [
                    format_program(guardrail.program)
                    for guardrail in versions.history()
                ],
                "cursor": versions.cursor,
                "quarantine": tenant.quarantine.peek(),
                "quarantine_dropped": tenant.quarantine.dropped,
                "baseline_violation_rate": None,
            }
        return {
            "tenants": tenants,
            "brownout": {
                "tier": self._brownout.tier,
                "transitions": [
                    dict(t) for t in self._brownout.transitions
                ],
            },
        }

    def _attach_durability(self, name: str, tenant: Tenant) -> None:
        """Route the tenant's committed events into the journal."""

        def journal(kind: str, **data) -> None:
            self._store.append(kind, tenant=name, **data)

        tenant.versions.attach_journal(journal)
        tenant.quarantine.attach_journal(journal)

    # ------------------------------------------------------------------
    # Registration and lifecycle.
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        guardrail: "Guardrail | GuardrailVersions",
        config: TenantConfig | None = None,
        predictor: Callable | None = None,
    ) -> Tenant:
        """Add a tenant serving ``guardrail`` under ``config``.

        ``predictor`` (sync or async callable of one row) is the
        model stage ``predict`` requests run; omitting it makes
        predict requests fail with a typed error response.  Returns
        the :class:`~repro.serve.Tenant` handle (metrics, versions).
        """
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} is already registered")
        tenant = Tenant(name, guardrail, config, predictor)
        if self._store is not None:
            from ..dsl import format_program

            # Journal-before-activation: a registration the disk
            # refused (DurabilityError) never becomes visible.
            self._store.append(
                "tenant_register",
                tenant=name,
                config=tenant.config.to_payload(),
                programs=[
                    format_program(guardrail.program)
                    for guardrail in tenant.versions.history()
                ],
                cursor=tenant.versions.cursor,
            )
            self._attach_durability(name, tenant)
        if self._limiter is not None:
            self._limiter.register(name, tenant.config.share)
        tenant.attach_overload(self._limiter, self._brownout)
        self._tenants[name] = tenant
        if self._running:
            self._spawn_batcher(name, tenant)
        return tenant

    def unregister(self, name: str) -> None:
        """Remove a tenant (journaled first when durable).

        The tenant's batcher is cancelled; any request still queued
        resolves with a typed ERROR response.  Raises ``KeyError`` for
        unknown tenants and propagates the journal's typed error —
        with the tenant still registered — when the removal cannot be
        committed.
        """
        tenant = self._tenant(name)
        if self._store is not None:
            self._store.append("tenant_remove", tenant=name)
        del self._tenants[name]
        if self._limiter is not None:
            self._limiter.unregister(name)
        task = self._tasks.pop(name, None)
        if task is not None and not task.done():
            task.cancel()
        tenant.fail_pending(f"tenant {name!r} unregistered")
        if obs.enabled():
            obs.record("serve.unregister", tenant=name)

    @property
    def tenants(self) -> tuple[str, ...]:
        """The registered tenant names, in registration order."""
        return tuple(self._tenants)

    @property
    def running(self) -> bool:
        """Is the server accepting requests?"""
        return self._running

    async def start(self) -> "GuardServer":
        """Spawn one supervised batcher task per registered tenant."""
        if self._running:
            return self
        self._running = True
        for name, tenant in self._tenants.items():
            self._spawn_batcher(name, tenant)
        if obs.enabled():
            obs.record("serve.start", tenants=len(self._tenants))
        return self

    def _spawn_batcher(self, name: str, tenant: Tenant) -> None:
        """Start (or restart) one tenant's batcher under supervision:
        a batcher that dies while the server runs is respawned, so one
        killed task can never silently wedge a tenant."""
        task = asyncio.ensure_future(tenant.run())
        self._tasks[name] = task
        task.add_done_callback(
            lambda done, name=name, tenant=tenant: self._on_batcher_exit(
                name, tenant, done
            )
        )

    def _on_batcher_exit(
        self, name: str, tenant: Tenant, task: asyncio.Task
    ) -> None:
        if not task.cancelled():
            task.exception()  # retrieved: no "never retrieved" warning
        if not self._running or self._tasks.get(name) is not task:
            return  # deliberate shutdown or already replaced
        tenant.metrics.batcher_restarts += 1
        tenant.emit("serve.batcher_restart")
        self._spawn_batcher(name, tenant)

    def kill_batcher(self, name: str) -> None:
        """Chaos hook: cancel ``name``'s batcher task mid-flight.

        Any batch in the batcher's hand resolves with typed ERROR
        responses (see ``Tenant.run``), and the supervision callback
        respawns a fresh batcher while the server is running — the
        fault the chaos-under-load suite's ``worker_kill`` class
        injects and judges.
        """
        self._tenant(name)  # raise KeyError on unknown tenants
        task = self._tasks.get(name)
        if task is not None and not task.done():
            task.cancel()

    async def stop(
        self,
        drain: bool = True,
        drain_timeout_seconds: "float | None" = 30.0,
    ) -> None:
        """Stop serving; with ``drain`` (default) finish queued work
        first, so no admitted request is ever dropped.

        The drain is bounded by ``drain_timeout_seconds`` (``None``
        waits forever): if a wedged batcher keeps its queue from
        joining, shutdown proceeds anyway and every still-pending
        request resolves with a typed ERROR response — stop can never
        hang, and no caller is left awaiting a future nobody owns.
        """
        if not self._running:
            return
        self._running = False
        if drain:
            joined = asyncio.gather(
                *(t.queue.join() for t in self._tenants.values())
            )
            try:
                await asyncio.wait_for(joined, drain_timeout_seconds)
            except asyncio.TimeoutError:
                pass  # expired: the backstop below fails the leftovers
        for task in self._tasks.values():
            task.cancel()
        await asyncio.gather(
            *self._tasks.values(), return_exceptions=True
        )
        self._tasks.clear()
        for tenant in self._tenants.values():
            tenant.fail_pending(
                "server stopped before this request was flushed"
            )
        if self._store is not None:
            from ..resilience.durability import DurabilityError

            try:
                # A clean-shutdown snapshot makes the next recovery a
                # snapshot load with an empty journal tail.
                self._store.snapshot(self._durable_state())
            except DurabilityError:
                # The journal already holds everything committed;
                # stop() must still succeed on a sick disk.
                if obs.enabled():
                    obs.count("durability.stop_snapshot_failed")

    @classmethod
    def recover(
        cls,
        state_dir,
        predictors: "Mapping[str, Callable] | None" = None,
        snapshot_every: "int | None" = 256,
        budget: "int | None" = None,
        brownout: "BrownoutConfig | None" = None,
    ) -> "GuardServer":
        """Rebuild a durable server from ``state_dir`` after a crash.

        Loads the last valid snapshot, replays the journal tail
        (truncating any torn tail to the committed prefix), and
        reconstructs every tenant exactly as last committed: the full
        version history re-parsed from journaled DSL text (so
        recovered verdicts are bit-identical to the pre-crash
        guardrails), the rollback cursor, the quarantine contents and
        drop count, and the tenant config.  ``predictors`` re-binds
        predict callables (they are code, not state, so they cannot be
        journaled) by tenant name; ``budget`` / ``brownout`` re-bind
        the overload-control configuration the same way, and the
        journaled brownout tier transitions replay bit-identically
        onto the rebuilt controller.

        The rebuilt server is durable over the same ``state_dir`` and
        ready to :meth:`start`; recovery diagnostics are on
        ``server.store.recovered``.
        """
        from ..dsl import parse_program
        from ..resilience.durability import fold_runtime_state

        server = cls(
            state_dir=state_dir,
            snapshot_every=snapshot_every,
            budget=budget,
            brownout=brownout,
        )
        recovered = server._store.recovered
        folded = fold_runtime_state(recovered.state, recovered.events)
        for name, state in folded["tenants"].items():
            programs = state["programs"] or [""]
            guardrails = [
                Guardrail.from_program(parse_program(text))
                for text in programs
            ]
            versions = GuardrailVersions(guardrails[0])
            for guardrail in guardrails[1:]:
                versions.swap(guardrail)
            for _ in range(len(guardrails) - 1 - state["cursor"]):
                versions.rollback()
            tenant = Tenant(
                name,
                versions,
                TenantConfig.from_payload(state["config"]),
                (predictors or {}).get(name),
            )
            tenant.quarantine.restore(
                state["quarantine"], dropped=state["quarantine_dropped"]
            )
            # Hooks attach *after* the rebuild: replayed events must
            # not be journaled a second time.
            server._attach_durability(name, tenant)
            tenant.attach_overload(server._limiter, server._brownout)
            server._tenants[name] = tenant
        brownout_state = folded.get("brownout")
        if brownout_state:
            # Restore (not replay-through-observe): journaled tier
            # transitions carry no timestamps, so the recovered
            # history is bit-identical to the pre-crash record.
            server._brownout.restore(
                brownout_state.get("tier", 0),
                brownout_state.get("transitions", []),
            )
        if obs.enabled():
            obs.record(
                "serve.recover",
                tenants=len(folded["tenants"]),
                replayed=recovered.replayed_records,
                truncated_tail_bytes=recovered.truncated_tail_bytes,
            )
        return server

    async def __aenter__(self) -> "GuardServer":
        """``async with server:`` starts the batchers."""
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        """Drain and stop on block exit."""
        await self.stop()

    # ------------------------------------------------------------------
    # The request path.
    # ------------------------------------------------------------------

    async def check(
        self,
        tenant: str,
        row: Mapping[str, Hashable],
        deadline_ms: "float | None" = None,
    ) -> ServeResponse:
        """Vet one row for ``tenant`` through its micro-batcher.

        ``deadline_ms`` is the request's latency budget: a request
        still queued when it runs out is shed at dequeue with a typed
        :attr:`~repro.serve.ServeStatus.EXPIRED` response and never
        reaches the guard.
        """
        return await self._submit(tenant, "check", row, deadline_ms)

    async def rectify(
        self,
        tenant: str,
        row: Mapping[str, Hashable],
        deadline_ms: "float | None" = None,
    ) -> ServeResponse:
        """Repair one row for ``tenant`` (response carries ``row``).

        ``deadline_ms`` bounds the request as in :meth:`check`.
        """
        return await self._submit(tenant, "rectify", row, deadline_ms)

    async def predict(
        self,
        tenant: str,
        row: Mapping[str, Hashable],
        deadline_ms: "float | None" = None,
    ) -> ServeResponse:
        """Run the tenant's predictor under its guard and serve mode.

        Blocking mode awaits the verdict first and *gates* the
        predictor on a tripwire; parallel mode races the predictor
        against the guard and *voids* its output on a tripwire (at
        brownout tier >= 1 parallel downgrades to blocking).
        ``deadline_ms`` bounds the request as in :meth:`check`.
        """
        tenant_state = self._tenant(tenant)
        if tenant_state.predictor is None:
            tenant_state.metrics.requests += 1
            tenant_state.metrics.predicts += 1
            tenant_state.metrics.errors += 1
            return ServeResponse(
                status=ServeStatus.ERROR,
                tenant=tenant,
                kind="predict",
                request_id=next(self._ids),
                error=f"tenant {tenant!r} has no predictor registered",
            )
        return await self._submit(tenant, "predict", row, deadline_ms)

    async def _submit(
        self,
        tenant: str,
        kind: str,
        row: Mapping[str, Hashable],
        deadline_ms: "float | None" = None,
    ) -> ServeResponse:
        tenant_state = self._tenant(tenant)
        if not self._running:
            raise RuntimeError(
                "GuardServer is not running; use `async with server:` "
                "or call start() first"
            )
        request_id = next(self._ids)
        started = time.perf_counter()
        admitted = tenant_state.admit(kind, row, request_id, deadline_ms)
        if isinstance(admitted, ServeResponse):
            return admitted  # typed shed (rejected / expired)
        try:
            predict_task: asyncio.Task | None = None
            if (
                kind == "predict"
                and tenant_state.effective_mode() is ServeMode.PARALLEL
            ):
                predict_task = asyncio.ensure_future(
                    self._run_predictor(tenant_state, row)
                )
            try:
                outcome: _FlushOutcome = await admitted.future
            except BaseException:
                # Request cancelled (or the future otherwise failed):
                # a racing predictor must not be orphaned mid-flight.
                if predict_task is not None:
                    await self._void(predict_task)
                raise
        finally:
            # The fair-share token spans admission to resolution: the
            # release must happen on every exit, or a cancelled caller
            # would leak budget forever.
            tenant_state.release_token(admitted)
        queued_ms = (
            STEADY_CLOCK.monotonic() - admitted.enqueued_at
        ) * 1000.0
        response = await self._complete(
            tenant_state, kind, row, request_id, outcome, predict_task
        )
        service_ms = (time.perf_counter() - started) * 1000.0
        metrics = tenant_state.metrics
        if response.status is ServeStatus.ERROR:
            metrics.errors += 1
        elif response.status is ServeStatus.EXPIRED:
            metrics.expired += 1
        else:
            metrics.completed += 1
            metrics.queued_ms_total += queued_ms
            metrics.service_ms_total += service_ms
            metrics.latencies_ms.append(service_ms)
            if service_ms > metrics.service_ms_max:
                metrics.service_ms_max = service_ms
        return dataclasses.replace(
            response, queued_ms=queued_ms, service_ms=service_ms
        )

    async def _complete(
        self,
        tenant: Tenant,
        kind: str,
        row: Mapping[str, Hashable],
        request_id: int,
        outcome: _FlushOutcome,
        predict_task: "asyncio.Task | None",
    ) -> ServeResponse:
        """Turn a flush outcome into the terminal response, running or
        cancelling the predict stage as the mode dictates."""
        base = dict(
            tenant=tenant.name,
            kind=kind,
            request_id=request_id,
            version=outcome.version,
            verdict=outcome.verdict,
            degraded=outcome.degraded,
        )
        if outcome.expired:
            # Shed at dequeue: the guard never ran; a racing predictor
            # (parallel mode) is pointless work now — void it.
            if predict_task is not None:
                await self._void(predict_task)
            return ServeResponse(status=ServeStatus.EXPIRED, **base)
        if outcome.error is not None:
            if predict_task is not None:
                await self._void(predict_task)
            return ServeResponse(
                status=ServeStatus.ERROR, error=outcome.error, **base
            )
        if kind == "check":
            return ServeResponse(status=ServeStatus.OK, **base)
        if kind == "rectify":
            return ServeResponse(
                status=ServeStatus.OK, row=outcome.row, **base
            )
        # predict
        tripped = outcome.verdict is not None and not outcome.verdict.ok
        metrics = tenant.metrics
        if predict_task is not None:  # parallel mode: already racing
            if tripped:
                await self._void(predict_task)
                metrics.voided += 1
                tenant.emit("serve.voided")
                return ServeResponse(
                    status=ServeStatus.OK, voided=True, **base
                )
            try:
                prediction = await predict_task
            except Exception as error:
                return ServeResponse(
                    status=ServeStatus.ERROR,
                    error=f"predictor failed: {error}",
                    **base,
                )
            return ServeResponse(
                status=ServeStatus.OK, prediction=prediction, **base
            )
        if tripped:  # blocking mode: the expensive stage never runs
            metrics.gated += 1
            tenant.emit("serve.gated")
            return ServeResponse(status=ServeStatus.OK, gated=True, **base)
        try:
            prediction = await self._run_predictor(tenant, row)
        except Exception as error:
            return ServeResponse(
                status=ServeStatus.ERROR,
                error=f"predictor failed: {error}",
                **base,
            )
        return ServeResponse(
            status=ServeStatus.OK, prediction=prediction, **base
        )

    async def _run_predictor(self, tenant: Tenant, row):
        """Run the tenant's predictor (awaiting it when async)."""
        result = tenant.predictor(row)
        if asyncio.iscoroutine(result):
            return await result
        return result

    @staticmethod
    async def _void(task: asyncio.Task) -> None:
        """Cancel a racing predict task and swallow its outcome."""
        task.cancel()
        try:
            await task
        except (asyncio.CancelledError, Exception):
            pass

    # ------------------------------------------------------------------
    # Hot-swap, metrics, and reporting.
    # ------------------------------------------------------------------

    def swap(
        self, tenant: str, guardrail: Guardrail
    ) -> int:
        """Hot-swap ``tenant`` to a new guardrail under live traffic.

        Delegates to :meth:`repro.resilience.GuardrailVersions.swap`
        (atomic; a rejected candidate leaves the old version live);
        in-flight flushes finish under the version they snapshotted.
        Returns the new version number.
        """
        state = self._tenant(tenant)
        version = state.versions.swap(guardrail)
        state.metrics.swaps += 1
        state.emit("serve.swap", version=version)
        return version

    def rollback(self, tenant: str) -> int:
        """Back out ``tenant``'s most recent swap; returns the version."""
        state = self._tenant(tenant)
        version = state.versions.rollback()
        state.metrics.swaps += 1
        state.emit("serve.rollback", version=version)
        return version

    def tenant(self, name: str) -> Tenant:
        """The :class:`~repro.serve.Tenant` handle for ``name``."""
        return self._tenant(name)

    def metrics(self) -> dict[str, dict]:
        """Per-tenant service metric snapshots, keyed by tenant name."""
        return {
            name: tenant.metrics.snapshot()
            for name, tenant in self._tenants.items()
        }

    def publish_metrics(self) -> None:
        """Replay each tenant's buffered service events into the
        active obs sink, tagged per tenant via the worker-tag protocol
        of :func:`repro.obs.merge_events` (tenant i → worker i+1), so
        ``repro obs report`` attributes service counters per tenant.
        Drains the buffers; a no-op when tracing is disabled."""
        if not obs.enabled():
            return
        for index, tenant in enumerate(self._tenants.values()):
            events = list(tenant.events)
            tenant.events.clear()
            obs.merge_events(events, worker=index + 1)

    def _tenant(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            known = ", ".join(self._tenants) or "none registered"
            raise KeyError(f"unknown tenant {name!r} (known: {known})")
        return tenant
