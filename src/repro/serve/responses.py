"""Typed service responses: every request gets one, come what may.

The service never surfaces backpressure or guard degradation as an
exception to the caller — a full admission queue yields a
:attr:`ServeStatus.REJECTED` response carrying ``retry_after``, a
request whose ``deadline_ms`` ran out before the guard could serve it
yields :attr:`ServeStatus.EXPIRED` (shed at dequeue, no guard work
wasted), and a guard failure under the strict policy yields an
:attr:`ServeStatus.ERROR` response carrying the error text.  Only
caller bugs (unknown tenant, server not started) raise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Mapping

from ..errors.stream import RowVerdict


class ServeStatus(enum.Enum):
    """Terminal status of one service request.

    ``OK`` — the guard served the request (the verdict may still be a
    violation); ``REJECTED`` — typed backpressure, retry after
    ``retry_after`` seconds; ``EXPIRED`` — the request's
    ``deadline_ms`` ran out before the guard could run, so it was
    shed without wasting guard work; ``ERROR`` — the guard was
    unavailable under the strict policy or the request was malformed
    (e.g. predict with no predictor registered).
    """

    OK = "ok"
    REJECTED = "rejected"
    EXPIRED = "expired"
    ERROR = "error"


@dataclass(frozen=True)
class ServeResponse:
    """The outcome of one ``check`` / ``rectify`` / ``predict`` request.

    Attributes
    ----------
    status:
        :class:`ServeStatus` — ``ok``, ``rejected`` (backpressure;
        see ``retry_after``), ``expired`` (the request's deadline
        passed before the guard could serve it), or ``error`` (guard
        unavailable under the strict policy, or no predictor
        registered).
    tenant / kind / request_id:
        Which tenant served which kind of request; ids are unique per
        server so callers can correlate (and tests can prove zero
        drops/duplicates).
    version:
        The guardrail version the verdict ran under — stamped from the
        same atomic snapshot that produced the verdict, so a response
        never reports a version other than the one that vetted it.
    verdict:
        The guard's :class:`~repro.errors.RowVerdict` (check/predict;
        None on rejection or error).
    row:
        The repaired row (rectify only; None under the reject policy
        when the guard could not vet the row).
    prediction:
        The predict stage's output (predict only; None when gated,
        voided, or failed).
    gated:
        Blocking mode withheld the predict stage because the guard
        tripped — the expensive stage never ran.
    voided:
        Parallel mode discarded the prediction because the guard
        tripped after the race started.
    degraded:
        The guard failed during this request's flush and the tenant's
        :class:`~repro.resilience.GuardPolicy` papered over it, so the
        verdict is a policy verdict, not a real one.
    retry_after:
        Suggested client backoff in seconds (rejected only).
    error:
        Human-readable failure description (error status only).
    queued_ms / service_ms:
        Time spent waiting for batch-mates in the admission queue, and
        total request residency (admission to response).
    """

    status: ServeStatus
    tenant: str
    kind: str
    request_id: int
    version: int = 0
    verdict: RowVerdict | None = None
    row: Mapping[str, Hashable] | None = None
    prediction: object = None
    gated: bool = False
    voided: bool = False
    degraded: bool = False
    retry_after: float | None = None
    error: str | None = None
    queued_ms: float = 0.0
    service_ms: float = 0.0

    @property
    def ok(self) -> bool:
        """Did the request complete (regardless of the verdict)?"""
        return self.status is ServeStatus.OK

    @property
    def rejected(self) -> bool:
        """Was the request refused by backpressure?"""
        return self.status is ServeStatus.REJECTED

    @property
    def expired(self) -> bool:
        """Did the request's deadline pass before the guard ran?"""
        return self.status is ServeStatus.EXPIRED

    def __bool__(self) -> bool:
        return self.ok
