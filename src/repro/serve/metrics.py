"""Service-level reporting over the per-tenant metrics.

The server's counters (:class:`~repro.serve.TenantMetrics`) are plain
numbers; this module renders them as the operator-facing service
report the ``repro serve`` CLI prints, one line per tenant plus a
fleet roll-up.
"""

from __future__ import annotations

_COLUMNS = (
    ("requests", "req"),
    ("completed", "done"),
    ("rejected", "rej"),
    ("expired", "exp"),
    ("errors", "err"),
    ("degraded", "deg"),
    ("gated", "gated"),
    ("voided", "void"),
    ("batches", "flushes"),
    ("swaps", "swaps"),
)


def render_service_report(server) -> str:
    """A per-tenant service table (counters, batch fill, latency).

    ``server`` is a :class:`~repro.serve.GuardServer`; the report is
    built from :meth:`~repro.serve.GuardServer.metrics`, so it can be
    rendered while the server is live or after it stopped.
    """
    snapshots = server.metrics()
    lines = ["tenant            " + "  ".join(h for _, h in _COLUMNS)
             + "   fill  p50ms  p95ms"]
    totals = {key: 0 for key, _ in _COLUMNS}
    for name, snap in snapshots.items():
        cells = []
        for key, header in _COLUMNS:
            totals[key] += snap[key]
            cells.append(f"{snap[key]:>{max(len(header), 3)}d}")
        lines.append(
            f"{name:<16}  "
            + "  ".join(cells)
            + f"  {snap['mean_batch_fill']:5.1f}"
            + f"  {snap['p50_ms']:5.2f}"
            + f"  {snap['p95_ms']:5.2f}"
        )
    if len(snapshots) > 1:
        cells = [
            f"{totals[key]:>{max(len(header), 3)}d}"
            for key, header in _COLUMNS
        ]
        lines.append(f"{'TOTAL':<16}  " + "  ".join(cells))
    brownout = getattr(server, "brownout", None)
    if brownout is not None and (
        brownout.tier or brownout.transitions
    ):
        snap = brownout.snapshot()
        lines.append(
            f"overload: brownout tier {snap['tier']} "
            f"(peak {snap['max_tier_seen']}, "
            f"{snap['transitions']} transition(s))"
        )
    limiter = getattr(server, "limiter", None)
    if limiter is not None:
        shares = limiter.snapshot()
        lines.append(
            f"fair share: budget {shares['budget']} "
            f"({shares['in_flight']} in flight, "
            f"{shares['denied']} denied)"
        )
    store = getattr(server, "store", None)
    if store is not None:
        recovered = store.recovered
        lines.append(
            f"durability: journal at seq {store.last_seq} "
            f"({recovered.replayed_records} replayed on open, "
            f"{recovered.truncated_tail_bytes} torn byte(s) repaired, "
            f"snapshot generation {recovered.snapshot_generation})"
        )
    return "\n".join(lines)
