"""One tenant: a named guardrail, its admission queue, and its batcher.

Each registered tenant owns

* a :class:`~repro.resilience.GuardrailVersions` holder (hot-swap under
  live traffic, per tenant);
* live guard proxies (:class:`~repro.resilience.LiveBatchGuard` /
  :class:`~repro.resilience.LiveRowGuard`) wrapped in the resilient
  guards, so a per-tenant :class:`~repro.resilience.GuardPolicy` and
  :class:`~repro.resilience.CircuitBreaker` govern degradation;
* a bounded admission queue: requests coalesce into micro-batches
  (flush on ``max_batch`` rows or ``max_wait_ms``), and a full queue
  rejects with a typed retry-after response;
* service metrics (:class:`TenantMetrics`) plus an obs-shaped event
  buffer the server replays into the global sink via
  :func:`repro.obs.merge_events`, tagged per tenant exactly as the
  worker pool tags forked workers.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from ..resilience import (
    CircuitBreaker,
    GuardrailVersions,
    QuarantineBuffer,
    ResilientBatchGuard,
    ResilientRowGuard,
)
from ..resilience.policy import GuardUnavailableError
from ..synth import Guardrail
from .config import TenantConfig
from .responses import ServeResponse, ServeStatus

_LATENCY_WINDOW = 4096
"""Recent per-request latencies kept for percentile reporting."""


@dataclass
class TenantMetrics:
    """Service counters one tenant accumulates (see :meth:`snapshot`)."""

    requests: int = 0
    checks: int = 0
    rectifies: int = 0
    predicts: int = 0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    degraded: int = 0
    gated: int = 0
    voided: int = 0
    batches: int = 0
    rows_flushed: int = 0
    swaps: int = 0
    batcher_restarts: int = 0
    queue_high_water: int = 0
    queued_ms_total: float = 0.0
    service_ms_total: float = 0.0
    service_ms_max: float = 0.0
    latencies_ms: deque = field(
        default_factory=lambda: deque(maxlen=_LATENCY_WINDOW), repr=False
    )

    @property
    def mean_batch_fill(self) -> float:
        """Average rows per flushed micro-batch."""
        if self.batches == 0:
            return 0.0
        return self.rows_flushed / self.batches

    @property
    def mean_service_ms(self) -> float:
        """Average request residency (admission to response)."""
        if self.completed == 0:
            return 0.0
        return self.service_ms_total / self.completed

    def percentile_ms(self, q: float) -> float:
        """The q-th latency percentile over the recent window."""
        window = sorted(self.latencies_ms)
        if not window:
            return 0.0
        index = min(len(window) - 1, int(q * (len(window) - 1) + 0.5))
        return window[index]

    def snapshot(self) -> dict:
        """A plain-dict view (for reports, JSON, and assertions)."""
        return {
            "requests": self.requests,
            "checks": self.checks,
            "rectifies": self.rectifies,
            "predicts": self.predicts,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "degraded": self.degraded,
            "gated": self.gated,
            "voided": self.voided,
            "batches": self.batches,
            "rows_flushed": self.rows_flushed,
            "swaps": self.swaps,
            "batcher_restarts": self.batcher_restarts,
            "queue_high_water": self.queue_high_water,
            "mean_batch_fill": self.mean_batch_fill,
            "mean_service_ms": self.mean_service_ms,
            "p50_ms": self.percentile_ms(0.50),
            "p95_ms": self.percentile_ms(0.95),
        }


@dataclass
class _Pending:
    """One admitted request waiting in the tenant's queue."""

    kind: str
    row: Mapping[str, Hashable]
    future: asyncio.Future
    request_id: int
    enqueued_at: float


@dataclass(frozen=True)
class _FlushOutcome:
    """What the batcher resolved one pending request with."""

    version: int = 0
    verdict: object = None
    row: Mapping[str, Hashable] | None = None
    degraded: bool = False
    error: str | None = None


class Tenant:
    """Per-tenant serving state; constructed by ``GuardServer.register``.

    Not a public entry point on its own — the server owns the batcher
    task and the request path — but its :attr:`metrics`,
    :attr:`versions`, and :attr:`events` are the per-tenant
    observability surface callers read.
    """

    def __init__(
        self,
        name: str,
        guardrail: "Guardrail | GuardrailVersions",
        config: TenantConfig | None = None,
        predictor: Callable | None = None,
    ):
        self.name = name
        self.config = config or TenantConfig()
        self.versions = (
            guardrail
            if isinstance(guardrail, GuardrailVersions)
            else GuardrailVersions(guardrail)
        )
        self.predictor = predictor
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.failure_threshold,
            recovery_seconds=self.config.recovery_seconds,
            max_retries=0,
        )
        self.live_batch = self.versions.batch_guard(
            batch_size=self.config.max_batch
        )
        self.live_row = self.versions.row_guard()
        self.guard = ResilientBatchGuard(
            self.live_batch,
            policy=self.config.policy,
            breaker=self.breaker,
            watchdog_seconds=self.config.watchdog_seconds,
        )
        self.row_guard = ResilientRowGuard(
            self.live_row,
            policy=self.config.policy,
            breaker=self.breaker,
            watchdog_seconds=self.config.watchdog_seconds,
        )
        self.quarantine = QuarantineBuffer(
            capacity=self.config.quarantine_capacity
        )
        self.metrics = TenantMetrics()
        self.events: deque = deque(maxlen=_LATENCY_WINDOW)
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.queue_size
        )

    # ------------------------------------------------------------------
    # Admission (runs on the event loop, synchronously).
    # ------------------------------------------------------------------

    def admit(
        self, kind: str, row: Mapping[str, Hashable], request_id: int
    ) -> "_Pending | ServeResponse":
        """Enqueue one request, or reject it with typed backpressure.

        Returns the queued :class:`_Pending` (whose future the batcher
        will resolve) or, when the admission queue is full, a terminal
        :class:`ServeResponse` with ``retry_after`` — backpressure is
        a response, never an exception.
        """
        metrics = self.metrics
        metrics.requests += 1
        if kind == "check":
            metrics.checks += 1
        elif kind == "rectify":
            metrics.rectifies += 1
        else:
            metrics.predicts += 1
        if self.queue.full():
            metrics.rejected += 1
            self.emit("serve.rejected", kind=kind)
            return ServeResponse(
                status=ServeStatus.REJECTED,
                tenant=self.name,
                kind=kind,
                request_id=request_id,
                retry_after=self.retry_after(),
            )
        loop = asyncio.get_running_loop()
        pending = _Pending(
            kind=kind,
            row=row,
            future=loop.create_future(),
            request_id=request_id,
            enqueued_at=loop.time(),
        )
        self.queue.put_nowait(pending)
        depth = self.queue.qsize()
        if depth > metrics.queue_high_water:
            metrics.queue_high_water = depth
        return pending

    def retry_after(self) -> float:
        """Suggested backoff when the queue is full: the time the
        backlog needs to drain at the configured flush cadence plus
        the tenant's observed mean service time."""
        config = self.config
        backlog_flushes = self.queue.qsize() / config.max_batch + 1.0
        per_flush = config.max_wait_ms / 1000.0 + (
            self.metrics.mean_service_ms / 1000.0
        )
        return backlog_flushes * max(per_flush, 1e-4)

    # ------------------------------------------------------------------
    # The batcher (one task per tenant, owned by the server).
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Drain the admission queue forever, flushing micro-batches.

        A flush fires at ``max_batch`` queued rows or ``max_wait_ms``
        after the first row, whichever comes first.  The flush itself
        is synchronous (no awaits), so a whole batch runs under one
        atomic guard snapshot and swaps land only between flushes.
        """
        loop = asyncio.get_running_loop()
        config = self.config
        while True:
            batch = [await self.queue.get()]
            deadline = loop.time() + config.max_wait_ms / 1000.0
            try:
                while len(batch) < config.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(
                                self.queue.get(), remaining
                            )
                        )
                    except asyncio.TimeoutError:
                        break
            except asyncio.CancelledError:
                # Killed (chaos, ``stop(drain=False)``) with a batch in
                # hand: the in-hand requests must not be stranded —
                # resolve them with typed ERROR responses, then die.
                self.fail_batch(batch, "batcher cancelled before flush")
                raise
            try:
                self.flush(batch)
            except Exception as error:
                # The service contract is "never an exception": an
                # unexpected flush failure resolves every still-pending
                # request with a typed ERROR outcome and the batcher
                # keeps draining — it must outlive any single batch.
                self.emit("serve.flush_error", value=len(batch))
                outcome = _FlushOutcome(
                    version=self.live_batch.version,
                    error=f"{type(error).__name__}: {error}",
                )
                for pending in batch:
                    self._resolve(pending, outcome)
            finally:
                for _ in batch:
                    self.queue.task_done()

    def fail_batch(self, batch: list, reason: str) -> None:
        """Resolve a batch the batcher will never flush with typed
        ERROR outcomes (and balance the queue's join accounting)."""
        outcome = _FlushOutcome(
            version=self.live_batch.version, error=reason
        )
        for pending in batch:
            self._resolve(pending, outcome)
            self.queue.task_done()

    def fail_pending(self, reason: str) -> int:
        """Drain every still-queued request into a typed ERROR response.

        The shutdown backstop: after the batchers are gone (drain
        deadline expired, or ``drain=False``), anything left in the
        admission queue would otherwise await a future nobody will
        resolve.  Returns how many requests were failed.
        """
        failed = 0
        while True:
            try:
                pending = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._resolve(
                pending,
                _FlushOutcome(
                    version=self.live_batch.version, error=reason
                ),
            )
            self.queue.task_done()
            failed += 1
        if failed:
            self.emit("serve.drain_expired", value=failed)
        return failed

    def flush(self, batch: list) -> None:
        """Resolve one micro-batch: vet check/predict rows through the
        batch kernel in a single pass, repair rectify rows through the
        row guard, and stamp every outcome with the guardrail version
        its verdict actually ran under."""
        from .. import obs

        vet = [p for p in batch if p.kind in ("check", "predict")]
        repair = [p for p in batch if p.kind == "rectify"]
        metrics = self.metrics
        metrics.batches += 1
        metrics.rows_flushed += len(batch)
        if vet:
            stats = self.guard.stats
            failures_before = stats.failures
            try:
                verdicts = self.guard.check_batch([p.row for p in vet])
            except GuardUnavailableError as error:
                # Strict policy: the guard is down; every row in the
                # flush fails closed with a typed error response.  The
                # guard may never have run (open breaker), so stamp the
                # live version, not the last one a flush ran under.
                outcome = _FlushOutcome(
                    version=self.live_batch.version,
                    error=f"{type(error).__name__}: {error}",
                )
                self.emit("serve.guard_unavailable", value=len(vet))
                for pending in vet:
                    self._resolve(pending, outcome)
            else:
                version = self.live_batch.last_version
                degraded = stats.failures > failures_before
                if degraded:
                    metrics.degraded += len(vet)
                    self.emit("serve.degraded", value=len(vet))
                for pending, verdict in zip(vet, verdicts):
                    if verdict is not None and not verdict.ok:
                        # Tripped rows feed the self-healing loop —
                        # and, with a state_dir, the journal, so a
                        # crash loses no quarantined evidence.
                        self.quarantine.push(dict(pending.row))
                    self._resolve(
                        pending,
                        _FlushOutcome(
                            version=version,
                            verdict=verdict,
                            degraded=degraded,
                        ),
                    )
        for pending in repair:
            self._rectify_one(pending)
        # The counter goes through the per-tenant buffer (replayed by
        # publish_metrics with a worker tag — never emitted live too,
        # which would double-count); the histogram is live-only since
        # buffered events carry counters.
        self.emit("serve.flush", rows=len(batch))
        if obs.enabled():
            obs.observe("serve.batch_fill", len(batch), tenant=self.name)

    def _rectify_one(self, pending) -> None:
        stats = self.row_guard.stats
        failures_before = stats.failures
        try:
            repaired = self.row_guard.rectify(pending.row)
        except GuardUnavailableError as error:
            self._resolve(
                pending,
                _FlushOutcome(
                    version=self.live_row.version,
                    error=f"{type(error).__name__}: {error}",
                ),
            )
            return
        self._resolve(
            pending,
            _FlushOutcome(
                version=self.live_row.last_version,
                row=repaired,
                degraded=stats.failures > failures_before,
            ),
        )

    @staticmethod
    def _resolve(pending: _Pending, outcome: _FlushOutcome) -> None:
        """Resolve one pending future, tolerating a gone caller.

        The awaiting request task may have been cancelled (client
        timeout, ``stop(drain=False)``), which cancels the future;
        ``set_result`` on it would raise ``InvalidStateError`` and
        kill the batcher task, hanging every later request.
        """
        if not pending.future.done():
            pending.future.set_result(outcome)

    # ------------------------------------------------------------------

    def emit(self, name: str, value: float = 1, **attrs) -> None:
        """Buffer one obs-shaped counter event for later merge.

        Events accumulate in :attr:`events` (bounded) regardless of
        whether global tracing is on; ``GuardServer.publish_metrics``
        replays them into the active sink via
        :func:`repro.obs.merge_events` with a per-tenant worker tag.
        """
        self.events.append(
            {
                "type": "counter",
                "name": name,
                "value": value,
                "ts": time.time(),
                "attrs": {"tenant": self.name, **attrs},
            }
        )
