"""One tenant: a named guardrail, its admission queue, and its batcher.

Each registered tenant owns

* a :class:`~repro.resilience.GuardrailVersions` holder (hot-swap under
  live traffic, per tenant);
* live guard proxies (:class:`~repro.resilience.LiveBatchGuard` /
  :class:`~repro.resilience.LiveRowGuard`) wrapped in the resilient
  guards, so a per-tenant :class:`~repro.resilience.GuardPolicy` and
  :class:`~repro.resilience.CircuitBreaker` govern degradation;
* a bounded admission queue: requests coalesce into micro-batches
  (flush on ``max_batch`` rows or ``max_wait_ms``), and an overload
  pipeline sheds deliberately — adaptive admission
  (:class:`~repro.resilience.AdmissionController`) rejects with
  honest jittered ``retry_after`` before the queue-full cliff,
  request deadlines expire at dequeue (typed ``EXPIRED``, no guard
  work wasted), and the server-wide fair-share budget keeps one
  noisy tenant from starving the rest;
* service metrics (:class:`TenantMetrics`) plus an obs-shaped event
  buffer the server replays into the global sink via
  :func:`repro.obs.merge_events`, tagged per tenant exactly as the
  worker pool tags forked workers.  Event timestamps come from the
  shared :data:`~repro.resilience.overload.STEADY_CLOCK` — the same
  source as ``queued_ms`` accounting — so they can never step
  backwards under NTP corrections.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from ..resilience import (
    CircuitBreaker,
    GuardrailVersions,
    QuarantineBuffer,
    ResilientBatchGuard,
    ResilientRowGuard,
)
from ..resilience.overload import (
    STEADY_CLOCK,
    AdmissionController,
    expired as _deadline_expired,
)
from ..resilience.policy import GuardUnavailableError
from ..synth import Guardrail
from .config import ServeMode, TenantConfig
from .responses import ServeResponse, ServeStatus

_LATENCY_WINDOW = 4096
"""Recent per-request latencies kept for percentile reporting."""


@dataclass
class TenantMetrics:
    """Service counters one tenant accumulates (see :meth:`snapshot`)."""

    requests: int = 0
    checks: int = 0
    rectifies: int = 0
    predicts: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    shed_admission: int = 0
    shed_fair_share: int = 0
    events_shed: int = 0
    errors: int = 0
    degraded: int = 0
    gated: int = 0
    voided: int = 0
    batches: int = 0
    rows_flushed: int = 0
    swaps: int = 0
    batcher_restarts: int = 0
    queue_high_water: int = 0
    queued_ms_total: float = 0.0
    service_ms_total: float = 0.0
    service_ms_max: float = 0.0
    latencies_ms: deque = field(
        default_factory=lambda: deque(maxlen=_LATENCY_WINDOW), repr=False
    )

    @property
    def mean_batch_fill(self) -> float:
        """Average rows per flushed micro-batch."""
        if self.batches == 0:
            return 0.0
        return self.rows_flushed / self.batches

    @property
    def mean_service_ms(self) -> float:
        """Average request residency (admission to response)."""
        if self.completed == 0:
            return 0.0
        return self.service_ms_total / self.completed

    def percentile_ms(self, q: float) -> float:
        """The q-th latency percentile over the recent window."""
        window = sorted(self.latencies_ms)
        if not window:
            return 0.0
        index = min(len(window) - 1, int(q * (len(window) - 1) + 0.5))
        return window[index]

    def snapshot(self) -> dict:
        """A plain-dict view (for reports, JSON, and assertions)."""
        return {
            "requests": self.requests,
            "checks": self.checks,
            "rectifies": self.rectifies,
            "predicts": self.predicts,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "shed_admission": self.shed_admission,
            "shed_fair_share": self.shed_fair_share,
            "events_shed": self.events_shed,
            "errors": self.errors,
            "degraded": self.degraded,
            "gated": self.gated,
            "voided": self.voided,
            "batches": self.batches,
            "rows_flushed": self.rows_flushed,
            "swaps": self.swaps,
            "batcher_restarts": self.batcher_restarts,
            "queue_high_water": self.queue_high_water,
            "mean_batch_fill": self.mean_batch_fill,
            "mean_service_ms": self.mean_service_ms,
            "p50_ms": self.percentile_ms(0.50),
            "p95_ms": self.percentile_ms(0.95),
        }


@dataclass
class _Pending:
    """One admitted request waiting in the tenant's queue."""

    kind: str
    row: Mapping[str, Hashable]
    future: asyncio.Future
    request_id: int
    enqueued_at: float
    deadline_at: float | None = None
    holds_token: bool = False


@dataclass(frozen=True)
class _FlushOutcome:
    """What the batcher resolved one pending request with."""

    version: int = 0
    verdict: object = None
    row: Mapping[str, Hashable] | None = None
    degraded: bool = False
    expired: bool = False
    error: str | None = None


class Tenant:
    """Per-tenant serving state; constructed by ``GuardServer.register``.

    Not a public entry point on its own — the server owns the batcher
    task and the request path — but its :attr:`metrics`,
    :attr:`versions`, and :attr:`events` are the per-tenant
    observability surface callers read.
    """

    def __init__(
        self,
        name: str,
        guardrail: "Guardrail | GuardrailVersions",
        config: TenantConfig | None = None,
        predictor: Callable | None = None,
    ):
        self.name = name
        self.config = config or TenantConfig()
        self.versions = (
            guardrail
            if isinstance(guardrail, GuardrailVersions)
            else GuardrailVersions(guardrail)
        )
        self.predictor = predictor
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.failure_threshold,
            recovery_seconds=self.config.recovery_seconds,
            max_retries=0,
        )
        self.live_batch = self.versions.batch_guard(
            batch_size=self.config.max_batch
        )
        self.live_row = self.versions.row_guard()
        self.guard = ResilientBatchGuard(
            self.live_batch,
            policy=self.config.policy,
            breaker=self.breaker,
            watchdog_seconds=self.config.watchdog_seconds,
        )
        self.row_guard = ResilientRowGuard(
            self.live_row,
            policy=self.config.policy,
            breaker=self.breaker,
            watchdog_seconds=self.config.watchdog_seconds,
        )
        self.quarantine = QuarantineBuffer(
            capacity=self.config.quarantine_capacity
        )
        self.metrics = TenantMetrics()
        self.events: deque = deque(maxlen=_LATENCY_WINDOW)
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.queue_size
        )
        self.admission = AdmissionController(
            target_delay_ms=self.config.target_delay_ms,
            min_backlog=self.config.max_batch,
            seed=f"retry:{name}",
        )
        self.limiter = None
        self.brownout = None
        self.drift = None
        self._drift_base_sample_every: int | None = None
        self._emit_tick = 0

    # ------------------------------------------------------------------
    # Overload wiring (attached by the server at registration).
    # ------------------------------------------------------------------

    def attach_overload(self, limiter, brownout) -> None:
        """Bind the server-wide fair-share limiter and brownout
        controller (either may be None) into this tenant's admission
        and flush paths."""
        self.limiter = limiter
        self.brownout = brownout

    def attach_drift(self, detector) -> None:
        """Attach a :class:`~repro.resilience.DriftDetector` to the
        tenant's live row guard so served traffic feeds it — and let
        brownout tier 2 widen its 1-in-k sampling under pressure."""
        self.drift = detector
        self._drift_base_sample_every = getattr(
            detector, "sample_every", None
        )
        self.live_row.attach_drift(detector)

    def effective_mode(self) -> ServeMode:
        """The serve mode in force right now: the configured mode,
        downgraded to blocking at brownout tier >= 1 (parallel races
        are the first optional work shed under pressure)."""
        if (
            self.brownout is not None
            and self.brownout.degrade_parallel
        ):
            return ServeMode.BLOCKING
        return self.config.mode

    def apply_brownout_effects(self) -> None:
        """Make the current brownout tier's degradations effective:
        widen (or restore) the drift detector's sampling interval."""
        if self.drift is None or self._drift_base_sample_every is None:
            return
        factor = (
            self.brownout.drift_widen_factor
            if self.brownout is not None
            else 1
        )
        want = max(1, self._drift_base_sample_every * factor)
        if self.drift.sample_every != want:
            self.drift.sample_every = want
            self.emit("serve.drift_sample_every", value=want)

    # ------------------------------------------------------------------
    # Admission (runs on the event loop, synchronously).
    # ------------------------------------------------------------------

    def admit(
        self,
        kind: str,
        row: Mapping[str, Hashable],
        request_id: int,
        deadline_ms: "float | None" = None,
    ) -> "_Pending | ServeResponse":
        """Enqueue one request, or shed it with a typed response.

        The admission pipeline, in order: an already-spent deadline is
        EXPIRED on the spot; a full queue or an adaptive-admission
        shed (standing queue delay above the tenant's target) is
        REJECTED with an honest jittered ``retry_after``; the
        server-wide fair-share budget rejects a tenant past its
        guarantee when the server has no headroom.  Returns the
        queued :class:`_Pending` (whose future the batcher will
        resolve) otherwise — shedding is a response, never an
        exception.
        """
        metrics = self.metrics
        metrics.requests += 1
        if kind == "check":
            metrics.checks += 1
        elif kind == "rectify":
            metrics.rectifies += 1
        else:
            metrics.predicts += 1
        now = STEADY_CLOCK.monotonic()
        if deadline_ms is not None and deadline_ms <= 0:
            metrics.expired += 1
            self.emit("serve.expired", kind=kind)
            return ServeResponse(
                status=ServeStatus.EXPIRED,
                tenant=self.name,
                kind=kind,
                request_id=request_id,
                version=self.live_batch.version,
            )
        depth = self.queue.qsize()
        if self.queue.full():
            metrics.rejected += 1
            self.emit("serve.rejected", kind=kind)
            return self._reject(kind, request_id)
        if self.admission.should_shed(depth, now):
            metrics.rejected += 1
            metrics.shed_admission += 1
            self.emit("serve.shed_admission", kind=kind)
            return self._reject(kind, request_id)
        holds_token = False
        if self.limiter is not None:
            if not self.limiter.try_acquire(self.name):
                metrics.rejected += 1
                metrics.shed_fair_share += 1
                self.emit("serve.shed_fair_share", kind=kind)
                return self._reject(kind, request_id)
            holds_token = True
        pending = _Pending(
            kind=kind,
            row=row,
            future=asyncio.get_running_loop().create_future(),
            request_id=request_id,
            enqueued_at=now,
            deadline_at=(
                None if deadline_ms is None else now + deadline_ms / 1000.0
            ),
            holds_token=holds_token,
        )
        self.queue.put_nowait(pending)
        depth = self.queue.qsize()
        if depth > metrics.queue_high_water:
            metrics.queue_high_water = depth
        return pending

    def _reject(self, kind: str, request_id: int) -> ServeResponse:
        return ServeResponse(
            status=ServeStatus.REJECTED,
            tenant=self.name,
            kind=kind,
            request_id=request_id,
            retry_after=self.retry_after(),
        )

    def release_token(self, pending: "_Pending") -> None:
        """Return the request's fair-share token (idempotent)."""
        if pending.holds_token:
            pending.holds_token = False
            if self.limiter is not None:
                self.limiter.release(self.name)

    def retry_after(self) -> float:
        """Suggested backoff for one shed request: the *measured*
        time the current backlog needs to drain (falling back to the
        configured flush cadence plus observed mean service time
        before any flush has been measured), jittered ±20% so two
        clients rejected together don't re-arrive in lockstep."""
        config = self.config
        backlog = self.queue.qsize()
        backlog_flushes = backlog / config.max_batch + 1.0
        per_flush = config.max_wait_ms / 1000.0 + (
            self.metrics.mean_service_ms / 1000.0
        )
        fallback = backlog_flushes * max(per_flush, 1e-4)
        return self.admission.retry_hint(backlog, fallback)

    # ------------------------------------------------------------------
    # The batcher (one task per tenant, owned by the server).
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Drain the admission queue forever, flushing micro-batches.

        A flush fires at ``max_batch`` queued rows or ``max_wait_ms``
        after the first row, whichever comes first — and never later
        than 75% of the earliest request deadline in hand, so a
        batch's budget bounds its flush while the deadline request can
        still be served.  The flush itself is synchronous (no
        awaits), so a whole batch runs under one atomic guard
        snapshot and swaps land only between flushes.
        """
        config = self.config
        while True:
            batch = [await self.queue.get()]
            deadline = (
                STEADY_CLOCK.monotonic() + config.max_wait_ms / 1000.0
            )
            try:
                while len(batch) < config.max_batch:
                    budget = deadline
                    for pending in batch:
                        if pending.deadline_at is not None:
                            # Flush at 75% of the request's budget,
                            # not at the deadline itself: a batch cut
                            # exactly at the deadline would expire the
                            # very request it was cut for.
                            margin = 0.25 * (
                                pending.deadline_at
                                - pending.enqueued_at
                            )
                            budget = min(
                                budget, pending.deadline_at - margin
                            )
                    remaining = budget - STEADY_CLOCK.monotonic()
                    if remaining <= 0:
                        break
                    # Not ``wait_for``: when an external cancel races
                    # its timeout, ``wait_for`` reports TimeoutError
                    # and the cancellation is swallowed — a draining
                    # stop() could then never interrupt a busy
                    # batcher.  ``asyncio.wait`` lets CancelledError
                    # propagate; a just-dequeued item is rescued into
                    # the batch so the cancel handler resolves it.
                    getter = asyncio.ensure_future(self.queue.get())
                    try:
                        done, _ = await asyncio.wait(
                            {getter}, timeout=remaining
                        )
                    except asyncio.CancelledError:
                        if getter.done() and not getter.cancelled():
                            batch.append(getter.result())
                        else:
                            getter.cancel()
                        raise
                    if getter in done:
                        batch.append(getter.result())
                    else:
                        getter.cancel()
                        break
            except asyncio.CancelledError:
                # Killed (chaos, ``stop(drain=False)``) with a batch in
                # hand: the in-hand requests must not be stranded —
                # resolve them with typed ERROR responses, then die.
                self.fail_batch(batch, "batcher cancelled before flush")
                raise
            try:
                self.flush(batch)
            except Exception as error:
                # The service contract is "never an exception": an
                # unexpected flush failure resolves every still-pending
                # request with a typed ERROR outcome and the batcher
                # keeps draining — it must outlive any single batch.
                self.emit("serve.flush_error", value=len(batch))
                outcome = _FlushOutcome(
                    version=self.live_batch.version,
                    error=f"{type(error).__name__}: {error}",
                )
                for pending in batch:
                    self._resolve(pending, outcome)
            finally:
                for _ in batch:
                    self.queue.task_done()

    def fail_batch(self, batch: list, reason: str) -> None:
        """Resolve a batch the batcher will never flush with typed
        outcomes (and balance the queue's join accounting).

        Same deadline honesty as :meth:`fail_pending`: a request whose
        own budget had already run out resolves EXPIRED, the rest
        resolve with a typed ERROR.
        """
        now = STEADY_CLOCK.monotonic()
        version = self.live_batch.version
        for pending in batch:
            if _deadline_expired(pending.deadline_at, now):
                outcome = _FlushOutcome(version=version, expired=True)
            else:
                outcome = _FlushOutcome(version=version, error=reason)
            self._resolve(pending, outcome)
            self.queue.task_done()

    def fail_pending(self, reason: str) -> int:
        """Drain every still-queued request into a typed response.

        The shutdown backstop: after the batchers are gone (drain
        deadline expired, or ``drain=False``), anything left in the
        admission queue would otherwise await a future nobody will
        resolve.  A request whose own deadline has already passed
        resolves EXPIRED (its budget ran out — that is the truthful
        status, not an error); everything else resolves with a typed
        ERROR.  Returns how many requests were drained.
        """
        failed = 0
        now = STEADY_CLOCK.monotonic()
        version = self.live_batch.version
        while True:
            try:
                pending = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if _deadline_expired(pending.deadline_at, now):
                outcome = _FlushOutcome(version=version, expired=True)
            else:
                outcome = _FlushOutcome(version=version, error=reason)
            self._resolve(pending, outcome)
            self.queue.task_done()
            failed += 1
        if failed:
            self.emit("serve.drain_expired", value=failed)
        return failed

    def flush(self, batch: list) -> None:
        """Resolve one micro-batch: vet check/predict rows through the
        batch kernel in a single pass, repair rectify rows through the
        row guard, and stamp every outcome with the guardrail version
        its verdict actually ran under.

        Requests whose deadline passed while they queued are shed
        *here*, at dequeue, with a typed EXPIRED outcome — the guard
        never runs for them, so an expired request costs the service
        nothing but its queue slot.  Every dequeued request's sojourn
        time feeds the tenant's admission controller, and the flush
        as a whole feeds its drain-rate estimate and the server-wide
        brownout controller's pressure signal.
        """
        from .. import obs

        now = STEADY_CLOCK.monotonic()
        live = []
        for pending in batch:
            if _deadline_expired(pending.deadline_at, now):
                self._resolve(
                    pending,
                    _FlushOutcome(
                        version=self.live_batch.version, expired=True
                    ),
                )
            else:
                live.append(pending)
            self.admission.observe_sojourn(
                (now - pending.enqueued_at) * 1000.0, now
            )
        if len(live) < len(batch):
            self.emit("serve.expired", value=len(batch) - len(live))
        vet = [p for p in live if p.kind in ("check", "predict")]
        repair = [p for p in live if p.kind == "rectify"]
        metrics = self.metrics
        metrics.batches += 1
        metrics.rows_flushed += len(live)
        if vet:
            stats = self.guard.stats
            failures_before = stats.failures
            try:
                verdicts = self.guard.check_batch([p.row for p in vet])
            except GuardUnavailableError as error:
                # Strict policy: the guard is down; every row in the
                # flush fails closed with a typed error response.  The
                # guard may never have run (open breaker), so stamp the
                # live version, not the last one a flush ran under.
                outcome = _FlushOutcome(
                    version=self.live_batch.version,
                    error=f"{type(error).__name__}: {error}",
                )
                self.emit("serve.guard_unavailable", value=len(vet))
                for pending in vet:
                    self._resolve(pending, outcome)
            else:
                version = self.live_batch.last_version
                degraded = stats.failures > failures_before
                if degraded:
                    metrics.degraded += len(vet)
                    self.emit("serve.degraded", value=len(vet))
                for pending, verdict in zip(vet, verdicts):
                    if verdict is not None and not verdict.ok:
                        # Tripped rows feed the self-healing loop —
                        # and, with a state_dir, the journal, so a
                        # crash loses no quarantined evidence.
                        self.quarantine.push(dict(pending.row))
                    self._resolve(
                        pending,
                        _FlushOutcome(
                            version=version,
                            verdict=verdict,
                            degraded=degraded,
                        ),
                    )
        for pending in repair:
            self._rectify_one(pending)
        self.admission.observe_flush(
            len(live), STEADY_CLOCK.monotonic()
        )
        if self.brownout is not None:
            self.brownout.observe(self.admission.overloaded)
            self.apply_brownout_effects()
        # The counter goes through the per-tenant buffer (replayed by
        # publish_metrics with a worker tag — never emitted live too,
        # which would double-count); the histogram is live-only since
        # buffered events carry counters.
        self.emit("serve.flush", rows=len(live))
        if obs.enabled():
            obs.observe("serve.batch_fill", len(live), tenant=self.name)

    def _rectify_one(self, pending) -> None:
        stats = self.row_guard.stats
        failures_before = stats.failures
        try:
            repaired = self.row_guard.rectify(pending.row)
        except GuardUnavailableError as error:
            self._resolve(
                pending,
                _FlushOutcome(
                    version=self.live_row.version,
                    error=f"{type(error).__name__}: {error}",
                ),
            )
            return
        self._resolve(
            pending,
            _FlushOutcome(
                version=self.live_row.last_version,
                row=repaired,
                degraded=stats.failures > failures_before,
            ),
        )

    @staticmethod
    def _resolve(pending: _Pending, outcome: _FlushOutcome) -> None:
        """Resolve one pending future, tolerating a gone caller.

        The awaiting request task may have been cancelled (client
        timeout, ``stop(drain=False)``), which cancels the future;
        ``set_result`` on it would raise ``InvalidStateError`` and
        kill the batcher task, hanging every later request.
        """
        if not pending.future.done():
            pending.future.set_result(outcome)

    # ------------------------------------------------------------------

    def emit(self, name: str, value: float = 1, **attrs) -> None:
        """Buffer one obs-shaped counter event for later merge.

        Events accumulate in :attr:`events` (bounded) regardless of
        whether global tracing is on; ``GuardServer.publish_metrics``
        replays them into the active sink via
        :func:`repro.obs.merge_events` with a per-tenant worker tag.
        Timestamps come from the shared
        :data:`~repro.resilience.overload.STEADY_CLOCK` — the same
        monotonic source ``queued_ms`` accounting uses — so an NTP
        step can never make event time run backwards, and at brownout
        tier 2 events are sampled 1-in-8 (the shed count is kept on
        :attr:`TenantMetrics.events_shed`).
        """
        if (
            self.brownout is not None
            and self.brownout.shed_observability
        ):
            self._emit_tick += 1
            if self._emit_tick % 8 != 1:
                self.metrics.events_shed += 1
                return
        self.events.append(
            {
                "type": "counter",
                "name": name,
                "value": value,
                "ts": STEADY_CLOCK.now(),
                "attrs": {"tenant": self.name, **attrs},
            }
        )
