"""Async multi-tenant guard serving (the "millions of users" shape).

The batch pipeline synthesizes and checks relations offline; this
package is the long-lived deployment front-end over the same machinery:

* :class:`GuardServer` — an asyncio service registering many named
  guardrails (tenants) and accepting concurrent ``check`` /
  ``rectify`` / ``predict`` requests;
* per-tenant admission queues coalesce requests into
  :class:`~repro.errors.BatchGuard` micro-batches (flush on
  ``max_batch`` or ``max_wait_ms``) — verdicts stay bit-identical to
  a direct serial ``check_batch`` over the same rows;
* bounded queues give typed backpressure: a full tenant rejects with
  a :attr:`~repro.serve.ServeStatus.REJECTED` response carrying
  ``retry_after``, never an exception — and overload control
  (:mod:`repro.resilience.overload`) sheds *before* the cliff:
  adaptive admission on queue sojourn time, request ``deadline_ms``
  budgets (typed :attr:`~repro.serve.ServeStatus.EXPIRED` at
  dequeue), a weighted fair-share concurrency budget across tenants
  (``GuardServer(budget=...)``), and brownout degradation tiers with
  hysteresis;
* per-tenant :class:`~repro.resilience.GuardPolicy` +
  :class:`~repro.resilience.CircuitBreaker` govern degradation, and
  :class:`~repro.resilience.GuardrailVersions` gives per-tenant
  hot-swap under live traffic (no request observes a torn version);
* two execution modes per tenant (:class:`ServeMode`): *blocking*
  (the verdict gates the predict stage) and *parallel* (the predict
  stage races the guard; a tripwire voids its output) — the latency
  / cost tradeoff from the openai-agents guardrails playbook;
* optional durability (``GuardServer(state_dir=...)``): control-plane
  events and quarantined rows are write-ahead journaled, snapshots
  bound replay, and :meth:`GuardServer.recover` rebuilds every tenant
  at its last committed version after a crash (``repro recover`` from
  the CLI).

    server = GuardServer()
    server.register("acme", guardrail, TenantConfig(mode="blocking"))
    async with server:
        response = await server.check("acme", row)
        response.verdict.ok, response.version

CLI: ``repro serve guardrail.dsl traffic.csv --tenants 4 --clients 16``
drives a closed-loop workload and prints the per-tenant service report.
"""

from .config import ServeMode, TenantConfig
from .metrics import render_service_report
from .responses import ServeResponse, ServeStatus
from .server import GuardServer
from .tenant import Tenant, TenantMetrics

__all__ = [
    "GuardServer",
    "ServeMode",
    "ServeResponse",
    "ServeStatus",
    "Tenant",
    "TenantConfig",
    "TenantMetrics",
    "render_service_report",
]
