"""Local and global non-triviality of sketches (paper §4.1).

* **LNT** (Def. 4.1): a statement sketch is locally non-trivial when its
  dependent attribute is statistically dependent on its determinant set
  — i.e., there exists a concretization beating a random guess.
* **GNT** (Def. 4.2): every statement stays informative after
  conditioning on the structure captured by the other statements —
  ruling out redundant sketches like ``GIVEN PostalCode ON State`` when
  ``GIVEN City ON State`` is already present (Example 4.1).

Both checks reduce to (conditional) dependence queries.  Determinant
*sets* are handled by compounding them into a single composite variable
(the Cartesian product of their codes), which is exact for testing joint
dependence on discrete data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..pgm.independence import CITester
from ..relation import MISSING
from .ast import ProgramSketch, StatementSketch


def compound_codes(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Collapse several code columns into one composite code column.

    Each distinct combination receives a dense code; rows with a missing
    component become missing in the composite.
    """
    if not columns:
        raise ValueError("need at least one column")
    stacked = np.column_stack(columns)
    missing = np.any(stacked == MISSING, axis=1)
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    out = inverse.astype(np.int32)
    out[missing] = MISSING
    return out


class SketchJudge:
    """Answers LNT/GNT queries against a CI tester's dataset."""

    def __init__(self, tester: CITester):
        self._tester = tester
        self._names = tester.names
        self._compound_cache: dict[tuple[str, ...], str] = {}

    def _composite(self, attributes: tuple[str, ...]) -> str:
        """Name of (possibly newly materialized) composite column."""
        if len(attributes) == 1:
            return attributes[0]
        key = tuple(sorted(attributes))
        if key in self._compound_cache:
            return self._compound_cache[key]
        name = "&".join(key)
        columns = [
            self._tester._codes[:, self._tester._positions[a]] for a in key
        ]
        composite = compound_codes(columns)
        self._tester._codes = np.column_stack(
            [self._tester._codes, composite]
        )
        self._tester._positions[name] = self._tester._codes.shape[1] - 1
        self._tester._names.append(name)
        self._compound_cache[key] = name
        return name

    def is_lnt(self, sketch: StatementSketch) -> bool:
        """Def. 4.1: dependent ⊥̸ determinants."""
        composite = self._composite(sketch.determinants)
        return not self._tester.independent(sketch.dependent, composite)

    def is_gnt(self, program: ProgramSketch) -> bool:
        """Def. 4.2 for the whole sketch (requires LNT throughout)."""
        return all(self.statement_is_gnt(s, program) for s in program)

    def statement_is_gnt(
        self, sketch: StatementSketch, program: ProgramSketch
    ) -> bool:
        """Is ``sketch`` still informative given every other sketch?

        Following the proof of Thm. 4.1, we require the dependence
        ``a_j ⊥̸ a_k | a_z`` to survive conditioning on the determinant
        sets ``a_z`` contributed by the other statement sketches
        (skipping conditioning sets that overlap the tested pair).
        """
        if not self.is_lnt(sketch):
            return False
        blocked = set(sketch.determinants) | {sketch.dependent}
        composite = self._composite(sketch.determinants)
        for other in program:
            if other == sketch:
                continue
            conditioning = tuple(
                a for a in other.determinants if a not in blocked
            )
            if not conditioning:
                continue
            if self._tester.independent(
                sketch.dependent, composite, conditioning
            ):
                return False
        return True

    def prune_to_gnt(self, program: ProgramSketch) -> ProgramSketch:
        """Drop statements until the sketch is GNT.

        Greedy: repeatedly remove a statement that fails the GNT check
        (non-LNT statements go first).  Used as a post-processing pass
        when structure learning produced redundant edges.
        """
        statements = [s for s in program if self.is_lnt(s)]
        changed = True
        while changed:
            changed = False
            current = ProgramSketch(tuple(statements))
            for statement in list(statements):
                if not self.statement_is_gnt(statement, current):
                    statements.remove(statement)
                    changed = True
                    break
        return ProgramSketch(tuple(statements))
