"""Algorithm 1: fill a program sketch against a dataset (paper §3.2).

For each statement sketch ``GIVEN det ON dep HAVING □``:

1. the *warranted conditions* are the determinant value combinations
   observed in the data (``comb(det)``, line 11);
2. for each condition, the best-fit literal ``l*`` is the mode of the
   dependent attribute among matching rows (the 0/1-loss minimizer,
   line 14);
3. the branch is kept iff it is ε-valid: ``loss <= |D^b| * ε``
   (line 15);
4. a statement materializes only if at least one branch survives
   (line 19), otherwise the sketch yields ⊥.

The grouping work is vectorized over the relation's code arrays, and a
statement-level cache (paper §7) shares fills across the many DAGs of a
Markov equivalence class, which mostly differ in a few edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..dsl.ast import Branch, Condition, Program, Statement
from ..dsl.compiled import prime_condition_mask
from ..relation import MISSING, Relation
from .ast import ProgramSketch, StatementSketch


@dataclass
class FillStats:
    """Bookkeeping for the ablation benches."""

    statements_filled: int = 0
    cache_hits: int = 0
    branches_considered: int = 0
    branches_kept: int = 0


@dataclass
class FillCache:
    """Statement-level memo: sketch → concretized statement (or None).

    Entries are only valid for one (relation, ε, min_support) context.
    Within a single :func:`repro.synth.synthesize` run that is
    automatic; a cache *shared across runs* (the self-healing loop
    reuses one across re-synthesis attempts) must call :meth:`scope`
    first, which flushes stale entries whenever the data or the fill
    parameters changed.
    """

    entries: dict[StatementSketch, Statement | None] = field(
        default_factory=dict
    )
    scope_token: tuple | None = None
    """Fingerprint of the context the current entries were filled in."""
    invalidations: int = 0
    """How many times :meth:`scope` flushed stale entries."""

    def get(self, sketch: StatementSketch):
        """The cached fill for ``sketch`` (miss sentinel when absent)."""
        return self.entries.get(sketch, _MISS)

    def put(self, sketch: StatementSketch, statement: Statement | None) -> None:
        """Memoize the fill result for ``sketch``."""
        self.entries[sketch] = statement

    def scope(
        self, relation: Relation, epsilon: float, min_support: int = 1
    ) -> "FillCache":
        """Bind the cache to a fill context, flushing stale entries.

        The token covers the relation's *content* (row count, attribute
        names, a digest of the encoded cells) plus ε and min_support,
        so identical re-fills hit while any change — one edited cell,
        a different tolerance — invalidates rather than serving a fill
        computed against other data.  Returns ``self`` for chaining.
        """
        import hashlib

        digest = hashlib.sha256(relation.codes_matrix().tobytes())
        token = (
            relation.n_rows,
            relation.names,
            float(epsilon),
            int(min_support),
            digest.hexdigest()[:16],
        )
        if self.scope_token is not None and self.scope_token != token:
            self.entries.clear()
            self.invalidations += 1
        self.scope_token = token
        return self

    def __len__(self) -> int:
        return len(self.entries)


_MISS = object()


def fill_statement_sketch(
    sketch: StatementSketch,
    relation: Relation,
    epsilon: float,
    min_support: int = 1,
    stats: FillStats | None = None,
) -> Statement | None:
    """Concretize one statement sketch (Alg. 1, FillStmtSketch).

    Returns None (the paper's ⊥) when no branch is ε-valid.

    Parameters
    ----------
    epsilon:
        Noise tolerance of Eqn. 3.
    min_support:
        Conditions observed fewer than this many times are not
        warranted (guards against one-off value combinations).
    """
    determinants = list(sketch.determinants)
    dependent = sketch.dependent
    groups = relation.group_indices(determinants)
    dep_codes = relation.codes(dependent)
    dep_codec = relation.codec(dependent)

    branches: list[Branch] = []
    for config, indices in sorted(groups.items()):
        if MISSING in config:
            continue  # a corrupted determinant cell warrants nothing
        support = indices.size
        if support < min_support:
            continue
        if stats is not None:
            stats.branches_considered += 1
        values = dep_codes[indices]
        values = values[values != MISSING]
        if values.size == 0:
            continue
        counts = np.bincount(values)
        best_code = int(np.argmax(counts))
        loss = support - int(counts[best_code])
        if loss > support * epsilon:
            continue
        atoms = tuple(
            (name, relation.codec(name).decode_one(code))
            for name, code in zip(determinants, config)
        )
        literal = dep_codec.decode_one(best_code)
        branch = Branch(Condition(atoms), dependent, literal)
        branches.append(branch)
        # The group already IS the condition's row set; hand it to the
        # shared mask cache so downstream metrics/detection skip the
        # recompute.
        mask = np.zeros(relation.n_rows, dtype=bool)
        mask[indices] = True
        prime_condition_mask(branch.condition, relation, mask)
        if stats is not None:
            stats.branches_kept += 1

    if not branches:
        return None
    if stats is not None:
        stats.statements_filled += 1
    return Statement(tuple(determinants), dependent, tuple(branches))


def fill_program_sketch(
    sketch: ProgramSketch,
    relation: Relation,
    epsilon: float,
    min_support: int = 1,
    cache: FillCache | None = None,
    stats: FillStats | None = None,
    budget=None,
) -> Program:
    """Concretize a whole program sketch (Alg. 1, main loop).

    Statement sketches that concretize to ⊥ are dropped; the rest keep
    the sketch's order.

    With a :class:`repro.resilience.Budget`, one step is charged per
    statement fill (cache hits are free) and exhaustion stops the loop:
    the statements concretized so far still form a valid program.
    """
    traced = obs.enabled()
    statements: list[Statement] = []
    with obs.span("sketch.fill_program", sketch_size=len(sketch)):
        for statement_sketch in sketch:
            if budget is not None and budget.exhausted():
                break
            if cache is not None:
                hit = cache.get(statement_sketch)
                if hit is not _MISS:
                    if stats is not None:
                        stats.cache_hits += 1
                    if traced:
                        obs.count("sketch.fill.cache_hit")
                    if hit is not None:
                        statements.append(hit)
                    continue
            if traced:
                obs.count("sketch.fill.cache_miss")
            if budget is not None:
                budget.spend(1, kind="sketch.fill")
            filled = fill_statement_sketch(
                statement_sketch,
                relation,
                epsilon,
                min_support=min_support,
                stats=stats,
            )
            if cache is not None:
                cache.put(statement_sketch, filled)
            if filled is not None:
                statements.append(filled)
    return Program(tuple(statements))
