"""Sketch language, Algorithm 1 (fill), and non-triviality checks."""

from .ast import ProgramSketch, StatementSketch
from .fill import FillCache, FillStats, fill_program_sketch, fill_statement_sketch
from .nontriviality import SketchJudge, compound_codes

__all__ = [
    "ProgramSketch",
    "StatementSketch",
    "FillCache",
    "FillStats",
    "fill_program_sketch",
    "fill_statement_sketch",
    "SketchJudge",
    "compound_codes",
]
