"""The sketch language S (paper §3.2, Fig. 3).

A sketch keeps the GIVEN/ON structure of a program — the inter-attribute
dependency skeleton — and leaves every HAVING clause as a hole (□)::

    p[·] ∈ ProgSketch := s*
    s[·] ∈ StmtSketch := GIVEN a+ ON a HAVING □

Sketches are derived from PGM structure (a statement sketch per node
with a non-empty parent set) and concretized by Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..dsl.ast import DslError
from ..pgm.dag import DAG


@dataclass(frozen=True)
class StatementSketch:
    """``GIVEN determinants ON dependent HAVING □``."""

    determinants: tuple[str, ...]
    dependent: str

    def __post_init__(self) -> None:
        if not self.determinants:
            raise DslError("a statement sketch needs at least one determinant")
        if len(set(self.determinants)) != len(self.determinants):
            raise DslError("duplicate determinant attributes in sketch")
        if self.dependent in self.determinants:
            raise DslError("dependent cannot be among the determinants")
        object.__setattr__(
            self, "determinants", tuple(sorted(self.determinants))
        )

    def __str__(self) -> str:
        return (
            f"GIVEN {', '.join(self.determinants)} "
            f"ON {self.dependent} HAVING []"
        )


@dataclass(frozen=True)
class ProgramSketch:
    """A whole-program sketch: one statement sketch per modeled attribute."""

    statements: tuple[StatementSketch, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, statements: Iterable[StatementSketch]) -> "ProgramSketch":
        """Build a program sketch from statement sketches."""
        return cls(tuple(statements))

    @classmethod
    def from_dag(cls, dag: DAG) -> "ProgramSketch":
        """Extract the sketch a DAG entails (Alg. 2, lines 4–9).

        Each node with a non-empty parent set yields
        ``GIVEN parents ON node HAVING □``; root nodes yield nothing.
        Statements follow the DAG's topological order so that later
        rectification repairs upstream attributes first.
        """
        sketches = []
        for node in dag.topological_order():
            parents = dag.parents(node)
            if parents:
                sketches.append(StatementSketch(tuple(sorted(parents)), node))
        return cls(tuple(sketches))

    def __iter__(self) -> Iterator[StatementSketch]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __bool__(self) -> bool:
        return bool(self.statements)

    def attributes(self) -> set[str]:
        """Every attribute mentioned by the sketch."""
        out: set[str] = set()
        for sketch in self.statements:
            out.update(sketch.determinants)
            out.add(sketch.dependent)
        return out

    def __str__(self) -> str:
        if not self.statements:
            return "<empty sketch>"
        return "\n".join(str(s) for s in self.statements)
