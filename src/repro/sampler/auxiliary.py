"""The auxiliary binary distribution 𝕀 (paper Def. 4.5, §4.6).

High-cardinality categorical data makes PGM structure learning hard
(sparse contingency tables).  GUARDRAIL instead learns from the
*auxiliary distribution*: draw two rows ``t1, t2`` and record, per
attribute ``a_k``, the indicator ``𝕀_k = [t1(a_k) == t2(a_k)]``.  The
appendix proves conditional-independence structure is preserved, so the
PGM of 𝕀 equals the PGM of the raw data — but every variable is now
binary, which keeps the CI tests well-conditioned.

Sampling row pairs uses the *circular shift trick* from FDX [43]: pair
row ``i`` with row ``(i + shift) mod n`` for several shifts, which is a
fully vectorized way of drawing (almost) independent pairs without
replacement bookkeeping.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..relation import MISSING, Relation


class Sampler(Protocol):
    """Transforms a relation into the code matrix structure learning sees."""

    name: str

    def transform(
        self, relation: Relation, rng: np.random.Generator
    ) -> tuple[np.ndarray, list[str]]:
        """Return ``(codes, names)`` for the CI tester."""
        ...  # pragma: no cover - protocol


class IdentitySampler:
    """Feed the raw integer codes to the structure learner (the ablation
    baseline of Table 8)."""

    name = "identity"

    def transform(
        self, relation: Relation, rng: np.random.Generator
    ) -> tuple[np.ndarray, list[str]]:
        """Return the raw categorical codes (the ablation baseline)."""
        names = list(relation.schema.categorical_names())
        return relation.codes_matrix(names), names


def auxiliary_codes(
    codes: np.ndarray,
    shifts: Sequence[int],
) -> np.ndarray:
    """Vectorized 𝕀 samples from a code matrix via circular shifts.

    For each shift ``s`` the matrix is compared element-wise against
    itself rolled by ``s`` rows; results are stacked.  Cells where either
    side is missing yield 0 (distinct), matching Def. 4.5's treatment of
    corrupted values as simply "not equal".
    """
    if codes.ndim != 2:
        raise ValueError("codes must be a 2-D matrix")
    n_rows = codes.shape[0]
    blocks = []
    for shift in shifts:
        if not 1 <= shift < max(n_rows, 2):
            raise ValueError(f"shift {shift} out of range for {n_rows} rows")
        rolled = np.roll(codes, shift % n_rows, axis=0)
        equal = (codes == rolled) & (codes != MISSING) & (rolled != MISSING)
        blocks.append(equal.astype(np.int32))
    return np.vstack(blocks)


class AuxiliarySampler:
    """Draw binary 𝕀 samples with the circular shift trick.

    Parameters
    ----------
    n_shifts:
        Number of circular shifts; the output has ``n_shifts * n_rows``
        binary rows.
    target_samples:
        When set, the shift count is raised adaptively so the output has
        at least this many rows (capped at ``max_shifts``) — small
        datasets need the extra pairs because the indicator transform
        squares dependence strengths and weak marginal signals would
        otherwise fall below the CI test's power.
    max_rows:
        Optional cap on the total number of output rows (keeps the CI
        tests cheap on large datasets); rows are subsampled uniformly.
    """

    name = "auxiliary"

    def __init__(
        self,
        n_shifts: int = 5,
        target_samples: int | None = 24_000,
        max_shifts: int = 40,
        max_rows: int | None = 200_000,
    ):
        if n_shifts < 1:
            raise ValueError("n_shifts must be >= 1")
        self.n_shifts = n_shifts
        self.target_samples = target_samples
        self.max_shifts = max_shifts
        self.max_rows = max_rows

    def _shift_count(self, n_rows: int) -> int:
        count = self.n_shifts
        if self.target_samples is not None:
            needed = -(-self.target_samples // max(n_rows, 1))
            count = max(count, needed)
        return min(count, self.max_shifts, max(n_rows - 1, 1))

    def transform(
        self, relation: Relation, rng: np.random.Generator
    ) -> tuple[np.ndarray, list[str]]:
        """Encode the relation as auxiliary indicator samples (Def. 4.5)."""
        names = list(relation.schema.categorical_names())
        codes = relation.codes_matrix(names)
        n_rows = codes.shape[0]
        if n_rows < 2:
            return np.zeros((0, len(names)), dtype=np.int32), names
        shifts = _choose_shifts(n_rows, self._shift_count(n_rows), rng)
        binary = auxiliary_codes(codes, shifts)
        if self.max_rows is not None and binary.shape[0] > self.max_rows:
            keep = rng.choice(binary.shape[0], size=self.max_rows, replace=False)
            binary = binary[keep]
        return binary, names


def _choose_shifts(
    n_rows: int, n_shifts: int, rng: np.random.Generator
) -> list[int]:
    """Distinct shifts in [1, n_rows); deterministic under the given rng."""
    available = n_rows - 1
    count = min(n_shifts, available)
    if count == available:
        return list(range(1, n_rows))
    picks = rng.choice(available, size=count, replace=False) + 1
    return sorted(int(s) for s in picks)
