"""Samplers feeding the structure learner (paper §4.6, Table 8)."""

from .auxiliary import AuxiliarySampler, IdentitySampler, Sampler, auxiliary_codes

__all__ = ["Sampler", "IdentitySampler", "AuxiliarySampler", "auxiliary_codes"]
