"""FD-discovery baselines compared against GUARDRAIL (§8.1)."""

from .conformance import (
    ConformanceGuard,
    LinearConstraint,
    RangeConstraint,
)
from .ctane import CFDErrorDetector, ConstantCFD, CTaneResult, ctane
from .fd import (
    FD,
    FDErrorDetector,
    StrippedPartition,
    fd_holds,
    g3_error,
    minimal_cover,
)
from .fdx import FdxIllConditioned, FdxResult, fdx
from .tane import TaneResult, tane

__all__ = [
    "ConformanceGuard",
    "RangeConstraint",
    "LinearConstraint",
    "FD",
    "FDErrorDetector",
    "StrippedPartition",
    "fd_holds",
    "g3_error",
    "minimal_cover",
    "TaneResult",
    "tane",
    "ConstantCFD",
    "CFDErrorDetector",
    "CTaneResult",
    "ctane",
    "FdxIllConditioned",
    "FdxResult",
    "fdx",
]
