"""Conformance constraints for numeric attributes (paper §6).

GUARDRAIL's DSL targets categorical attributes; the paper positions
Conformance Constraints [10] as the complementary technique for
*numeric* columns and notes the two "can be used in conjunction".  This
module implements that companion: it learns arithmetic envelopes from
clean data and flags rows that fall outside them.

Two constraint families are learned:

* **Range constraints** — robust per-column bounds
  ``[q1 - k·IQR, q3 + k·IQR]`` (Tukey fences), immune to a few
  training-side outliers.
* **Linear residual constraints** — for strongly correlated column
  pairs, the least-squares fit ``y ≈ a·x + b`` plus a robust bound on
  the residual, catching jointly-impossible values that are
  individually in range (the essence of conformance constraints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from ..relation import Relation


@dataclass(frozen=True)
class RangeConstraint:
    """``low <= column <= high`` (NaN never violates)."""

    column: str
    low: float
    high: float

    def violations(self, values: np.ndarray) -> np.ndarray:
        """Mask of rows outside ``[low, high]`` (NaN never violates)."""
        with np.errstate(invalid="ignore"):
            out = (values < self.low) | (values > self.high)
        return out & ~np.isnan(values)

    def __str__(self) -> str:
        return f"{self.low:.4g} <= {self.column} <= {self.high:.4g}"


@dataclass(frozen=True)
class LinearConstraint:
    """``|y - (slope·x + intercept)| <= bound`` for a correlated pair."""

    x: str
    y: str
    slope: float
    intercept: float
    bound: float
    correlation: float

    def residuals(
        self, x_values: np.ndarray, y_values: np.ndarray
    ) -> np.ndarray:
        """Signed residuals ``y - (slope*x + intercept)`` per row."""
        return y_values - (self.slope * x_values + self.intercept)

    def violations(
        self, x_values: np.ndarray, y_values: np.ndarray
    ) -> np.ndarray:
        """Mask of rows whose absolute residual exceeds the bound."""
        residual = self.residuals(x_values, y_values)
        with np.errstate(invalid="ignore"):
            out = np.abs(residual) > self.bound
        return out & ~np.isnan(residual)

    def __str__(self) -> str:
        return (
            f"|{self.y} - ({self.slope:.4g}*{self.x} + "
            f"{self.intercept:.4g})| <= {self.bound:.4g}"
        )


@dataclass
class ConformanceGuard:
    """Learn and enforce numeric conformance constraints.

    Parameters
    ----------
    iqr_multiplier:
        Width of the Tukey fences (default 3.0 — "far out").
    min_correlation:
        Only column pairs with |Pearson r| above this learn a linear
        constraint.
    residual_multiplier:
        The residual bound is this multiple of the residual IQR (plus a
        small absolute floor for near-exact fits).
    """

    iqr_multiplier: float = 3.0
    min_correlation: float = 0.9
    residual_multiplier: float = 4.0
    ranges: list[RangeConstraint] = field(default_factory=list)
    linears: list[LinearConstraint] = field(default_factory=list)

    def fit(self, relation: Relation) -> "ConformanceGuard":
        """Mine range and linear conformance constraints from ``relation``."""
        names = list(relation.schema.numeric_names())
        self.ranges = []
        self.linears = []
        columns: dict[str, np.ndarray] = {}
        for name in names:
            values = relation.numeric(name)
            clean = values[~np.isnan(values)]
            if clean.size < 8:
                continue
            columns[name] = values
            q1, q3 = np.percentile(clean, [25, 75])
            iqr = max(q3 - q1, 1e-12)
            self.ranges.append(
                RangeConstraint(
                    name,
                    float(q1 - self.iqr_multiplier * iqr),
                    float(q3 + self.iqr_multiplier * iqr),
                )
            )
        for x, y in combinations(sorted(columns), 2):
            constraint = self._fit_pair(columns[x], columns[y], x, y)
            if constraint is not None:
                self.linears.append(constraint)
        return self

    def _fit_pair(
        self,
        x_values: np.ndarray,
        y_values: np.ndarray,
        x: str,
        y: str,
    ) -> LinearConstraint | None:
        keep = ~np.isnan(x_values) & ~np.isnan(y_values)
        xs, ys = x_values[keep], y_values[keep]
        if xs.size < 8 or np.std(xs) < 1e-12 or np.std(ys) < 1e-12:
            return None
        correlation = float(np.corrcoef(xs, ys)[0, 1])
        if abs(correlation) < self.min_correlation:
            return None
        slope, intercept = np.polyfit(xs, ys, deg=1)
        residual = ys - (slope * xs + intercept)
        q1, q3 = np.percentile(residual, [25, 75])
        scale = max(q3 - q1, 1e-9 * max(np.std(ys), 1.0))
        bound = float(self.residual_multiplier * scale)
        return LinearConstraint(
            x, y, float(slope), float(intercept), bound, correlation
        )

    # ------------------------------------------------------------------

    @property
    def n_constraints(self) -> int:
        """Total number of mined constraints."""
        return len(self.ranges) + len(self.linears)

    def check(self, relation: Relation) -> np.ndarray:
        """Mask of rows violating any learned numeric constraint."""
        mask = np.zeros(relation.n_rows, dtype=bool)
        for constraint in self.ranges:
            if constraint.column in relation.schema:
                mask |= constraint.violations(
                    relation.numeric(constraint.column)
                )
        for constraint in self.linears:
            if (
                constraint.x in relation.schema
                and constraint.y in relation.schema
            ):
                mask |= constraint.violations(
                    relation.numeric(constraint.x),
                    relation.numeric(constraint.y),
                )
        return mask

    def describe(self) -> str:
        """Human-readable listing of every mined constraint."""
        lines = [
            f"ConformanceGuard: {len(self.ranges)} range + "
            f"{len(self.linears)} linear constraints"
        ]
        lines.extend(f"  {c}" for c in self.ranges)
        lines.extend(f"  {c}" for c in self.linears)
        return "\n".join(lines)
