"""FDX: statistical FD discovery via a linear structural model [43].

FDX (Zhang et al., SIGMOD 2020) pioneered the auxiliary-distribution
view that GUARDRAIL builds on, but fits a **linear additive** structural
model to the binary 𝕀 samples:

    𝕀_k = Σ_{i ∈ parents(k)} B_{ki} 𝕀_i + η_k,   η additive noise

estimated here exactly as the paper describes the idea: (1) sample the
auxiliary distribution with the circular-shift trick, (2) estimate the
autoregressive matrix by ordinary least squares per attribute,
(3) impose a DAG by ordering attributes by residual variance (the
LiNGAM-style heuristic: upstream variables are "explained" worse) and
keeping only downstream-pointing coefficients above a threshold, and
(4) read FDs off the parent sets.

§6 of the GUARDRAIL paper argues the additive-noise assumption is wrong
for binary 𝕀 (η cannot be independent of the regressors), making the
orientation unreliable — and the least-squares step genuinely fails
with an ill-conditioned Gram matrix on constant or collinear columns.
We keep both failure modes observable: ``FdxIllConditioned`` is raised
exactly when the paper reports "-" (dataset #3), and degenerate
thresholds can flag every row (dataset #8's behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..relation import Relation
from ..sampler import AuxiliarySampler
from .fd import FD


class FdxIllConditioned(RuntimeError):
    """The Gram matrix of the regression step is numerically singular."""


@dataclass
class FdxResult:
    """Learned FDs plus the regression diagnostics behind them."""
    fds: list[FD] = field(default_factory=list)
    coefficient_matrix: np.ndarray | None = None
    residual_variances: dict[str, float] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)


def fdx(
    relation: Relation,
    threshold: float = 0.15,
    n_shifts: int = 3,
    condition_limit: float = 1e8,
    seed: int = 0,
) -> FdxResult:
    """Run FDX-style discovery over the categorical attributes."""
    rng = np.random.default_rng(seed)
    sampler = AuxiliarySampler(n_shifts=n_shifts)
    binary, names = sampler.transform(relation, rng)
    if binary.shape[0] == 0 or len(names) < 2:
        return FdxResult()
    data = binary.astype(np.float64)
    data -= data.mean(axis=0)

    gram = data.T @ data
    condition = np.linalg.cond(gram)
    if not np.isfinite(condition) or condition > condition_limit:
        raise FdxIllConditioned(
            f"Gram matrix condition number {condition:.3g} exceeds "
            f"{condition_limit:.3g} (constant or collinear indicator "
            "columns)"
        )

    n_attrs = len(names)
    coefficients = np.zeros((n_attrs, n_attrs))
    residual_variance = np.zeros(n_attrs)
    for k in range(n_attrs):
        mask = np.ones(n_attrs, dtype=bool)
        mask[k] = False
        design = data[:, mask]
        target = data[:, k]
        solution, residuals, rank, _ = np.linalg.lstsq(design, target)
        if rank < design.shape[1]:
            raise FdxIllConditioned(
                f"rank-deficient design matrix when regressing {names[k]!r}"
            )
        coefficients[k, mask] = solution
        fitted = design @ solution
        residual_variance[k] = float(np.var(target - fitted))

    # LiNGAM-style causal order: ascending residual variance — variables
    # explained well by the others sit downstream.
    order_idx = np.argsort(residual_variance, kind="stable")
    position = np.empty(n_attrs, dtype=np.int64)
    position[order_idx] = np.arange(n_attrs)

    fds: list[FD] = []
    for k in range(n_attrs):
        parents = [
            names[i]
            for i in range(n_attrs)
            if i != k
            and abs(coefficients[k, i]) >= threshold
            and position[i] < position[k]
        ]
        if parents:
            fds.append(FD(tuple(parents), names[k]))

    return FdxResult(
        fds=fds,
        coefficient_matrix=coefficients,
        residual_variances={
            names[i]: float(residual_variance[i]) for i in range(n_attrs)
        },
        order=[names[i] for i in order_idx[::-1]],
    )
