"""Functional dependencies and FD-based error detection.

The baselines of §8.1 (TANE, CTANE, FDX) all emit (approximate)
functional dependencies.  To compare them with GUARDRAIL on error
*detection*, every baseline shares the evaluation adapter here: an FD
``X → A`` discovered on the clean split is compiled into the lookup
table ``{x-combination : majority A value}`` and rows of the test split
whose ``A`` deviates from the learned value are flagged — the same
row-level semantics GUARDRAIL's branches have, which keeps the
comparison apples-to-apples.

Stripped partitions (the TANE workhorse) also live here since both TANE
and CTANE consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..relation import MISSING, Relation


@dataclass(frozen=True)
class FD:
    """A functional dependency ``lhs → rhs``."""

    lhs: tuple[str, ...]
    rhs: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", tuple(sorted(self.lhs)))
        if self.rhs in self.lhs:
            raise ValueError("rhs cannot appear in lhs")

    def __str__(self) -> str:
        return f"{{{', '.join(self.lhs)}}} -> {self.rhs}"


# ---------------------------------------------------------------------------
# Stripped partitions
# ---------------------------------------------------------------------------


class StrippedPartition:
    """Equivalence classes of size >= 2 under a set of attributes.

    The TANE representation: singleton classes are dropped ("stripped")
    because they can never witness a violation.
    """

    __slots__ = ("classes", "n_rows")

    def __init__(self, classes: list[np.ndarray], n_rows: int):
        self.classes = classes
        self.n_rows = n_rows

    @classmethod
    def from_codes(cls, codes: np.ndarray, n_rows: int) -> "StrippedPartition":
        """Partition rows by a single code column."""
        order = np.argsort(codes, kind="stable")
        ordered = codes[order]
        bounds = np.concatenate(
            [[0], np.nonzero(np.diff(ordered) != 0)[0] + 1, [n_rows]]
        )
        classes = [
            order[s:e] for s, e in zip(bounds[:-1], bounds[1:]) if e - s >= 2
        ]
        return cls(classes, n_rows)

    @property
    def n_classes(self) -> int:
        """Number of equivalence classes in the partition."""
        return len(self.classes)

    @property
    def size(self) -> int:
        """``||Π||``: total rows in non-singleton classes."""
        return sum(len(c) for c in self.classes)

    def error(self) -> int:
        """``e(X)`` numerator: rows minus classes (the key error)."""
        return self.size - self.n_classes

    def product(self, other: "StrippedPartition") -> "StrippedPartition":
        """``Π_X · Π_Y = Π_{X ∪ Y}`` via the standard probe-table method."""
        lookup = np.full(self.n_rows, -1, dtype=np.int64)
        for index, cls_rows in enumerate(self.classes):
            lookup[cls_rows] = index
        buckets: dict[tuple[int, int], list[int]] = {}
        for index, cls_rows in enumerate(other.classes):
            for row in cls_rows:
                own = lookup[row]
                if own >= 0:
                    buckets.setdefault((own, index), []).append(int(row))
        classes = [
            np.asarray(rows, dtype=np.int64)
            for rows in buckets.values()
            if len(rows) >= 2
        ]
        return StrippedPartition(classes, self.n_rows)


def g3_error(
    lhs_partition: StrippedPartition, joint_partition: StrippedPartition
) -> float:
    """The g3 error of an FD: min fraction of rows to delete for validity.

    ``g3 = (||Π_X|| - Σ_{c ∈ Π_X} max |c'|, c' ⊆ c, c' ∈ Π_{X∪A}) / n``
    computed with the standard TANE single-pass algorithm.
    """
    n_rows = lhs_partition.n_rows
    if n_rows == 0:
        return 0.0
    biggest = np.zeros(n_rows, dtype=np.int64)
    touched: list[np.ndarray] = []
    for joint_class in joint_partition.classes:
        representative = joint_class[0]
        biggest[representative] = max(
            biggest[representative], len(joint_class)
        )
    # For each lhs class, the best sub-class size is the max over its
    # rows' recorded joint-class sizes (non-members contribute 1).
    removed = 0
    for lhs_class in lhs_partition.classes:
        best = int(biggest[lhs_class].max())
        best = max(best, 1)
        removed += len(lhs_class) - best
    del touched
    return removed / n_rows


def fd_holds(
    relation: Relation, fd: FD, max_error: float = 0.0
) -> bool:
    """Check an FD directly (used by tests as ground truth)."""
    groups = relation.group_indices(list(fd.lhs))
    rhs = relation.codes(fd.rhs)
    violations = 0
    for indices in groups.values():
        values = rhs[indices]
        counts = np.bincount(values[values != MISSING] + 1)
        if counts.size:
            violations += len(indices) - int(counts.max())
    return violations <= max_error * relation.n_rows


# ---------------------------------------------------------------------------
# FD-based error detection (the shared baseline adapter)
# ---------------------------------------------------------------------------


class FDErrorDetector:
    """Compile FDs on a clean split, flag deviating rows on a test split."""

    def __init__(self, fds: Sequence[FD]):
        self.fds = list(fds)
        self._tables: list[tuple[FD, dict[tuple[int, ...], int], dict]] = []

    def fit(self, relation: Relation) -> "FDErrorDetector":
        """Learn ``lhs-combination → majority rhs`` lookup tables."""
        self._tables = []
        for fd in self.fds:
            groups = relation.group_indices(list(fd.lhs))
            rhs = relation.codes(fd.rhs)
            table: dict[tuple, object] = {}
            for config, indices in groups.items():
                if MISSING in config:
                    continue
                values = rhs[indices]
                values = values[values != MISSING]
                if values.size == 0:
                    continue
                counts = np.bincount(values)
                decoded_key = tuple(
                    relation.codec(a).decode_one(c)
                    for a, c in zip(fd.lhs, config)
                )
                table[decoded_key] = relation.codec(fd.rhs).decode_one(
                    int(np.argmax(counts))
                )
            self._tables.append((fd, table, {}))
        return self

    def detect(self, relation: Relation) -> np.ndarray:
        """Boolean mask over ``relation`` rows violating any learned FD."""
        mask = np.zeros(relation.n_rows, dtype=bool)
        for fd, table, _ in self._tables:
            if not table:
                continue
            groups = relation.group_indices(list(fd.lhs))
            rhs_codes = relation.codes(fd.rhs)
            rhs_codec = relation.codec(fd.rhs)
            for config, indices in groups.items():
                if MISSING in config:
                    continue
                decoded_key = tuple(
                    relation.codec(a).decode_one(c)
                    for a, c in zip(fd.lhs, config)
                )
                expected = table.get(decoded_key)
                if expected is None:
                    continue
                if expected in rhs_codec:
                    expected_code = rhs_codec.encode_one(expected)
                else:
                    expected_code = -2
                mask[indices[rhs_codes[indices] != expected_code]] = True
        return mask


def minimal_cover(fds: Sequence[FD]) -> list[FD]:
    """Drop FDs whose lhs is a superset of another FD with the same rhs."""
    out: list[FD] = []
    by_rhs: dict[str, list[FD]] = {}
    for fd in fds:
        by_rhs.setdefault(fd.rhs, []).append(fd)
    for rhs, group in by_rhs.items():
        group = sorted(group, key=lambda f: len(f.lhs))
        kept: list[FD] = []
        for fd in group:
            if not any(set(k.lhs) <= set(fd.lhs) for k in kept):
                kept.append(fd)
        out.extend(kept)
    return out
