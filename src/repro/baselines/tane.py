"""TANE: levelwise (approximate) functional dependency discovery [19].

The classic partition-refinement algorithm of Huhtala et al.:

* stripped partitions represent attribute-set groupings compactly;
* the lattice is explored level by level with apriori-style candidate
  generation;
* the C+ candidate sets prune implied and non-minimal dependencies;
* approximate FDs use the g3 error with a configurable threshold.

As the paper observes (§8.1), TANE is built for *knowledge discovery*:
on finite noisy data it happily reports every accidental dependency,
which later shows up as over-restrictive constraints during error
detection.  We keep that behaviour — it is the point of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..relation import Relation
from .fd import FD, StrippedPartition, g3_error


@dataclass
class TaneResult:
    """Discovered FDs plus search diagnostics."""

    fds: list[FD] = field(default_factory=list)
    levels_explored: int = 0
    candidates_checked: int = 0


def tane(
    relation: Relation,
    max_lhs: int = 3,
    max_error: float = 0.0,
    max_fds: int | None = None,
) -> TaneResult:
    """Run TANE over the categorical attributes of a relation.

    Parameters
    ----------
    max_lhs:
        Largest left-hand side explored (levelwise cutoff).
    max_error:
        g3 threshold; 0 discovers exact FDs, > 0 approximate FDs.
    max_fds:
        Optional early stop once this many FDs were emitted.
    """
    attributes = list(relation.schema.categorical_names())
    n_rows = relation.n_rows
    result = TaneResult()

    # Level-1 partitions.
    partitions: dict[frozenset[str], StrippedPartition] = {}
    for attribute in attributes:
        partitions[frozenset((attribute,))] = StrippedPartition.from_codes(
            relation.codes(attribute), n_rows
        )

    # C+(X) candidate rhs sets; C+(∅) = R.
    all_attrs = frozenset(attributes)
    cplus: dict[frozenset[str], frozenset[str]] = {frozenset(): all_attrs}
    level: list[frozenset[str]] = [frozenset((a,)) for a in attributes]
    for x in level:
        cplus[x] = all_attrs

    level_number = 1
    while level and level_number <= max_lhs + 1:
        result.levels_explored = level_number
        if level_number >= 2:
            _compute_dependencies(
                level, partitions, cplus, relation, max_error, result
            )
            if max_fds is not None and len(result.fds) >= max_fds:
                result.fds = result.fds[:max_fds]
                break
        level = _prune(
            level, partitions, cplus, max_error, max_lhs, result
        )
        level = _generate_next_level(level, partitions, cplus, n_rows)
        level_number += 1
    return result


def _compute_dependencies(
    level: list[frozenset[str]],
    partitions: dict[frozenset[str], StrippedPartition],
    cplus: dict[frozenset[str], frozenset[str]],
    relation: Relation,
    max_error: float,
    result: TaneResult,
) -> None:
    for x in level:
        intersection = None
        for attribute in x:
            parent = cplus.get(x - {attribute})
            if parent is None:
                parent = frozenset(relation.schema.categorical_names())
            intersection = (
                parent if intersection is None else intersection & parent
            )
        cplus[x] = intersection if intersection is not None else frozenset()

    for x in level:
        for attribute in sorted(x & cplus[x]):
            lhs = x - {attribute}
            if not lhs:
                continue
            result.candidates_checked += 1
            error = g3_error(partitions[lhs], partitions[x])
            if error <= max_error:
                result.fds.append(FD(tuple(sorted(lhs)), attribute))
                cplus[x] = cplus[x] - {attribute}
                if max_error == 0.0:
                    # Exact case: all B ∈ R \ X are implied, prune them.
                    rest = (
                        frozenset(relation.schema.categorical_names()) - x
                    )
                    cplus[x] = cplus[x] - rest


def _prune(
    level: list[frozenset[str]],
    partitions: dict[frozenset[str], StrippedPartition],
    cplus: dict[frozenset[str], frozenset[str]],
    max_error: float,
    max_lhs: int,
    result: TaneResult,
) -> list[frozenset[str]]:
    kept = []
    for x in level:
        if not cplus.get(x, frozenset()):
            continue
        if max_error == 0.0 and partitions[x].error() == 0 and len(x) > 1:
            # X is a (super)key.  Per the TANE key-pruning rule, first
            # emit the FDs its deletion would otherwise hide:
            # X -> A for A in C+(X) \ X with A in the intersection of
            # C+((X ∪ {A}) \ {B}) over B in X.  Respect the lhs cap.
            for a in sorted(cplus[x] - x) if len(x) <= max_lhs else ():
                in_all = True
                for b in x:
                    parent = (x | {a}) - {b}
                    parent_cplus = cplus.get(parent)
                    if parent_cplus is None or a not in parent_cplus:
                        in_all = False
                        break
                if in_all:
                    result.fds.append(FD(tuple(sorted(x)), a))
            continue  # no extension can yield new minimal FDs
        kept.append(x)
    return kept


def _generate_next_level(
    level: list[frozenset[str]],
    partitions: dict[frozenset[str], StrippedPartition],
    cplus: dict[frozenset[str], frozenset[str]],
    n_rows: int,
) -> list[frozenset[str]]:
    """Apriori join: combine sets sharing all but one attribute."""
    next_level: list[frozenset[str]] = []
    by_prefix: dict[frozenset[str], list[frozenset[str]]] = {}
    current = set(level)
    for x in level:
        largest = max(x)
        by_prefix.setdefault(x - {largest}, []).append(x)
    seen: set[frozenset[str]] = set()
    for prefix, members in by_prefix.items():
        for a, b in combinations(sorted(members, key=sorted), 2):
            candidate = a | b
            if candidate in seen:
                continue
            # All subsets of size |candidate| - 1 must be in the level.
            if all(
                candidate - {attr} in current for attr in candidate
            ):
                seen.add(candidate)
                partitions[candidate] = partitions[a].product(
                    partitions[b]
                )
                next_level.append(candidate)
    return next_level
