"""CTANE: constant conditional functional dependency discovery [9].

Conditional FDs extend FDs with a *pattern tableau*: the dependency only
has to hold on the rows matching the pattern.  Following Fan et al., we
discover **constant CFDs** ``(X = x̄) → (A = a)`` levelwise:

* candidate patterns are the value combinations of attribute sets X with
  support above a threshold;
* a pattern emits a CFD when the conditioned rows are (nearly) constant
  in A — confidence above ``min_confidence``;
* non-minimal patterns (a sub-pattern already implies the same
  consequent) are pruned.

Constant CFDs are structurally the closest existing formalism to a
GUARDRAIL branch; the difference the paper leans on is that CTANE has no
global structural prior, so with a permissive support threshold it
floods the result with accidental patterns (over-restrictive
constraints), and with a strict one it misses real structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from ..relation import MISSING, Relation


@dataclass(frozen=True)
class ConstantCFD:
    """``(lhs = values) → (rhs = value)`` with observed support/confidence."""

    lhs: tuple[str, ...]
    values: tuple[object, ...]
    rhs: str
    value: object
    support: int
    confidence: float

    def pattern(self) -> tuple[tuple[str, object], ...]:
        """The LHS as (attribute, value) pairs."""
        return tuple(zip(self.lhs, self.values))

    def __str__(self) -> str:
        pattern = ", ".join(
            f"{a}={v!r}" for a, v in zip(self.lhs, self.values)
        )
        return f"[{pattern}] -> {self.rhs}={self.value!r}"


@dataclass
class CTaneResult:
    """Mined constant CFDs plus search bookkeeping."""
    cfds: list[ConstantCFD] = field(default_factory=list)
    patterns_checked: int = 0


def ctane(
    relation: Relation,
    max_lhs: int = 2,
    min_support: int = 5,
    min_confidence: float = 0.95,
    max_cfds: int | None = 20000,
) -> CTaneResult:
    """Discover constant CFDs levelwise."""
    attributes = list(relation.schema.categorical_names())
    result = CTaneResult()
    # Minimality index: consequents already implied by smaller patterns.
    implied: set[tuple[frozenset[tuple[str, object]], str]] = set()

    for size in range(1, max_lhs + 1):
        for lhs in combinations(attributes, size):
            groups = relation.group_indices(list(lhs))
            for rhs in attributes:
                if rhs in lhs:
                    continue
                rhs_codes = relation.codes(rhs)
                rhs_codec = relation.codec(rhs)
                for config, indices in groups.items():
                    if MISSING in config:
                        continue
                    if indices.size < min_support:
                        continue
                    result.patterns_checked += 1
                    values = rhs_codes[indices]
                    values = values[values != MISSING]
                    if values.size == 0:
                        continue
                    counts = np.bincount(values)
                    top = int(np.argmax(counts))
                    confidence = counts[top] / indices.size
                    if confidence < min_confidence:
                        continue
                    decoded = tuple(
                        relation.codec(a).decode_one(c)
                        for a, c in zip(lhs, config)
                    )
                    if _has_implying_subpattern(
                        lhs, decoded, rhs, implied
                    ):
                        continue
                    cfd = ConstantCFD(
                        lhs=tuple(lhs),
                        values=decoded,
                        rhs=rhs,
                        value=rhs_codec.decode_one(top),
                        support=int(indices.size),
                        confidence=float(confidence),
                    )
                    result.cfds.append(cfd)
                    implied.add(
                        (frozenset(zip(lhs, decoded)), rhs)
                    )
                    if max_cfds is not None and len(result.cfds) >= max_cfds:
                        return result
    return result


def _has_implying_subpattern(
    lhs: tuple[str, ...],
    values: tuple[object, ...],
    rhs: str,
    implied: set[tuple[frozenset[tuple[str, object]], str]],
) -> bool:
    """Does a strict sub-pattern already imply a CFD on ``rhs``?"""
    atoms = tuple(zip(lhs, values))
    for size in range(1, len(atoms)):
        for subset in combinations(atoms, size):
            if (frozenset(subset), rhs) in implied:
                return True
    return False


class CFDErrorDetector:
    """Flag test rows matching a CFD pattern but deviating in consequent."""

    def __init__(self, cfds: list[ConstantCFD]):
        self.cfds = list(cfds)

    def detect(self, relation: Relation) -> np.ndarray:
        """Mask of rows violating any mined constant CFD."""
        mask = np.zeros(relation.n_rows, dtype=bool)
        for cfd in self.cfds:
            rows = np.ones(relation.n_rows, dtype=bool)
            for attribute, value in zip(cfd.lhs, cfd.values):
                codec = relation.codec(attribute)
                code = codec.encode_one(value) if value in codec else -2
                rows &= relation.codes(attribute) == code
            if not rows.any():
                continue
            rhs_codec = relation.codec(cfd.rhs)
            expected = (
                rhs_codec.encode_one(cfd.value)
                if cfd.value in rhs_codec
                else -2
            )
            mask |= rows & (relation.codes(cfd.rhs) != expected)
        return mask
