"""Observability: tracing spans, metrics, and trace reports.

The reproduction's subsystems (synthesis, sketch filling, the PC
learner, the streaming guard, the SQL executor) are instrumented with
this package's primitives.  Tracing is **off by default** and costs one
flag check per instrumentation site when off, so enabling the package
never changes Table 6's overhead numbers.

Typical use::

    from repro import obs

    with obs.tracing(obs.JsonlSink("trace.jsonl")):
        result = synthesize(relation)

    print(obs.render_report("trace.jsonl"))

or from the CLI: ``python -m repro synthesize data.csv --trace
trace.jsonl`` then ``python -m repro obs report trace.jsonl``.
"""

from .report import (
    ObsReport,
    SpanNode,
    aggregate_counters,
    aggregate_histograms,
    aggregate_durability,
    aggregate_overload,
    aggregate_worker_faults,
    build_span_tree,
    render_drift_dashboard,
    render_guard_dashboard,
    render_metrics,
    render_report,
    render_span_tree,
    worker_ids,
)
from .sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    iter_events,
    read_jsonl,
)
from .trace import (
    SpanHandle,
    configure,
    count,
    current_sink,
    disable,
    enabled,
    merge_events,
    observe,
    record,
    span,
    traced,
    tracing,
)

__all__ = [
    # trace
    "span",
    "traced",
    "count",
    "observe",
    "record",
    "tracing",
    "configure",
    "disable",
    "enabled",
    "current_sink",
    "merge_events",
    "SpanHandle",
    # sinks
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "read_jsonl",
    "iter_events",
    # report
    "ObsReport",
    "worker_ids",
    "SpanNode",
    "build_span_tree",
    "render_span_tree",
    "aggregate_counters",
    "aggregate_histograms",
    "aggregate_durability",
    "aggregate_overload",
    "aggregate_worker_faults",
    "render_metrics",
    "render_drift_dashboard",
    "render_guard_dashboard",
    "render_report",
]
