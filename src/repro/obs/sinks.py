"""Trace sinks: where observability events go (paper Fig. 1 deployment).

A sink is anything with an ``emit(event)`` method taking one JSON-able
dict.  Three implementations cover the deployment spectrum:

* :class:`NullSink` — swallows everything; the default, so tracing is
  zero-cost when nobody asked for it (Table 6's overhead numbers must
  not move when observability is merely *available*);
* :class:`MemorySink` — a bounded in-process ring buffer, for tests,
  notebooks, and live dashboards;
* :class:`JsonlSink` — newline-delimited JSON on disk, the interchange
  format ``repro obs report`` consumes.
"""

from __future__ import annotations

import io
import json
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator, Protocol, runtime_checkable


@runtime_checkable
class Sink(Protocol):
    """Anything that can receive observability events."""

    def emit(self, event: dict) -> None:
        """Record one event (a flat, JSON-serializable dict)."""
        ...


class NullSink:
    """Discards every event; the zero-cost default."""

    __slots__ = ()

    def emit(self, event: dict) -> None:
        """Drop the event."""

    def close(self) -> None:
        """No resources to release."""


class MemorySink:
    """Bounded in-memory ring buffer of events (oldest evicted first)."""

    def __init__(self, maxlen: int = 100_000):
        self._events: deque[dict] = deque(maxlen=maxlen)

    def emit(self, event: dict) -> None:
        """Append the event, evicting the oldest past ``maxlen``."""
        self._events.append(event)

    @property
    def events(self) -> list[dict]:
        """The retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Drop all retained events."""
        self._events.clear()

    def close(self) -> None:
        """No resources to release (events stay readable)."""

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._events)


class JsonlSink:
    """Writes one JSON object per line to a file (the trace format).

    The file handle is opened eagerly and line-buffered so a crashed
    process still leaves a readable prefix; use as a context manager or
    call :meth:`close` to flush deterministically.
    """

    def __init__(self, path: "str | Path"):
        self.path = Path(path)
        self._handle: io.TextIOBase | None = self.path.open(
            "w", encoding="utf-8"
        )

    def emit(self, event: dict) -> None:
        """Serialize the event as one JSON line."""
        if self._handle is None:
            raise ValueError(f"JsonlSink({self.path}) is closed")
        json.dump(event, self._handle, default=str, separators=(",", ":"))
        self._handle.write("\n")

    def close(self) -> None:
        """Flush and close the underlying file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: "str | Path") -> list[dict]:
    """Load a JSONL trace file back into a list of event dicts.

    Blank lines are skipped; a trailing partial line (crashed writer)
    raises ``json.JSONDecodeError`` so corruption is loud, not silent.
    """
    events: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def iter_events(source: "Sink | Iterable[dict] | str | Path") -> list[dict]:
    """Normalize a sink, path, or iterable of dicts into an event list."""
    if isinstance(source, MemorySink):
        return source.events
    if isinstance(source, (str, Path)):
        return read_jsonl(source)
    return list(source)  # type: ignore[arg-type]
