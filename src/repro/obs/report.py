"""Render a trace (JSONL file or event list) into an operator report.

``repro obs report trace.jsonl`` prints three sections:

* **Phase timings** — the span tree, aggregated by path: call count,
  total/mean wall time, and a share-of-root bar, so "where did the
  synthesis time go" is one glance (MEC enumeration vs. CI tests vs.
  sketch filling);
* **Counters / histograms** — cache hit rates, DAGs enumerated,
  per-row guard latency percentiles;
* **Guard dashboard** — the runtime-guard story of Fig. 1: rows
  checked/flagged/rectified, violation rate, and the violations-by-
  attribute breakdown reconstructed from the per-row verdict records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .sinks import iter_events


@dataclass
class SpanNode:
    """One aggregated node of the phase-timing tree."""

    name: str
    path: str
    count: int = 0
    total_s: float = 0.0
    errors: int = 0
    children: "dict[str, SpanNode]" = field(default_factory=dict)

    @property
    def mean_s(self) -> float:
        """Average duration per call (0 for an unvisited placeholder)."""
        return self.total_s / self.count if self.count else 0.0


def build_span_tree(events: Iterable[dict]) -> SpanNode:
    """Aggregate ``span`` events into a tree keyed by slash-path.

    Spans sharing a path are merged (count/total accumulate); a parent
    observed only through its children gets a placeholder node with
    ``count == 0`` so the hierarchy still renders.
    """
    root = SpanNode(name="<root>", path="")
    for event in events:
        if event.get("type") != "span":
            continue
        parts = [p for p in str(event.get("path", "")).split("/") if p]
        node = root
        prefix = ""
        for part in parts:
            prefix = f"{prefix}/{part}" if prefix else part
            node = node.children.setdefault(
                part, SpanNode(name=part, path=prefix)
            )
        node.count += 1
        node.total_s += float(event.get("dur_s", 0.0))
        if "error" in event:
            node.errors += 1
    return root


def _walk(node: SpanNode, depth: int, lines: list[str], scale: float):
    for child in sorted(
        node.children.values(), key=lambda n: -n.total_s
    ):
        share = child.total_s / scale if scale > 0 else 0.0
        bar = "#" * max(1, round(share * 24)) if child.count else ""
        mean_ms = child.mean_s * 1e3
        lines.append(
            f"  {'  ' * depth}{child.name:<{max(4, 34 - 2 * depth)}}"
            f"{child.count:>6}x {child.total_s:>9.3f}s "
            f"{mean_ms:>9.2f}ms/call  {bar}"
        )
        if child.errors:
            lines.append(
                f"  {'  ' * depth}  !! {child.errors} call(s) raised"
            )
        _walk(child, depth + 1, lines, scale)


def render_span_tree(events: Iterable[dict]) -> str:
    """The phase-timing section: an indented, share-annotated tree."""
    root = build_span_tree(events)
    if not root.children:
        return "  (no spans recorded)"
    scale = sum(c.total_s for c in root.children.values())
    header = (
        f"  {'phase':<34}{'calls':>7} {'total':>10} {'per call':>14}"
    )
    lines = [header]
    _walk(root, 0, lines, scale)
    return "\n".join(lines)


def aggregate_counters(events: Iterable[dict]) -> dict[str, int]:
    """Sum every ``counter`` event by name."""
    totals: dict[str, int] = {}
    for event in events:
        if event.get("type") == "counter":
            name = str(event["name"])
            totals[name] = totals.get(name, 0) + int(event.get("value", 1))
    return totals


def aggregate_histograms(events: Iterable[dict]) -> dict[str, list[float]]:
    """Collect every ``observe`` sample by histogram name."""
    samples: dict[str, list[float]] = {}
    for event in events:
        if event.get("type") == "observe":
            samples.setdefault(str(event["name"]), []).append(
                float(event["value"])
            )
    return samples


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5)
    )
    return sorted_values[index]


def render_metrics(events: Iterable[dict]) -> str:
    """The counters + histograms section."""
    events = list(events)
    counters = aggregate_counters(events)
    histograms = aggregate_histograms(events)
    lines: list[str] = []
    if counters:
        lines.append("  counters:")
        for name in sorted(counters):
            lines.append(f"    {name:<40} {counters[name]:>10}")
    if histograms:
        lines.append("  histograms:")
        for name in sorted(histograms):
            values = sorted(histograms[name])
            n = len(values)
            mean = sum(values) / n
            lines.append(
                f"    {name:<40} n={n:<7} mean={mean:.6f} "
                f"p50={_percentile(values, 0.50):.6f} "
                f"p95={_percentile(values, 0.95):.6f} "
                f"max={values[-1]:.6f}"
            )
    return "\n".join(lines) if lines else "  (no metrics recorded)"


def render_guard_dashboard(events: Iterable[dict]) -> str:
    """The runtime-guard section, built from per-row verdict records."""
    checked = flagged = rectified = 0
    by_attribute: dict[str, int] = {}
    for event in events:
        kind = event.get("type")
        if kind == "guard.verdict":
            checked += 1
            if not event.get("ok", True):
                flagged += 1
                for attribute in event.get("attributes", []):
                    by_attribute[attribute] = (
                        by_attribute.get(attribute, 0) + 1
                    )
        elif kind == "guard.rectify":
            rectified += 1
    if checked == 0 and rectified == 0:
        return "  (no guard activity recorded)"
    rate = flagged / checked if checked else 0.0
    lines = [
        f"  rows checked    {checked}",
        f"  rows flagged    {flagged}  ({rate:.2%})",
        f"  rows rectified  {rectified}",
    ]
    if by_attribute:
        lines.append("  violations by attribute:")
        for name, n in sorted(by_attribute.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {name:<30} {n}")
    return "\n".join(lines)


def render_drift_dashboard(events: Iterable[dict]) -> str:
    """The self-healing section: drift alerts and guardrail swaps."""
    alerts_by_kind: dict[str, int] = {}
    alerts_by_attribute: dict[str, int] = {}
    windows = swaps = heals_accepted = heals_rejected = 0
    for event in events:
        kind = event.get("type")
        if kind == "drift.alert":
            alert_kind = event.get("kind", "?")
            alerts_by_kind[alert_kind] = (
                alerts_by_kind.get(alert_kind, 0) + 1
            )
            attribute = event.get("attribute")
            if attribute:
                alerts_by_attribute[attribute] = (
                    alerts_by_attribute.get(attribute, 0) + 1
                )
        elif kind == "counter":
            name = event.get("name")
            delta = int(event.get("value", 1))
            if name == "drift.window":
                windows += delta
            elif name == "recovery.swap":
                swaps += delta
            elif name == "recovery.heal.accepted":
                heals_accepted += delta
            elif name == "recovery.heal.rejected":
                heals_rejected += delta
    total_alerts = sum(alerts_by_kind.values())
    if total_alerts == 0 and windows == 0 and swaps == 0:
        return "  (no drift activity recorded)"
    lines = [
        f"  windows evaluated  {windows}",
        f"  alerts raised      {total_alerts}",
    ]
    for name, n in sorted(alerts_by_kind.items(), key=lambda kv: -kv[1]):
        lines.append(f"    {name:<28} {n}")
    if alerts_by_attribute:
        lines.append("  alerts by attribute:")
        for name, n in sorted(
            alerts_by_attribute.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"    {name:<28} {n}")
    lines.append(
        f"  heals              {heals_accepted} accepted, "
        f"{heals_rejected} rejected"
    )
    lines.append(f"  guardrail swaps    {swaps}")
    return "\n".join(lines)


def aggregate_worker_faults(events: Iterable[dict]) -> dict[str, int]:
    """Count ``worker_fault`` events by fault kind.

    The supervised pool (:mod:`repro.parallel.supervise`) emits one
    typed event per absorbed process-level incident — worker death,
    task deadline, unpicklable result; an empty dict means every pool
    call in the trace ran clean.
    """
    by_kind: dict[str, int] = {}
    for event in events:
        if event.get("type") == "worker_fault":
            kind = str(event.get("fault", "?"))
            by_kind[kind] = by_kind.get(kind, 0) + 1
    return by_kind


DURABILITY_COUNTERS = (
    "recovery.replayed_records",
    "recovery.truncated_tail_bytes",
    "recovery.rejected_snapshots",
    "snapshot.generations",
    "durability.snapshots",
    "durability.append_errors",
    "durability.quarantine_unjournaled",
    "durability.stop_snapshot_failed",
)
"""Counters the durability layer (:mod:`repro.resilience.durability`)
emits; the subset present in a trace forms the report's durability
section."""


def aggregate_durability(events: Iterable[dict]) -> dict[str, int]:
    """Collect the durability/recovery counters present in a trace.

    One entry per :data:`DURABILITY_COUNTERS` name observed; an empty
    dict means the trace never touched a durable state store.  Mirrors
    :func:`aggregate_worker_faults` — every absorbed disk incident and
    every recovery statistic is surfaced, never silently dropped.
    """
    totals: dict[str, int] = {}
    wanted = set(DURABILITY_COUNTERS)
    for event in events:
        if event.get("type") != "counter":
            continue
        name = event.get("name")
        if name in wanted:
            totals[name] = totals.get(name, 0) + int(event.get("value", 1))
    return totals


OVERLOAD_COUNTERS = (
    "serve.rejected",
    "serve.expired",
    "serve.shed_admission",
    "serve.shed_fair_share",
    "serve.drain_expired",
    "serve.brownout_step_down",
    "serve.brownout_step_up",
)
"""Counters the serve layer's overload pipeline
(:mod:`repro.resilience.overload`) emits; the subset present in a
trace forms the report's overload section."""


def aggregate_overload(events: Iterable[dict]) -> dict[str, int]:
    """Collect the overload-control counters present in a trace.

    One entry per :data:`OVERLOAD_COUNTERS` name observed; an empty
    dict means the trace never shed load.  Deliberate sheds (adaptive
    admission, fair share, deadlines, brownout steps) are first-class
    outcomes, so they surface in the report exactly like durability
    incidents rather than hiding inside per-tenant counters.
    """
    totals: dict[str, int] = {}
    wanted = set(OVERLOAD_COUNTERS)
    for event in events:
        if event.get("type") != "counter":
            continue
        name = event.get("name")
        if name in wanted:
            totals[name] = totals.get(name, 0) + int(event.get("value", 1))
    return totals


def worker_ids(events: Iterable[dict]) -> tuple[int, ...]:
    """Distinct worker pids whose merged events appear in a trace.

    Events re-emitted by :func:`repro.obs.merge_events` carry a
    ``worker`` tag; an empty tuple means the trace is single-process.
    """
    return tuple(
        sorted(
            {
                int(event["worker"])
                for event in events
                if "worker" in event
            }
        )
    )


@dataclass
class ObsReport:
    """A trace aggregated into one queryable object (the merged view).

    Where the ``render_*`` functions format text, ``ObsReport`` exposes
    the same aggregates — counters, histogram samples, the span tree —
    as data, *including* every event merged back from forked workers
    (:func:`repro.obs.merge_events`), so a counter incremented across
    four worker processes reads as one total here.

    >>> with obs.tracing() as sink:
    ...     detect_errors(program, relation, pool=4)
    >>> report = ObsReport.from_events(sink.events)
    >>> report.counter("dsl.kernel.eval")     # summed across workers
    """

    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, list[float]] = field(default_factory=dict)
    span_tree: SpanNode = field(
        default_factory=lambda: SpanNode(name="<root>", path="")
    )
    workers: tuple[int, ...] = ()
    worker_faults: dict[str, int] = field(default_factory=dict)
    durability: dict[str, int] = field(default_factory=dict)
    overload: dict[str, int] = field(default_factory=dict)
    n_events: int = 0

    @classmethod
    def from_events(
        cls, source: "Iterable[dict] | str | Path"
    ) -> "ObsReport":
        """Aggregate a trace file, sink, or event list."""
        events = iter_events(source)
        return cls(
            counters=aggregate_counters(events),
            histograms=aggregate_histograms(events),
            span_tree=build_span_tree(events),
            workers=worker_ids(events),
            worker_faults=aggregate_worker_faults(events),
            durability=aggregate_durability(events),
            overload=aggregate_overload(events),
            n_events=len(events),
        )

    def counter(self, name: str, default: int = 0) -> int:
        """Total of one counter across every process that emitted it."""
        return self.counters.get(name, default)

    @property
    def n_workers(self) -> int:
        """Worker processes that contributed merged events (0 = serial)."""
        return len(self.workers)

    def render(self) -> str:
        """The metrics section of the text report, plus the worker line."""
        lines = []
        if self.workers:
            lines.append(
                f"  merged events from {self.n_workers} worker "
                f"process(es): {list(self.workers)}"
            )
        if self.worker_faults:
            kinds = ", ".join(
                f"{kind}={n}"
                for kind, n in sorted(self.worker_faults.items())
            )
            lines.append(f"  worker faults absorbed: {kinds}")
        if self.durability:
            stats = ", ".join(
                f"{name}={n}"
                for name, n in sorted(self.durability.items())
            )
            lines.append(f"  durability: {stats}")
        if self.overload:
            stats = ", ".join(
                f"{name}={n}"
                for name, n in sorted(self.overload.items())
            )
            lines.append(f"  overload: {stats}")
        body = render_metrics(
            [
                {"type": "counter", "name": name, "value": value}
                for name, value in self.counters.items()
            ]
            + [
                {"type": "observe", "name": name, "value": value}
                for name, values in self.histograms.items()
                for value in values
            ]
        )
        lines.append(body)
        return "\n".join(lines)


def render_report(source: "Iterable[dict] | str | Path") -> str:
    """Full report from a trace file, sink, or event list."""
    events = iter_events(source)
    sections = [
        ("Phase timings", render_span_tree(events)),
        ("Metrics", render_metrics(events)),
        ("Guard dashboard", render_guard_dashboard(events)),
        ("Drift & self-healing", render_drift_dashboard(events)),
    ]
    parts = [f"trace: {len(events)} events"]
    workers = worker_ids(events)
    if workers:
        parts.append(
            f"workers: merged events from {len(workers)} forked "
            f"process(es)"
        )
    faults = aggregate_worker_faults(events)
    if faults:
        parts.append(
            "worker faults absorbed: "
            + ", ".join(
                f"{kind}={n}" for kind, n in sorted(faults.items())
            )
        )
    durability = aggregate_durability(events)
    if durability:
        parts.append(
            "durability: "
            + ", ".join(
                f"{name}={n}" for name, n in sorted(durability.items())
            )
        )
    for title, body in sections:
        parts.append(f"\n{title}\n{'-' * len(title)}\n{body}")
    return "\n".join(parts)
