"""Structured tracing: spans, counters, histograms, verdict records.

The instrumentation contract for every subsystem in the reproduction:

* ``span("synth.sampling", rows=n)`` — a context manager timing one
  phase; spans nest, and the emitted event carries the dotted path of
  its ancestry so a report can rebuild the phase tree;
* ``@traced`` / ``@traced("name")`` — decorator form of the same;
* ``count("sketch.fill.cache_hit")`` — monotonic counters;
* ``observe("guard.check_seconds", dt)`` — histogram samples;
* ``record("verdict", ok=False, ...)`` — free-form structured events
  (the tripwire-style per-row verdict records of the runtime guard).

Everything funnels into one process-wide sink (:mod:`repro.obs.sinks`).
Tracing is **disabled by default** and every emit path starts with a
single module-flag check, so the instrumented hot loops (Table 6) pay
one predictable branch when observability is off.

    from repro import obs
    with obs.tracing(obs.JsonlSink("trace.jsonl")):
        synthesize(relation)

Thread-safety: the span stack is thread-local, so concurrent guards
trace correctly; the sink itself is shared and assumed append-only.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

from .sinks import JsonlSink, MemorySink, NullSink, Sink

F = TypeVar("F", bound=Callable)

_NULL = NullSink()
_sink: Sink = _NULL
_enabled: bool = False
_lock = threading.Lock()
_ids = iter(range(1, 1 << 62))


class _Local(threading.local):
    def __init__(self):
        self.stack: list["SpanHandle"] = []


_local = _Local()


def enabled() -> bool:
    """Is tracing currently on?  (The hot-path guard.)"""
    return _enabled


def current_sink() -> Sink:
    """The sink events currently go to (NullSink when disabled)."""
    return _sink


def configure(sink: "Sink | None") -> None:
    """Install a sink and enable tracing; ``None`` disables.

    Prefer the :func:`tracing` context manager in library code — it
    restores the previous configuration on exit.
    """
    global _sink, _enabled
    with _lock:
        if sink is None:
            _sink = _NULL
            _enabled = False
        else:
            _sink = sink
            _enabled = True


def disable() -> None:
    """Turn tracing off (equivalent to ``configure(None)``)."""
    configure(None)


@contextmanager
def tracing(sink: "Sink | None" = None) -> Iterator[Sink]:
    """Enable tracing into ``sink`` for a scope, then restore.

    With no argument a fresh :class:`MemorySink` is created and yielded:

    >>> with tracing() as sink:
    ...     with span("phase"):
    ...         pass
    >>> sink.events[0]["name"]
    'phase'
    """
    global _sink, _enabled
    previous_sink, previous_enabled = _sink, _enabled
    target = sink if sink is not None else MemorySink()
    configure(target)
    try:
        yield target
    finally:
        with _lock:
            _sink = previous_sink
            _enabled = previous_enabled


def _emit(event: dict) -> None:
    _sink.emit(event)


# ----------------------------------------------------------------------
# Spans


class SpanHandle:
    """A live span; emits one ``span`` event when the scope exits.

    Returned by :func:`span` when tracing is enabled.  ``set()`` attaches
    result attributes discovered mid-phase (e.g. the number of CI tests
    a PC run ended up issuing).
    """

    __slots__ = ("name", "path", "span_id", "parent_id", "attrs", "_start")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        parent = _local.stack[-1] if _local.stack else None
        self.parent_id = parent.span_id if parent else None
        self.path = f"{parent.path}/{name}" if parent else name
        self.span_id = next(_ids)
        self._start = 0.0

    def set(self, **attrs) -> "SpanHandle":
        """Attach attributes to the span before it closes."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "SpanHandle":
        _local.stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        stack = _local.stack
        if stack and stack[-1] is self:
            stack.pop()
        event = {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "dur_s": duration,
            "ts": time.time(),
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["attrs"] = self.attrs
        _emit(event)


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        """Ignore attributes."""
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs) -> "SpanHandle | _NoopSpan":
    """Open a timed, nested span: ``with span("synth.sampling"): ...``.

    Returns a shared no-op object when tracing is disabled, so the
    disabled cost is one flag test and no allocation.
    """
    if not _enabled:
        return _NOOP_SPAN
    return SpanHandle(name, attrs)


def traced(target: "F | str | None" = None) -> "F | Callable[[F], F]":
    """Decorator tracing every call of a function as a span.

    Use bare (``@traced`` — span named after the function) or with an
    explicit name (``@traced("pgm.pc")``).  Disabled tracing costs one
    flag check per call.
    """

    def decorate(func: F, name: str) -> F:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return func(*args, **kwargs)
            with span(name):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    if callable(target):
        return decorate(target, target.__qualname__)
    explicit = target

    def with_name(func: F) -> F:
        return decorate(func, explicit or func.__qualname__)

    return with_name


# ----------------------------------------------------------------------
# Counters, histograms, free-form records


def count(name: str, value: int = 1, **attrs) -> None:
    """Increment a named monotonic counter by ``value``."""
    if not _enabled:
        return
    event = {
        "type": "counter",
        "name": name,
        "value": value,
        "ts": time.time(),
    }
    if attrs:
        event["attrs"] = attrs
    _emit(event)


def observe(name: str, value: float, **attrs) -> None:
    """Record one sample of a named histogram (e.g. a latency)."""
    if not _enabled:
        return
    event = {
        "type": "observe",
        "name": name,
        "value": float(value),
        "ts": time.time(),
    }
    if attrs:
        event["attrs"] = attrs
    _emit(event)


def record(kind: str, **fields) -> None:
    """Emit a free-form structured event (e.g. a guard verdict)."""
    if not _enabled:
        return
    event = {"type": kind, "ts": time.time()}
    event.update(fields)
    _emit(event)


def merge_events(events, worker: int | None = None) -> None:
    """Re-emit events captured in another process into the current sink.

    A forked worker inherits a *copy* of the sink, so its counters,
    histograms, and spans would be silently dropped when it exits.  The
    worker-pool protocol (:mod:`repro.parallel`) instead captures each
    task's events in a private :class:`~repro.obs.MemorySink`, ships
    them back with the result, and the parent replays them here —
    tagged with the worker's pid so reports can attribute them.

    No-op when tracing is disabled; events are copied before tagging,
    never mutated.
    """
    if not _enabled or not events:
        return
    for event in events:
        if worker:
            event = dict(event)
            event.setdefault("worker", worker)
        _emit(event)
