"""Violation detection against a synthesized program (paper Eqn. 1).

A row *violates* the program when executing the DGP program on it
changes some attribute — the branch whose condition the row satisfies
assigns a different value than the one observed.  Detection reports both
row-level verdicts and the implicated cells (the dependent attribute of
each violated branch), which is what cell-level scoring and the rectify
strategy consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..dsl import Branch, Program, branch_masks
from ..relation import Relation


@dataclass(frozen=True)
class Violation:
    """One branch violated by one row."""

    row: int
    branch: Branch

    @property
    def attribute(self) -> str:
        """The dependent attribute the violated branch writes."""
        return self.branch.dependent

    @property
    def expected(self) -> object:
        """The literal the violated branch expects."""
        return self.branch.literal


@dataclass
class DetectionResult:
    """All violations of a program over a relation."""

    row_mask: np.ndarray
    violations: list[Violation] = field(default_factory=list)

    @property
    def n_flagged_rows(self) -> int:
        """Number of rows violating at least one branch."""
        return int(np.count_nonzero(self.row_mask))

    def flagged_rows(self) -> np.ndarray:
        """Indices of the violating rows."""
        return np.nonzero(self.row_mask)[0]

    def by_row(self) -> dict[int, list[Violation]]:
        """Violations grouped by row index."""
        out: dict[int, list[Violation]] = {}
        for violation in self.violations:
            out.setdefault(violation.row, []).append(violation)
        return out

    def flagged_cells(self) -> set[tuple[int, str]]:
        """(row, attribute) pairs the program implicates."""
        return {(v.row, v.attribute) for v in self.violations}


def detect_errors(program: Program, relation: Relation) -> DetectionResult:
    """Find every (row, branch) violation, vectorized per branch."""
    with obs.span(
        "errors.detect",
        n_rows=relation.n_rows,
        n_statements=len(program),
    ) as detect_span:
        row_mask = np.zeros(relation.n_rows, dtype=bool)
        violations: list[Violation] = []
        for statement in program:
            for branch in statement.branches:
                _, violating = branch_masks(branch, relation)
                if not violating.any():
                    continue
                row_mask |= violating
                for row in np.nonzero(violating)[0]:
                    violations.append(Violation(int(row), branch))
        detect_span.set(
            flagged_rows=int(np.count_nonzero(row_mask)),
            violations=len(violations),
        )
    return DetectionResult(row_mask=row_mask, violations=violations)
