"""Violation detection against a synthesized program (paper Eqn. 1).

A row *violates* the program when executing the DGP program on it
changes some attribute: ``[[p]]_t != t``, with first-match branch
selection and state threading exactly as :func:`repro.dsl.run_program`
defines (the canonical semantics — see :mod:`repro.dsl.semantics`).
Detection reports both row-level verdicts and the implicated cells (the
dependent attribute of each state-changing branch application), which
is what cell-level scoring and the rectify strategy consume.

The heavy lifting happens in the compiled kernels of
:mod:`repro.dsl.compiled`: the program is lowered once per codec set,
and condition masks are cached per relation, so repeated detection over
the same data costs a handful of array ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..dsl import Branch, Program, compiled_for
from ..relation import Relation


@dataclass(frozen=True)
class Violation:
    """One branch violated by one row."""

    row: int
    branch: Branch

    @property
    def attribute(self) -> str:
        """The dependent attribute the violated branch writes."""
        return self.branch.dependent

    @property
    def expected(self) -> object:
        """The literal the violated branch expects."""
        return self.branch.literal


@dataclass
class DetectionResult:
    """All violations of a program over a relation."""

    row_mask: np.ndarray
    violations: list[Violation] = field(default_factory=list)

    @property
    def n_flagged_rows(self) -> int:
        """Number of rows violating at least one branch."""
        return int(np.count_nonzero(self.row_mask))

    def flagged_rows(self) -> np.ndarray:
        """Indices of the violating rows."""
        return np.nonzero(self.row_mask)[0]

    def by_row(self) -> dict[int, list[Violation]]:
        """Violations grouped by row index."""
        out: dict[int, list[Violation]] = {}
        for violation in self.violations:
            out.setdefault(violation.row, []).append(violation)
        return out

    def flagged_cells(self) -> set[tuple[int, str]]:
        """(row, attribute) pairs the program implicates."""
        return {(v.row, v.attribute) for v in self.violations}


def detect_errors(
    program: Program, relation: Relation, pool=None
) -> DetectionResult:
    """Find every (row, branch) violation via the compiled kernels.

    Verdicts agree exactly with per-row :func:`repro.dsl.row_conforms`:
    ``row_mask[i]`` is True iff running the program on row ``i`` changes
    it, and each reported :class:`Violation` is one state-changing
    first-match branch application on a flagged row.

    ``pool`` (a :class:`repro.parallel.WorkerPool`, a worker count, or
    ``None``) shards large relations across forked workers; the result
    is bit-identical to the serial path at any worker count.
    """
    from ..parallel import as_pool

    pool = as_pool(pool)
    with obs.span(
        "errors.detect",
        n_rows=relation.n_rows,
        n_statements=len(program),
    ) as detect_span:
        compiled = compiled_for(program, relation)
        if pool is not None and pool.parallel:
            result = compiled.detect_sharded(relation, pool)
        else:
            result = compiled.detect(relation)
        violations = [
            Violation(int(row), branch)
            for row, branch in result.iter_violations()
        ]
        detect_span.set(
            flagged_rows=result.n_flagged,
            violations=len(violations),
        )
    return DetectionResult(row_mask=result.row_mask, violations=violations)
