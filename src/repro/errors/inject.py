"""Random error injection (paper §8 setup).

The evaluation corrupts datasets "at a fixed error rate of 1% (or
slightly higher for datasets with fewer rows; capped at 30 errors)".
:func:`inject_errors` implements that protocol: it picks distinct rows,
one categorical cell each, and replaces the value — either with a
different value from the column's domain (plausible-looking noise) or
with a random garbage string (the paper's "Berkeley" → "gibbon"
example), and returns full ground truth for scoring detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..relation import Codec, Relation


@dataclass(frozen=True)
class InjectedError:
    """Ground truth for one corrupted cell."""

    row: int
    attribute: str
    original: object
    corrupted: object


@dataclass
class InjectionReport:
    """The corrupted relation plus everything needed to score detectors."""

    relation: Relation
    errors: list[InjectedError] = field(default_factory=list)
    row_mask: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=bool)
    )

    @property
    def n_errors(self) -> int:
        """Number of injected errors."""
        return len(self.errors)

    def error_rows(self) -> set[int]:
        """Row indices that received at least one injected error."""
        return {e.row for e in self.errors}


_GARBAGE_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _garbage_string(rng: np.random.Generator) -> str:
    length = int(rng.integers(4, 9))
    return "".join(
        _GARBAGE_ALPHABET[int(i)]
        for i in rng.integers(0, len(_GARBAGE_ALPHABET), size=length)
    )


def resolve_error_count(
    n_rows: int, rate: float = 0.01, small_dataset_errors: int = 30
) -> int:
    """The paper's injection budget.

    1% of rows, except that small datasets get a slightly higher rate,
    capped at ``small_dataset_errors`` (= 30) corrupted rows.
    """
    if n_rows <= 0:
        return 0
    target = int(round(n_rows * rate))
    if target < small_dataset_errors:
        target = min(small_dataset_errors, max(n_rows // 10, 1))
    return min(target, n_rows)


def inject_errors(
    relation: Relation,
    rate: float = 0.01,
    rng: np.random.Generator | None = None,
    attributes: list[str] | None = None,
    garbage_fraction: float = 0.3,
    n_errors: int | None = None,
) -> InjectionReport:
    """Corrupt random cells of a relation.

    Parameters
    ----------
    rate:
        Fraction of rows to corrupt (adjusted per the paper's protocol
        by :func:`resolve_error_count` unless ``n_errors`` is given).
    attributes:
        Candidate columns; defaults to all categorical columns.
    garbage_fraction:
        Probability a corruption writes an out-of-domain garbage string
        instead of swapping to another in-domain value.
    """
    rng = rng or np.random.default_rng(0)
    candidates = list(
        attributes
        if attributes is not None
        else relation.schema.categorical_names()
    )
    if not candidates:
        raise ValueError("no categorical attributes to corrupt")
    count = (
        n_errors
        if n_errors is not None
        else resolve_error_count(relation.n_rows, rate)
    )
    count = min(count, relation.n_rows)
    rows = rng.choice(relation.n_rows, size=count, replace=False)

    # Work on copies of the code arrays, extending codecs as needed.
    codes = {name: relation.codes(name).copy() for name in candidates}
    codecs: dict[str, Codec] = {
        name: relation.codec(name) for name in candidates
    }
    errors: list[InjectedError] = []
    for row in rows:
        attribute = candidates[int(rng.integers(len(candidates)))]
        codec = codecs[attribute]
        original_code = int(codes[attribute][row])
        original = codec.decode_one(original_code)
        corrupted = _pick_corruption(
            codec, original_code, garbage_fraction, rng
        )
        codec = codec.extend([corrupted])
        codecs[attribute] = codec
        codes[attribute][row] = codec.encode_one(corrupted)
        errors.append(
            InjectedError(int(row), attribute, original, corrupted)
        )

    out = relation
    for name in candidates:
        if codecs[name] is not relation.codec(name):
            out = out.align_codecs({name: codecs[name]})
        out = out.replace_codes(name, codes[name])
    row_mask = np.zeros(relation.n_rows, dtype=bool)
    for error in errors:
        row_mask[error.row] = True
    return InjectionReport(relation=out, errors=errors, row_mask=row_mask)


def _pick_corruption(
    codec: Codec,
    original_code: int,
    garbage_fraction: float,
    rng: np.random.Generator,
) -> object:
    """Choose a replacement value different from the original."""
    use_garbage = (
        rng.random() < garbage_fraction or codec.cardinality <= 1
    )
    if use_garbage:
        while True:
            garbage = _garbage_string(rng)
            if garbage not in codec:
                return garbage
    while True:
        code = int(rng.integers(codec.cardinality))
        if code != original_code or codec.cardinality == 1:
            return codec.decode_one(code)
