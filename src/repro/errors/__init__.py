"""Error model: injection, detection, handling strategies."""

from .detect import DetectionResult, Violation, detect_errors
from .handle import (
    DataIntegrityError,
    HandlingOutcome,
    Strategy,
    apply_strategy,
)
from .stream import BatchGuard, GuardStats, RowGuard, RowVerdict
from .inject import (
    InjectedError,
    InjectionReport,
    inject_errors,
    resolve_error_count,
)

__all__ = [
    "BatchGuard",
    "RowGuard",
    "RowVerdict",
    "GuardStats",
    "DetectionResult",
    "Violation",
    "detect_errors",
    "DataIntegrityError",
    "HandlingOutcome",
    "Strategy",
    "apply_strategy",
    "InjectedError",
    "InjectionReport",
    "inject_errors",
    "resolve_error_count",
]
