"""Streaming row-level guarding (the deployment mode of Fig. 1).

The batch path (:mod:`repro.errors.detect`) vectorizes over a whole
relation; production guardrails instead vet rows *one at a time* as
they arrive at the model.  :class:`RowGuard` compiles a program into
per-statement hash indexes (determinant values → expected literal), so
each row costs O(#statements) dictionary probes regardless of how many
branches the program has.

    guard = RowGuard(program)
    verdict = guard.check({"rel": "Husband", "marital-status": "Single"})
    verdict.ok                 # False
    verdict.violations         # [("marital-status", "Married-civ-spouse")]
    guard.rectify(row)         # repaired copy of the row
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from .. import obs
from ..dsl import Program


@dataclass(frozen=True)
class RowVerdict:
    """Outcome of vetting one row."""

    ok: bool
    violations: tuple[tuple[str, Hashable], ...] = ()
    """(attribute, expected value) per violated statement."""

    def __bool__(self) -> bool:
        return self.ok


@dataclass
class _CompiledStatement:
    determinants: tuple[str, ...]
    dependent: str
    table: dict[tuple[Hashable, ...], Hashable]


@dataclass
class GuardStats:
    """Counters a long-running guard accumulates."""

    rows_checked: int = 0
    rows_flagged: int = 0
    rows_rectified: int = 0
    violations_by_attribute: dict[str, int] = field(default_factory=dict)

    @property
    def violation_rate(self) -> float:
        """Fraction of checked rows that were flagged."""
        if self.rows_checked == 0:
            return 0.0
        return self.rows_flagged / self.rows_checked


class RowGuard:
    """A program compiled for per-row checking and repair."""

    def __init__(self, program: Program):
        self.program = program
        self._statements: list[_CompiledStatement] = []
        for statement in program:
            table: dict[tuple[Hashable, ...], Hashable] = {}
            for branch in statement.branches:
                key = tuple(
                    branch.condition.value_of(d)
                    for d in statement.determinants
                )
                table[key] = branch.literal
            self._statements.append(
                _CompiledStatement(
                    statement.determinants, statement.dependent, table
                )
            )
        self.stats = GuardStats()

    # ------------------------------------------------------------------

    def check(self, row: Mapping[str, Hashable]) -> RowVerdict:
        """Vet one row; O(#statements) hash probes.

        With tracing enabled (:mod:`repro.obs`) each call also emits a
        latency sample and a tripwire-style ``guard.verdict`` record;
        disabled, the only overhead is one flag check.
        """
        traced = obs.enabled()
        start = time.perf_counter() if traced else 0.0
        verdict = self._verdict(row)
        self.stats.rows_checked += 1
        if not verdict.ok:
            self.stats.rows_flagged += 1
            for attribute, _ in verdict.violations:
                self.stats.violations_by_attribute[attribute] = (
                    self.stats.violations_by_attribute.get(attribute, 0)
                    + 1
                )
        if traced:
            obs.observe(
                "guard.check_seconds", time.perf_counter() - start
            )
            obs.record(
                "guard.verdict",
                ok=verdict.ok,
                attributes=[a for a, _ in verdict.violations],
            )
        return verdict

    def _verdict(self, row: Mapping[str, Hashable]) -> RowVerdict:
        """Stat-free vetting (used internally by repair)."""
        violations: list[tuple[str, Hashable]] = []
        for compiled in self._statements:
            expected = self._expected(compiled, row)
            if expected is _NO_BRANCH:
                continue
            if row.get(compiled.dependent) != expected:
                violations.append((compiled.dependent, expected))
        if violations:
            return RowVerdict(False, tuple(violations))
        return RowVerdict(True)

    def rectify(self, row: Mapping[str, Hashable]) -> dict[str, Hashable]:
        """Repair one row (same policy as the batch rectify strategy).

        Single-cell minimal repair when one conforms; otherwise the
        per-statement dependent rewrite, applied in program order so
        upstream repairs feed downstream checks.
        """
        from .handle import _program_domains, _repair_row

        traced = obs.enabled()
        start = time.perf_counter() if traced else 0.0
        verdict = self._verdict(row)
        if verdict.ok:
            return dict(row)
        self.stats.rows_rectified += 1
        repaired = dict(row)
        changes = _repair_row(
            self.program, repaired, _program_domains(self.program)
        )
        repaired.update(changes)
        if traced:
            obs.observe(
                "guard.rectify_seconds", time.perf_counter() - start
            )
            obs.record(
                "guard.rectify", attributes=sorted(changes)
            )
        return repaired

    def process(
        self, row: Mapping[str, Hashable], strategy: str = "rectify"
    ) -> dict[str, Hashable] | None:
        """One-shot vetting under a named strategy.

        ``raise`` raises :class:`DataIntegrityError`; ``ignore`` returns
        the row as-is; ``coerce`` blanks violated dependents (None);
        ``rectify`` repairs.  Returns the (possibly modified) row.
        """
        from .handle import DataIntegrityError, Strategy

        parsed = Strategy.parse(strategy)
        if parsed is Strategy.RECTIFY:
            return self.rectify(row)
        verdict = self.check(row)
        if verdict.ok:
            return dict(row)
        if parsed is Strategy.RAISE:
            raise DataIntegrityError(
                f"row violates {len(verdict.violations)} constraints",
                rows=[],
            )
        out = dict(row)
        if parsed is Strategy.COERCE:
            for attribute, _ in verdict.violations:
                out[attribute] = None
        return out

    # ------------------------------------------------------------------

    def _expected(
        self, compiled: _CompiledStatement, row: Mapping[str, Hashable]
    ):
        key = tuple(row.get(d, _NO_BRANCH) for d in compiled.determinants)
        return compiled.table.get(key, _NO_BRANCH)

    def __len__(self) -> int:
        return len(self._statements)


class _Sentinel:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<no-branch>"


_NO_BRANCH = _Sentinel()
