"""Streaming guards (the deployment mode of Fig. 1).

The batch path (:mod:`repro.errors.detect`) vectorizes over a whole
relation; production guardrails instead vet rows as they arrive at the
model.  Two compiled forms of the same canonical semantics
(first-match, state-threaded Eqn. 1 — see :mod:`repro.dsl.semantics`)
cover the two arrival patterns:

* :class:`RowGuard` vets rows *one at a time*: the program becomes
  per-statement hash indexes (determinant values → expected literal),
  so each row costs O(#statements) dictionary probes regardless of how
  many branches the program has.
* :class:`BatchGuard` vets *micro-batches*: rows are integer-coded and
  pushed through the numpy kernels of :mod:`repro.dsl.compiled`,
  amortizing the per-row probe overhead across the batch.

    guard = RowGuard(program)
    verdict = guard.check({"rel": "Husband", "marital-status": "Single"})
    verdict.ok                 # False
    verdict.violations         # (("marital-status", "Married-civ-spouse"),)
    guard.rectify(row)         # repaired copy of the row

    batch = BatchGuard(program, batch_size=256)
    for verdict in batch.stream(incoming_rows):
        ...
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .. import obs
from ..dsl import Program
from ..dsl.compiled import compile_program, compiled_for
from ..relation import Relation
from ..relation.encoding import Codec


@dataclass(frozen=True)
class RowVerdict:
    """Outcome of vetting one row."""

    ok: bool
    violations: tuple[tuple[str, Hashable], ...] = ()
    """(attribute, expected value) per violated statement."""

    def __bool__(self) -> bool:
        return self.ok


@dataclass
class _CompiledStatement:
    determinants: tuple[str, ...]
    dependent: str
    table: dict[tuple[Hashable, ...], Hashable]


@dataclass
class GuardStats:
    """Counters a long-running guard accumulates."""

    rows_checked: int = 0
    rows_flagged: int = 0
    rows_rectified: int = 0
    violations_by_attribute: dict[str, int] = field(default_factory=dict)

    @property
    def violation_rate(self) -> float:
        """Fraction of checked rows that were flagged."""
        if self.rows_checked == 0:
            return 0.0
        return self.rows_flagged / self.rows_checked


class RowGuard:
    """A program compiled for per-row checking and repair."""

    def __init__(self, program: Program):
        self.program = program
        self._statements: list[_CompiledStatement] = []
        for statement in program:
            table: dict[tuple[Hashable, ...], Hashable] = {}
            for branch in statement.branches:
                key = tuple(
                    branch.condition.value_of(d)
                    for d in statement.determinants
                )
                # setdefault, not assignment: if two branches ever carry
                # the same determinant values (impossible via the
                # Statement constructor, but hand-built programs exist),
                # first-match order must win, not last-write.
                table.setdefault(key, branch.literal)
            self._statements.append(
                _CompiledStatement(
                    statement.determinants, statement.dependent, table
                )
            )
        self.stats = GuardStats()
        self._drift = None
        self._drift_tick = 0
        self._drift_every = 1

    # ------------------------------------------------------------------

    def attach_drift(self, detector) -> None:
        """Feed every verdict into a drift detector.

        ``detector`` follows the :class:`repro.resilience.DriftDetector`
        protocol (``sample_every`` + ``ingest(row, ok)``); pass ``None``
        to detach.  The guard inlines the detector's 1-in-k sampling
        countdown (``_drift_tick``; 0 doubles as "no detector"), so a
        skipped row pays one decrement — no method call — and only
        every k-th verdict reaches the detector.
        """
        self._drift = detector
        self._drift_every = (
            getattr(detector, "sample_every", 1) if detector else 1
        )
        self._drift_tick = self._drift_every if detector else 0

    @property
    def drift(self):
        """The attached drift detector, if any."""
        return self._drift

    def check(self, row: Mapping[str, Hashable]) -> RowVerdict:
        """Vet one row; O(#statements) hash probes.

        With tracing enabled (:mod:`repro.obs`) each call also emits a
        latency sample and a tripwire-style ``guard.verdict`` record;
        disabled, the only overhead is one flag check.
        """
        traced = obs.enabled()
        start = time.perf_counter() if traced else 0.0
        verdict = self._verdict(row)
        tick = self._drift_tick
        if tick:
            if tick != 1:
                self._drift_tick = tick - 1
            else:
                self._drift_tick = self._drift_every
                self._drift.ingest(row, verdict.ok)
        self.stats.rows_checked += 1
        if not verdict.ok:
            self.stats.rows_flagged += 1
            for attribute, _ in verdict.violations:
                self.stats.violations_by_attribute[attribute] = (
                    self.stats.violations_by_attribute.get(attribute, 0)
                    + 1
                )
        if traced:
            obs.observe(
                "guard.check_seconds", time.perf_counter() - start
            )
            obs.record(
                "guard.verdict",
                ok=verdict.ok,
                attributes=[a for a, _ in verdict.violations],
            )
        return verdict

    def _verdict(self, row: Mapping[str, Hashable]) -> RowVerdict:
        """Stat-free vetting (used internally by repair).

        Implements the canonical Eqn. 1 semantics: statements probe the
        *threaded* state (an upstream rewrite feeds downstream reads),
        and the verdict compares the final state with the input row.
        """
        original = dict(row)
        state = dict(original)
        writes: list[tuple[str, Hashable]] = []
        for compiled in self._statements:
            expected = self._expected(compiled, state)
            if expected is _NO_BRANCH:
                continue
            if state.get(compiled.dependent) != expected:
                writes.append((compiled.dependent, expected))
                state[compiled.dependent] = expected
        if state == original:
            return RowVerdict(True)
        return RowVerdict(False, tuple(writes))

    def rectify(self, row: Mapping[str, Hashable]) -> dict[str, Hashable]:
        """Repair one row (same policy as the batch rectify strategy).

        Single-cell minimal repair when one conforms; otherwise the
        per-statement dependent rewrite, applied in program order so
        upstream repairs feed downstream checks.
        """
        from .handle import _program_domains, _repair_row

        traced = obs.enabled()
        start = time.perf_counter() if traced else 0.0
        verdict = self._verdict(row)
        if verdict.ok:
            return dict(row)
        self.stats.rows_rectified += 1
        repaired = dict(row)
        changes = _repair_row(
            self.program, repaired, _program_domains(self.program)
        )
        repaired.update(changes)
        if traced:
            obs.observe(
                "guard.rectify_seconds", time.perf_counter() - start
            )
            obs.record(
                "guard.rectify", attributes=sorted(changes)
            )
        return repaired

    def process(
        self, row: Mapping[str, Hashable], strategy: str = "rectify"
    ) -> dict[str, Hashable] | None:
        """One-shot vetting under a named strategy.

        ``raise`` raises :class:`DataIntegrityError`; ``ignore`` returns
        the row as-is; ``coerce`` blanks violated dependents (None);
        ``rectify`` repairs.  Returns the (possibly modified) row.
        """
        from .handle import DataIntegrityError, Strategy

        parsed = Strategy.parse(strategy)
        if parsed is Strategy.RECTIFY:
            return self.rectify(row)
        verdict = self.check(row)
        if verdict.ok:
            return dict(row)
        if parsed is Strategy.RAISE:
            raise DataIntegrityError(
                f"row violates {len(verdict.violations)} constraints",
                rows=[],
            )
        out = dict(row)
        if parsed is Strategy.COERCE:
            for attribute, _ in verdict.violations:
                out[attribute] = None
        return out

    # ------------------------------------------------------------------

    def _expected(
        self, compiled: _CompiledStatement, row: Mapping[str, Hashable]
    ):
        # row.get(d) defaults to None, matching condition_holds: an
        # absent attribute behaves like a missing (None) cell.
        key = tuple(row.get(d) for d in compiled.determinants)
        return compiled.table.get(key, _NO_BRANCH)

    def __len__(self) -> int:
        return len(self._statements)


class BatchGuard:
    """Vectorized sibling of :class:`RowGuard` for micro-batched vetting.

    Rows are integer-coded against the program's compiled codecs and
    evaluated by the numpy kernels of :mod:`repro.dsl.compiled`, so the
    per-row cost of dictionary probes is amortized across the batch.
    Verdicts are identical to :class:`RowGuard` — both implement the
    canonical first-match, state-threaded Eqn. 1 semantics.

    Parameters
    ----------
    program:
        The integrity-constraint program to enforce.
    codecs:
        Optional base codecs (e.g. the training relation's) to compile
        against; the program's own literals are always folded in, so
        omitting this is safe.
    batch_size:
        Rows per kernel invocation when consuming a stream.
    """

    def __init__(
        self,
        program: Program,
        codecs: Mapping[str, Codec] | None = None,
        batch_size: int = 256,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.program = program
        self.batch_size = int(batch_size)
        self._compiled = compile_program(program, codecs)
        self.stats = GuardStats()
        self._drift = None
        self._drift_tick = 0
        self._drift_every = 1

    # ------------------------------------------------------------------

    def attach_drift(self, detector) -> None:
        """Feed every verdict into a drift detector (see
        :meth:`RowGuard.attach_drift`); ``None`` detaches.  The 1-in-k
        sampling countdown carries across batch boundaries, so the
        batch path samples exactly the rows the row path would."""
        self._drift = detector
        self._drift_every = (
            getattr(detector, "sample_every", 1) if detector else 1
        )
        self._drift_tick = self._drift_every if detector else 0

    @property
    def drift(self):
        """The attached drift detector, if any."""
        return self._drift

    def check_batch(
        self, rows: Sequence[Mapping[str, Hashable]]
    ) -> list[RowVerdict]:
        """Vet a batch of rows in one kernel pass.

        Returns one :class:`RowVerdict` per input row, in order.  With
        tracing enabled a ``guard.batch`` record and a latency sample
        are emitted per flush.
        """
        rows = list(rows)
        traced = obs.enabled()
        start = time.perf_counter() if traced else 0.0
        verdicts = self._verdicts(rows)
        if self._drift is not None and rows:
            # Inline the 1-in-k countdown (as RowGuard does) so the
            # ``.ok`` extraction only runs over the sampled slice.
            n = len(rows)
            start = self._drift_tick - 1
            if start >= n:
                self._drift_tick -= n
            else:
                k = self._drift_every
                last = start + ((n - 1 - start) // k) * k
                self._drift_tick = last + k - n + 1
                sampled = verdicts[start::k] if k > 1 else verdicts
                self._drift.ingest_many(
                    rows[start::k] if k > 1 else rows,
                    [verdict.ok for verdict in sampled],
                )
        flagged = 0
        for verdict in verdicts:
            self.stats.rows_checked += 1
            if not verdict.ok:
                flagged += 1
                self.stats.rows_flagged += 1
                for attribute, _ in verdict.violations:
                    self.stats.violations_by_attribute[attribute] = (
                        self.stats.violations_by_attribute.get(attribute, 0)
                        + 1
                    )
        if traced:
            obs.observe(
                "guard.batch_seconds", time.perf_counter() - start
            )
            obs.record(
                "guard.batch", n_rows=len(rows), flagged=flagged
            )
        return verdicts

    def check(self, row: Mapping[str, Hashable]) -> RowVerdict:
        """Vet a single row (a batch of one; prefer :meth:`stream`)."""
        return self.check_batch([row])[0]

    def stream(
        self, rows: Iterable[Mapping[str, Hashable]]
    ) -> Iterator[RowVerdict]:
        """Vet an incoming row stream with micro-batching.

        Rows are buffered up to ``batch_size`` and flushed through the
        kernel; verdicts are yielded in arrival order.  The tail batch
        flushes when the iterable is exhausted.
        """
        buffer: list[Mapping[str, Hashable]] = []
        for row in rows:
            buffer.append(row)
            if len(buffer) >= self.batch_size:
                yield from self.check_batch(buffer)
                buffer = []
        if buffer:
            yield from self.check_batch(buffer)

    def check_relation(self, relation: Relation) -> np.ndarray:
        """Row-violation mask for a whole relation.

        Compiles against the relation's own codecs (memoized), so this
        matches :func:`repro.errors.detect.detect_errors` bit for bit.
        """
        result = compiled_for(self.program, relation).detect(relation)
        self.stats.rows_checked += relation.n_rows
        self.stats.rows_flagged += result.n_flagged
        return result.row_mask

    # ------------------------------------------------------------------

    def _verdicts(
        self, rows: list[Mapping[str, Hashable]]
    ) -> list[RowVerdict]:
        if not rows:
            return []
        compiled = self._compiled
        if not compiled.statements:
            return [RowVerdict(True) for _ in rows]
        codes = {
            attribute: np.fromiter(
                (
                    compiled.encode_value(attribute, row.get(attribute))
                    for row in rows
                ),
                dtype=np.int32,
                count=len(rows),
            )
            for attribute in compiled.attributes
        }
        result = compiled.run_codes(codes, len(rows))
        per_row: dict[int, list[tuple[str, Hashable]]] = {}
        for row_index, branch in result.iter_violations():
            per_row.setdefault(row_index, []).append(
                (branch.dependent, branch.literal)
            )
        return [
            RowVerdict(False, tuple(per_row[index]))
            if index in per_row
            else RowVerdict(True)
            for index in range(len(rows))
        ]

    def __len__(self) -> int:
        return len(self._compiled.statements)


class _Sentinel:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<no-branch>"


_NO_BRANCH = _Sentinel()
