"""Error-handling strategies (paper §7, Example 1.2).

Mirroring pandas' error-handling vocabulary, GUARDRAIL offers:

* ``raise``  — abort on the first violating row;
* ``ignore`` — pass data through unchanged (violations still reported);
* ``coerce`` — blank the violated dependent cells (NaN-equivalent);
* ``rectify`` — GUARDRAIL's novel strategy: replace erroneous cells
  with the *most likely correct value* via a minimal single-cell
  repair over the implicated attributes, falling back to the
  per-statement dependent rewrite ``[[p]]_t`` (the iterative process
  the case study in appendix F walks through).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..dsl import Program
from ..relation import MISSING, Relation
from .detect import DetectionResult, detect_errors


class DataIntegrityError(ValueError):
    """Raised by the ``raise`` strategy on a constraint violation."""

    def __init__(self, message: str, rows: list[int]):
        super().__init__(message)
        self.rows = rows


class Strategy(enum.Enum):
    """The four error-handling strategies."""

    RAISE = "raise"
    IGNORE = "ignore"
    COERCE = "coerce"
    RECTIFY = "rectify"

    @classmethod
    def parse(cls, value: "Strategy | str") -> "Strategy":
        """Coerce a string (or Strategy) into a Strategy member."""
        if isinstance(value, Strategy):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            options = ", ".join(s.value for s in cls)
            raise ValueError(
                f"unknown strategy {value!r}; expected one of {options}"
            ) from None


@dataclass
class HandlingOutcome:
    """The handled relation plus what was done to it."""

    relation: Relation
    detection: DetectionResult
    strategy: Strategy
    cells_changed: list[tuple[int, str]] = field(default_factory=list)

    @property
    def n_changed(self) -> int:
        """Number of cells the strategy modified."""
        return len(self.cells_changed)


def apply_strategy(
    program: Program,
    relation: Relation,
    strategy: "Strategy | str" = Strategy.RECTIFY,
    pool=None,
) -> HandlingOutcome:
    """Vet a relation against a program under the chosen strategy.

    ``pool`` (a :class:`repro.parallel.WorkerPool`, a worker count, or
    ``None``) parallelizes the detection pass over row shards; the
    strategy then acts on the merged, bit-identical verdicts.
    """
    strategy = Strategy.parse(strategy)
    detection = detect_errors(program, relation, pool=pool)
    if strategy is Strategy.RAISE:
        if detection.n_flagged_rows:
            rows = [int(r) for r in detection.flagged_rows()[:10]]
            raise DataIntegrityError(
                f"{detection.n_flagged_rows} rows violate the integrity "
                f"constraints (first rows: {rows})",
                rows,
            )
        return HandlingOutcome(relation, detection, strategy)
    if strategy is Strategy.IGNORE:
        return HandlingOutcome(relation, detection, strategy)
    if strategy is Strategy.COERCE:
        return _coerce(program, relation, detection)
    return _rectify(program, relation, detection)


def _coerce(
    program: Program, relation: Relation, detection: DetectionResult
) -> HandlingOutcome:
    """Blank every violated dependent cell.

    The blanked cells are exactly the ones the canonical detection
    implicates (first-match, state-threaded), so a corrupted upstream
    determinant no longer blanks the — consistent — cells downstream
    of its corrected value.
    """
    changed: list[tuple[int, str]] = []
    codes: dict[str, np.ndarray] = {}
    for violation in detection.violations:
        name = violation.attribute
        if name not in codes:
            codes[name] = relation.codes(name).copy()
        codes[name][violation.row] = MISSING
        changed.append((violation.row, name))
    out = relation
    for name, arr in codes.items():
        out = out.replace_codes(name, arr)
    return HandlingOutcome(out, detection, Strategy.COERCE, changed)


def _rectify(
    program: Program, relation: Relation, detection: DetectionResult
) -> HandlingOutcome:
    """Replace erroneous cells with the most likely correct values.

    For each violating row we search for the *minimal repair*: a single
    cell change (over the attributes the violated branches implicate —
    dependents and determinants alike) after which the whole row
    conforms to the program.  This recovers the common case where a
    corrupted determinant triggers violations in several downstream
    statements at once: the shared determinant is the likely culprit,
    not the (correct) dependents.  When no single-cell repair conforms,
    we fall back to the per-statement dependent rewrite ``[[p]]_t``
    (the case study's iterative process).
    """
    from ..dsl.semantics import run_program

    domains = _program_domains(program)
    updates: dict[str, dict[int, Hashable]] = {}
    changed: list[tuple[int, str]] = []
    for row_index in detection.flagged_rows():
        row = relation.row(int(row_index))
        repaired = _repair_row(program, row, domains)
        for name, value in repaired.items():
            if value != row[name]:
                updates.setdefault(name, {})[int(row_index)] = value
                changed.append((int(row_index), name))
        if not repaired:
            fixed = run_program(program, row)
            for name, value in fixed.items():
                if value != row[name]:
                    updates.setdefault(name, {})[int(row_index)] = value
                    changed.append((int(row_index), name))

    out = relation
    for name, cells in updates.items():
        codec = out.codec(name).extend(cells.values())
        if codec is not out.codec(name):
            out = out.align_codecs({name: codec})
        arr = out.codes(name).copy()
        for row_index, value in cells.items():
            arr[row_index] = codec.encode_one(value)
        out = out.replace_codes(name, arr)
    return HandlingOutcome(out, detection, Strategy.RECTIFY, changed)


def _program_domains(program: Program) -> dict[str, list[Hashable]]:
    """Candidate repair values per attribute: those the program mentions."""
    domains: dict[str, dict[Hashable, None]] = {}
    for statement in program:
        for branch in statement.branches:
            domains.setdefault(branch.dependent, {})[branch.literal] = None
            for name, value in branch.condition.atoms:
                domains.setdefault(name, {})[value] = None
    return {name: list(values) for name, values in domains.items()}


def _count_violations(program: Program, row: dict) -> int:
    from ..dsl.semantics import condition_holds

    count = 0
    for statement in program:
        for branch in statement.branches:
            if condition_holds(branch.condition, row) and (
                row.get(branch.dependent) != branch.literal
            ):
                count += 1
    return count


def _count_satisfied(program: Program, row: dict) -> int:
    """Branches whose condition fires and whose assignment is met."""
    from ..dsl.semantics import condition_holds

    count = 0
    for statement in program:
        for branch in statement.branches:
            if condition_holds(branch.condition, row) and (
                row.get(branch.dependent) == branch.literal
            ):
                count += 1
    return count


def _repair_row(
    program: Program,
    row: dict,
    domains: dict[str, list[Hashable]],
) -> dict:
    """Best single-cell repair of a violating row, or {} if none conforms.

    Candidates are the attributes implicated by the violated branches;
    ties between conforming repairs prefer dependents (the case-study
    behaviour) over determinants.
    """
    from ..dsl.semantics import condition_holds, run_program

    violated = []
    for statement in program:
        for branch in statement.branches:
            if condition_holds(branch.condition, row) and (
                row.get(branch.dependent) != branch.literal
            ):
                violated.append(branch)
    if not violated:
        return {}
    dependents = {b.dependent for b in violated}
    candidates = set(dependents)
    for branch in violated:
        candidates.update(branch.condition.attributes)

    best: tuple[tuple[int, int, int], str, Hashable] | None = None
    for name in sorted(candidates):
        for value in domains.get(name, ()):
            if value == row.get(name):
                continue
            trial = dict(row)
            trial[name] = value
            remaining = _count_violations(program, trial)
            preference = 0 if name in dependents else 1
            # Prefer repairs that keep the row *covered*: a repair that
            # merely steers the row outside every branch condition is a
            # degenerate way to "conform".
            coverage = _count_satisfied(program, trial)
            key = (remaining, preference, -coverage)
            if best is None or key < best[0]:
                best = (key, name, value)
    if best is not None and best[0][0] == 0:
        return {best[1]: best[2]}
    # No conforming single-cell repair: per-statement dependent rewrite.
    fixed = run_program(program, row)
    return {
        name: value for name, value in fixed.items() if value != row.get(name)
    }
