"""Translate DSL programs into standard SQL (paper §9).

The paper notes that the DSL "can be easily translated into standard SQL
queries"; this module makes that concrete in two flavours:

* :func:`violations_query` — a ``SELECT`` returning rows that violate the
  program (the detection assertion of Eqn. 1), and
* :func:`check_constraints` — per-statement ``CHECK`` constraint clauses
  suitable for a ``CREATE TABLE``/``ALTER TABLE``.
"""

from __future__ import annotations

from .ast import Branch, Condition, Literal, Program, Statement


def _sql_literal(literal: Literal) -> str:
    if isinstance(literal, bool):
        return "TRUE" if literal else "FALSE"
    if literal is None:
        return "NULL"
    if isinstance(literal, (int, float)):
        return str(literal)
    escaped = str(literal).replace("'", "''")
    return f"'{escaped}'"


def _quote_ident(name: str) -> str:
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _condition_sql(condition: Condition) -> str:
    return " AND ".join(
        f"{_quote_ident(name)} = {_sql_literal(value)}"
        for name, value in condition.atoms
    )


def branch_violation_predicate(branch: Branch) -> str:
    """SQL predicate true exactly on rows that violate the branch."""
    return (
        f"({_condition_sql(branch.condition)} AND "
        f"{_quote_ident(branch.dependent)} <> {_sql_literal(branch.literal)})"
    )


def statement_check_clause(statement: Statement) -> str:
    """A ``CHECK (...)`` clause asserting no branch of the statement is violated."""
    violations = " OR ".join(
        branch_violation_predicate(b) for b in statement.branches
    )
    return f"CHECK (NOT ({violations}))"


def check_constraints(program: Program) -> list[str]:
    """One ``CHECK`` clause per statement of the program."""
    return [statement_check_clause(s) for s in program.statements]


def violations_query(program: Program, table: str) -> str:
    """A ``SELECT`` returning every row of ``table`` violating the program."""
    if not program.statements:
        return f"SELECT * FROM {_quote_ident(table)} WHERE FALSE"
    predicates = [
        branch_violation_predicate(b)
        for s in program.statements
        for b in s.branches
    ]
    where = "\n   OR ".join(predicates)
    return f"SELECT * FROM {_quote_ident(table)}\nWHERE {where}"


def rectify_updates(program: Program, table: str) -> list[str]:
    """``UPDATE`` statements implementing the *rectify* strategy in SQL."""
    updates = []
    for statement in program.statements:
        for branch in statement.branches:
            updates.append(
                f"UPDATE {_quote_ident(table)} "
                f"SET {_quote_ident(branch.dependent)} = "
                f"{_sql_literal(branch.literal)} "
                f"WHERE {_condition_sql(branch.condition)} "
                f"AND {_quote_ident(branch.dependent)} <> "
                f"{_sql_literal(branch.literal)};"
            )
    return updates
