"""Denotational semantics of the DSL (paper §2.2, Fig. 2).

Two evaluation modes are provided:

* **Row semantics** — ``[[p]]_t``: execute a program on a single row
  (a dict-shaped program state), producing the updated state.  This is
  the semantics of Fig. 2 and drives rectification.
* **Vectorized semantics** — evaluate condition masks and violation
  masks over an entire :class:`~repro.relation.Relation` at once, which
  is how detection and the loss function are computed at scale.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from ..relation import MISSING, Relation
from .ast import Branch, Condition, Program, Statement

Row = dict[str, Hashable]


# ---------------------------------------------------------------------------
# Row semantics
# ---------------------------------------------------------------------------


def condition_holds(condition: Condition, row: Row) -> bool:
    """``[[c]]_t``: does the row satisfy every equality atom?"""
    return all(row.get(name) == literal for name, literal in condition.atoms)


def apply_branch(branch: Branch, row: Row) -> Row:
    """``[[b]]_t``: if the condition holds, assign the dependent."""
    if condition_holds(branch.condition, row):
        updated = dict(row)
        updated[branch.dependent] = branch.literal
        return updated
    return row


def apply_statement(statement: Statement, row: Row) -> Row:
    """``[[s]]_t``: apply the (at most one) matching branch."""
    for branch in statement.branches:
        if condition_holds(branch.condition, row):
            updated = dict(row)
            updated[branch.dependent] = branch.literal
            return updated
    return row


def run_program(program: Program, row: Row) -> Row:
    """``[[p]]_t``: thread the state through every statement in order."""
    state = dict(row)
    for statement in program.statements:
        state = apply_statement(statement, state)
    return state


def row_conforms(program: Program, row: Row) -> bool:
    """The error-detection assertion (paper Eqn. 1): ``[[p]]_t = t``."""
    return run_program(program, row) == dict(row)


def branch_matches(statement: Statement, row: Row) -> Branch | None:
    """The branch of ``statement`` whose condition the row satisfies."""
    for branch in statement.branches:
        if condition_holds(branch.condition, row):
            return branch
    return None


# ---------------------------------------------------------------------------
# Vectorized semantics over relations
# ---------------------------------------------------------------------------


def _literal_code(relation: Relation, attribute: str, literal: Hashable) -> int:
    """Encode ``literal`` under the relation's codec; unseen → sentinel."""
    codec = relation.codec(attribute)
    if literal is None:
        return MISSING
    if literal in codec:
        return codec.encode_one(literal)
    return -2  # matches nothing, including MISSING


def condition_mask(condition: Condition, relation: Relation) -> np.ndarray:
    """Boolean mask of rows satisfying the condition (``D^b`` membership)."""
    mask = np.ones(relation.n_rows, dtype=bool)
    for name, literal in condition.atoms:
        code = _literal_code(relation, name, literal)
        mask &= relation.codes(name) == code
    return mask


def branch_masks(
    branch: Branch, relation: Relation
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(applicable, violating)`` masks for a branch.

    ``applicable`` is the condition mask (rows in ``D^b``); ``violating``
    are applicable rows whose dependent value differs from the branch
    literal — exactly the rows counted by the 0/1 loss.
    """
    applicable = condition_mask(branch.condition, relation)
    expected = _literal_code(relation, branch.dependent, branch.literal)
    violating = applicable & (relation.codes(branch.dependent) != expected)
    return applicable, violating


def statement_violations(statement: Statement, relation: Relation) -> np.ndarray:
    """Mask of rows violating any branch of the statement."""
    out = np.zeros(relation.n_rows, dtype=bool)
    for branch in statement.branches:
        _, violating = branch_masks(branch, relation)
        out |= violating
    return out


def program_violations(program: Program, relation: Relation) -> np.ndarray:
    """Mask of rows violating the program (Eqn. 1 vectorized over D)."""
    out = np.zeros(relation.n_rows, dtype=bool)
    for statement in program.statements:
        out |= statement_violations(statement, relation)
    return out


def statement_coverage_mask(statement: Statement, relation: Relation) -> np.ndarray:
    """Mask of rows covered by any branch of the statement (``D^s``)."""
    out = np.zeros(relation.n_rows, dtype=bool)
    for branch in statement.branches:
        out |= condition_mask(branch.condition, relation)
    return out
