"""Denotational semantics of the DSL (paper §2.2, Fig. 2).

**The canonical semantics (Eqn. 1).**  There is exactly one notion of
"row ``t`` is erroneous" in this codebase: ``[[p]]_t != t``, where
``[[p]]_t`` executes the program's statements in order, each statement
applies the **first** branch whose condition the *current* state
satisfies, and the **updated state is threaded** into the statements
that follow.  Every evaluation path implements this definition:

* **Row semantics** (here): :func:`run_program` / :func:`row_conforms`
  — the executable reference, also driving rectification.
* **Vectorized semantics**: :func:`program_violations` (delegating to
  the compiled kernels of :mod:`repro.dsl.compiled`) — identical
  verdicts, computed over whole relations at once.
* **Streaming guards**: :class:`repro.errors.stream.RowGuard` and
  :class:`~repro.errors.stream.BatchGuard` — identical verdicts, per
  incoming row or micro-batch.

The *branch-local* helpers (:func:`condition_mask`,
:func:`branch_masks`) are deliberately not state-threaded: they back
the ε-validity / loss / coverage metrics (Eqns. 2–6), which judge each
branch against the data as observed.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from ..relation import MISSING, Relation
from .ast import Branch, Condition, Program, Statement

Row = dict[str, Hashable]


# ---------------------------------------------------------------------------
# Row semantics
# ---------------------------------------------------------------------------


def condition_holds(condition: Condition, row: Row) -> bool:
    """``[[c]]_t``: does the row satisfy every equality atom?"""
    return all(row.get(name) == literal for name, literal in condition.atoms)


def apply_branch(branch: Branch, row: Row) -> Row:
    """``[[b]]_t``: if the condition holds, assign the dependent."""
    if condition_holds(branch.condition, row):
        updated = dict(row)
        updated[branch.dependent] = branch.literal
        return updated
    return row


def apply_statement(statement: Statement, row: Row) -> Row:
    """``[[s]]_t``: apply the (at most one) matching branch."""
    for branch in statement.branches:
        if condition_holds(branch.condition, row):
            updated = dict(row)
            updated[branch.dependent] = branch.literal
            return updated
    return row


def run_program(program: Program, row: Row) -> Row:
    """``[[p]]_t``: thread the state through every statement in order."""
    state = dict(row)
    for statement in program.statements:
        state = apply_statement(statement, state)
    return state


def row_conforms(program: Program, row: Row) -> bool:
    """The error-detection assertion (paper Eqn. 1): ``[[p]]_t = t``."""
    return run_program(program, row) == dict(row)


def branch_matches(statement: Statement, row: Row) -> Branch | None:
    """The branch of ``statement`` whose condition the row satisfies."""
    for branch in statement.branches:
        if condition_holds(branch.condition, row):
            return branch
    return None


# ---------------------------------------------------------------------------
# Vectorized semantics over relations
# ---------------------------------------------------------------------------


def _literal_code(relation: Relation, attribute: str, literal: Hashable) -> int:
    """Encode ``literal`` under the relation's codec; unseen → sentinel."""
    codec = relation.codec(attribute)
    if literal is None:
        return MISSING
    if literal in codec:
        return codec.encode_one(literal)
    return -2  # matches nothing, including MISSING


def condition_mask(condition: Condition, relation: Relation) -> np.ndarray:
    """Boolean mask of rows satisfying the condition (``D^b`` membership)."""
    mask = np.ones(relation.n_rows, dtype=bool)
    for name, literal in condition.atoms:
        code = _literal_code(relation, name, literal)
        mask &= relation.codes(name) == code
    return mask


def branch_masks(
    branch: Branch, relation: Relation
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(applicable, violating)`` masks for a branch.

    ``applicable`` is the condition mask (rows in ``D^b``); ``violating``
    are applicable rows whose dependent value differs from the branch
    literal — exactly the rows counted by the 0/1 loss.
    """
    applicable = condition_mask(branch.condition, relation)
    expected = _literal_code(relation, branch.dependent, branch.literal)
    violating = applicable & (relation.codes(branch.dependent) != expected)
    return applicable, violating


def statement_violations(statement: Statement, relation: Relation) -> np.ndarray:
    """Mask of rows whose *first* matching branch would rewrite them.

    First-match, like :func:`apply_statement`: once a branch's
    condition claims a row, later branches never see it, so a row can
    never be double-flagged by overlapping conditions.
    """
    out = np.zeros(relation.n_rows, dtype=bool)
    unclaimed = np.ones(relation.n_rows, dtype=bool)
    for branch in statement.branches:
        applicable, violating = branch_masks(branch, relation)
        out |= violating & unclaimed
        unclaimed &= ~applicable
    return out


def program_violations(program: Program, relation: Relation) -> np.ndarray:
    """Mask of rows violating the program (Eqn. 1 vectorized over D).

    Exactly ``[not row_conforms(p, t) for t in D]``: first-match branch
    selection *and* state threading, so a statement that rewrites an
    attribute feeds the corrected value to the statements after it.
    Implemented by the compiled kernels (:mod:`repro.dsl.compiled`),
    which cache condition masks per relation.
    """
    from .compiled import compiled_for

    return compiled_for(program, relation).detect(relation).row_mask


def statement_coverage_mask(statement: Statement, relation: Relation) -> np.ndarray:
    """Mask of rows covered by any branch of the statement (``D^s``)."""
    out = np.zeros(relation.n_rows, dtype=bool)
    for branch in statement.branches:
        out |= condition_mask(branch.condition, relation)
    return out
