"""Compiled integer-coded kernels for the DSL (the detection fast path).

This module is the single *fast* implementation of the canonical
Eqn. 1 semantics defined in :mod:`repro.dsl.semantics`: a row is
erroneous iff ``[[p]]_t != t``, where ``[[p]]_t`` applies the **first**
matching branch of each statement and **threads the updated state**
into the statements that follow.  Everything vectorized in the repo —
:func:`repro.errors.detect.detect_errors`, the 0/1 loss in
:mod:`repro.dsl.metrics`, coverage selection during synthesis, the SQL
executor's guard stage, and :class:`repro.errors.stream.BatchGuard` —
funnels through the kernels here, so the batch paths cannot drift from
the row semantics again.

Three layers of caching make repeated evaluation cheap:

* a **compile cache**: :func:`compile_program` memoizes the
  integer-coded form of a program against a codec set, so a program is
  lowered once per deployment, not once per call;
* a **condition-mask cache** keyed by ``(relation, condition)``: the
  boolean mask of each branch condition over a relation is computed at
  most once (relations are immutable by convention; entries die with
  the relation via weak references);
* a **branch-stats cache** keyed by ``(relation, branch)`` holding the
  ``(support, loss)`` pair behind the ε-validity and 0/1-loss metrics.

The kernel resolves each statement's first matching branch per row and
applies the chosen writes to copies of the code arrays so later
statements observe the updated state, mirroring ``run_program``.  Two
resolution strategies share the same first-match rule:

* the fast path precomputes a **mixed-radix lookup table** (determinant
  code tuple → branch index, earliest branch winning collisions), so a
  statement costs one gather per determinant plus one table probe;
* when the key space is too large to tabulate, the per-branch condition
  masks are stacked into a ``(n_branches, n_rows)`` matrix and the
  first match is ``argmax`` over the stack — the exact first-match rule
  of ``apply_statement``.
"""

from __future__ import annotations

import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping

import numpy as np

from .. import obs
from ..relation import MISSING, Relation
from ..relation.encoding import Codec
from .ast import Branch, Condition, Program

UNSEEN: int = -2
"""Code for a value outside the compile-time codecs: it matches nothing,
not even :data:`~repro.relation.MISSING`."""


# ---------------------------------------------------------------------------
# Shared per-relation caches
# ---------------------------------------------------------------------------

_MASK_CACHE: "weakref.WeakKeyDictionary[Relation, dict[Condition, np.ndarray]]" = (
    weakref.WeakKeyDictionary()
)
_STATS_CACHE: "weakref.WeakKeyDictionary[Relation, dict[Branch, tuple[int, int]]]" = (
    weakref.WeakKeyDictionary()
)
_DETECT_CACHE: "weakref.WeakKeyDictionary[Relation, dict[CompiledProgram, KernelResult]]" = (
    weakref.WeakKeyDictionary()
)
_COMPILE_CACHE: "OrderedDict[tuple, CompiledProgram]" = OrderedDict()
_COMPILE_CACHE_SIZE = 128


def _mask_bucket(relation: Relation) -> dict[Condition, np.ndarray]:
    bucket = _MASK_CACHE.get(relation)
    if bucket is None:
        bucket = {}
        _MASK_CACHE[relation] = bucket
    return bucket


def cached_condition_mask(
    condition: Condition, relation: Relation
) -> np.ndarray:
    """The condition's boolean mask over ``relation``, memoized.

    The returned array is **read-only** and shared across callers; copy
    it before mutating.  Entries are keyed by the relation object (weakly)
    and the condition value, so they vanish when the relation does.
    """
    bucket = _mask_bucket(relation)
    mask = bucket.get(condition)
    if mask is None:
        if obs.enabled():
            obs.count("dsl.mask_cache.miss")
        from .semantics import condition_mask

        mask = condition_mask(condition, relation)
        mask.setflags(write=False)
        bucket[condition] = mask
    elif obs.enabled():
        obs.count("dsl.mask_cache.hit")
    return mask


def prime_condition_mask(
    condition: Condition, relation: Relation, mask: np.ndarray
) -> None:
    """Pre-populate the mask cache with a mask computed elsewhere.

    Algorithm 1 (:mod:`repro.sketch.fill`) already knows each kept
    branch's matching rows from its group indices; priming here means
    the coverage/loss passes that follow are pure cache hits.
    """
    bucket = _mask_bucket(relation)
    if condition not in bucket:
        mask = np.asarray(mask, dtype=bool)
        mask.setflags(write=False)
        bucket[condition] = mask


def branch_stats(branch: Branch, relation: Relation) -> tuple[int, int]:
    """``(support, loss)`` of a branch over a relation, memoized.

    ``support`` is ``|D^b|`` (rows matching the condition); ``loss`` is
    Eqn. 2's 0/1 loss (matching rows whose dependent differs from the
    branch literal).  Branch-local by definition — deliberately *not*
    state-threaded, because ε-validity judges a branch against the data
    as observed.
    """
    bucket = _STATS_CACHE.get(relation)
    if bucket is None:
        bucket = {}
        _STATS_CACHE[relation] = bucket
    stats = bucket.get(branch)
    if stats is None:
        from .semantics import _literal_code

        applicable = cached_condition_mask(branch.condition, relation)
        expected = _literal_code(relation, branch.dependent, branch.literal)
        violating = applicable & (relation.codes(branch.dependent) != expected)
        stats = (
            int(np.count_nonzero(applicable)),
            int(np.count_nonzero(violating)),
        )
        bucket[branch] = stats
    return stats


def coverage_mask(statement, relation: Relation) -> np.ndarray:
    """Rows covered by any branch of a statement (``D^s``), cache-backed.

    Semantically identical to
    :func:`repro.dsl.semantics.statement_coverage_mask`; each branch's
    condition mask comes from the shared cache.  Returns a fresh,
    writable array.
    """
    out = np.zeros(relation.n_rows, dtype=bool)
    for branch in statement.branches:
        out |= cached_condition_mask(branch.condition, relation)
    return out


def clear_dsl_caches() -> None:
    """Drop every compiled program, condition mask, and branch stat.

    Benchmarks and tests use this to time the cold path; production
    code never needs it (mask/stat entries are weakly keyed and die
    with their relations, and the compile cache is bounded).
    """
    _MASK_CACHE.clear()
    _STATS_CACHE.clear()
    _DETECT_CACHE.clear()
    _COMPILE_CACHE.clear()


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


_LUT_MAX_ENTRIES = 1 << 22
"""Largest mixed-radix key space the compiler will tabulate; beyond it
the kernel falls back to stacked-mask ``argmax`` resolution."""


@dataclass(frozen=True)
class CompiledStatement:
    """One statement lowered to integer-coded branch tables."""

    index: int
    determinants: tuple[str, ...]
    dependent: str
    branches: tuple[Branch, ...]
    condition_codes: np.ndarray
    """``(n_branches, n_determinants)`` literal codes, program order."""
    expected_codes: np.ndarray
    """``(n_branches,)`` dependent-literal codes, program order."""
    lut: np.ndarray | None
    """Mixed-radix first-match table (key → branch index, ``-1`` = no
    branch), or None when the key space exceeds the tabulation cap."""
    dims: tuple[int, ...]
    """Radix sizes per determinant: extended cardinality + 2, so codes
    down to :data:`UNSEEN` (-2) index without branching."""


@dataclass
class KernelResult:
    """Outcome of one kernel evaluation over a batch of rows.

    ``row_mask`` is the canonical Eqn. 1 verdict: True where the final
    threaded state differs from the input row.  ``writes`` records the
    state-changing branch applications (one entry per statement that
    wrote), and ``final_codes`` holds the threaded code arrays of every
    written attribute — ``[[p]]_t`` in coded form.
    """

    row_mask: np.ndarray
    writes: list[tuple[CompiledStatement, np.ndarray, np.ndarray]]
    final_codes: dict[str, np.ndarray]
    _violation_pairs: "list[tuple[int, Branch]] | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_flagged(self) -> int:
        """Number of rows the program flags as erroneous."""
        return int(np.count_nonzero(self.row_mask))

    def iter_violations(self) -> Iterator[tuple[int, Branch]]:
        """Yield ``(row, branch)`` for each first-match violation.

        Only rows whose *final* state differs from the input are
        reported, so the (pathological) case of a later statement
        writing a value back never yields phantom violations.  The pair
        list is materialized lazily, once per result.
        """
        if self._violation_pairs is None:
            pairs: list[tuple[int, Branch]] = []
            for compiled, rows, branch_indices in self.writes:
                branches = compiled.branches
                keep = self.row_mask[rows]
                pairs.extend(
                    (row, branches[branch_index])
                    for row, branch_index in zip(
                        rows[keep].tolist(),
                        branch_indices[keep].tolist(),
                    )
                )
            self._violation_pairs = pairs
        return iter(self._violation_pairs)


class CompiledProgram:
    """A program lowered to numpy kernels over integer codes.

    Compilation extends the supplied codecs with every literal the
    program mentions, so each literal gets a real, distinct code even
    when the training data never exhibited it — the extension preserves
    existing codes, so relation arrays stay valid, and two distinct
    unseen literals can never be confused (the flaw a bare ``-2``
    sentinel would reintroduce under state threading).
    """

    def __init__(
        self, program: Program, codecs: Mapping[str, Codec] | None = None
    ):
        codecs = dict(codecs or {})
        # Dict-as-ordered-set: Codec.extend rejects duplicates within
        # the new values, so collect each literal once, in first-seen
        # order (stable codes for a given program).
        literals: dict[str, dict[Hashable, None]] = {}
        for statement in program:
            for branch in statement.branches:
                literals.setdefault(branch.dependent, {})[
                    branch.literal
                ] = None
                for name, value in branch.condition.atoms:
                    literals.setdefault(name, {})[value] = None
        self.program = program
        self.codecs: dict[str, Codec] = {
            attr: (codecs.get(attr) or Codec(())).extend(values)
            for attr, values in literals.items()
        }
        self.statements: list[CompiledStatement] = []
        for index, statement in enumerate(program):
            determinants = statement.determinants
            n_branches = len(statement.branches)
            condition_codes = np.array(
                [
                    [
                        self._code(name, branch.condition.value_of(name))
                        for name in determinants
                    ]
                    for branch in statement.branches
                ],
                dtype=np.int32,
            ).reshape(n_branches, len(determinants))
            expected_codes = np.array(
                [
                    self._code(statement.dependent, branch.literal)
                    for branch in statement.branches
                ],
                dtype=np.int32,
            )
            dims = tuple(
                len(self.codecs[name]) + 2 for name in determinants
            )
            self.statements.append(
                CompiledStatement(
                    index=index,
                    determinants=determinants,
                    dependent=statement.dependent,
                    branches=statement.branches,
                    condition_codes=condition_codes,
                    expected_codes=expected_codes,
                    lut=self._build_lut(condition_codes, dims),
                    dims=dims,
                )
            )

    @staticmethod
    def _build_lut(
        condition_codes: np.ndarray, dims: tuple[int, ...]
    ) -> np.ndarray | None:
        total = 1
        for size in dims:
            total *= size
            if total > _LUT_MAX_ENTRIES:
                return None
        lut = np.full(total, -1, dtype=np.int32)
        keys = np.zeros(len(condition_codes), dtype=np.int64)
        for j, size in enumerate(dims):
            keys = keys * size + (condition_codes[:, j].astype(np.int64) + 2)
        # Reverse order so the earliest branch wins key collisions —
        # the same first-match rule the argmax fallback implements.
        for branch_index in range(len(condition_codes) - 1, -1, -1):
            lut[keys[branch_index]] = branch_index
        return lut

    def _code(self, attribute: str, value: Hashable) -> int:
        if value is None:
            return MISSING
        return self.codecs[attribute].encode_one(value)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Every attribute the program reads or writes, sorted."""
        return tuple(sorted(self.codecs))

    def codec(self, attribute: str) -> Codec:
        """The extended codec of one program attribute."""
        return self.codecs[attribute]

    def encode_value(self, attribute: str, value: Hashable) -> int:
        """Encode one raw cell value for the kernel.

        ``None`` maps to :data:`~repro.relation.MISSING`; values outside
        the extended codec map to :data:`UNSEEN`, which matches no
        literal and no missing cell — exactly the row-semantics outcome
        for a value the program never mentions.
        """
        if value is None:
            return MISSING
        codec = self.codecs.get(attribute)
        if codec is not None and value in codec:
            return codec.encode_one(value)
        return UNSEEN

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def detect(self, relation: Relation) -> KernelResult:
        """Run the kernel over a relation, memoized per relation.

        Relations are immutable by convention, so the result of a
        (program, relation) pair is cached weakly on the relation — the
        repeated detections of coverage selection, metrics, and the SQL
        guard stage cost a dict probe.  The cached ``row_mask`` is
        read-only; copy it before mutating.
        """
        bucket = _DETECT_CACHE.get(relation)
        if bucket is None:
            bucket = {}
            _DETECT_CACHE[relation] = bucket
        result = bucket.get(self)
        if result is None:
            result = self._execute(relation.codes, relation.n_rows, relation)
            result.row_mask.setflags(write=False)
            bucket[self] = result
        elif obs.enabled():
            obs.count("dsl.detect_cache.hit")
        return result

    def detect_sharded(self, relation: Relation, pool) -> KernelResult:
        """Partition-parallel :meth:`detect` over contiguous row shards.

        The kernel is per-row independent (state threading never crosses
        rows), so running it per shard and concatenating in shard order
        reconstructs the serial :class:`KernelResult` **bit-for-bit**:
        the same ``row_mask``, the same writes (rows offset back to
        global indices, ascending within each statement), and the same
        threaded ``final_codes``.  Shards are zero-copy views
        (:meth:`~repro.relation.Relation.slice_rows`), inherited by the
        forked workers copy-on-write.

        Falls back to plain :meth:`detect` when the pool's shard policy
        yields a single shard (small input, ``workers=1``, no fork).
        The merged result lands in the same per-relation detect cache.
        """
        bucket = _DETECT_CACHE.get(relation)
        if bucket is None:
            bucket = {}
            _DETECT_CACHE[relation] = bucket
        result = bucket.get(self)
        if result is not None:
            if obs.enabled():
                obs.count("dsl.detect_cache.hit")
            return result
        bounds = pool.shards_for(relation.n_rows)
        if len(bounds) <= 1:
            return self.detect(relation)
        with obs.span(
            "dsl.detect_sharded",
            n_rows=relation.n_rows,
            n_shards=len(bounds),
        ):
            shards = [
                relation.slice_rows(start, stop) for start, stop in bounds
            ]
            parts = pool.map(
                _detect_shard_job,
                range(len(shards)),
                shared=(self, shards),
            )
            result = self._merge_shard_results(relation, bounds, parts)
        result.row_mask.setflags(write=False)
        bucket[self] = result
        return result

    def _merge_shard_results(
        self,
        relation: Relation,
        bounds: list[tuple[int, int]],
        parts: list[tuple],
    ) -> KernelResult:
        """Shard-order reduction of per-shard kernel outputs."""
        row_mask = np.concatenate([mask for mask, _, _ in parts])
        by_statement: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        for (start, _), (_, shard_writes, _) in zip(bounds, parts):
            for statement_index, rows, branch_indices in shard_writes:
                by_statement.setdefault(statement_index, []).append(
                    (rows + start, branch_indices)
                )
        writes: list[tuple[CompiledStatement, np.ndarray, np.ndarray]] = []
        for statement_index in sorted(by_statement):
            pieces = by_statement[statement_index]
            writes.append(
                (
                    self.statements[statement_index],
                    np.concatenate([rows for rows, _ in pieces]),
                    np.concatenate([idx for _, idx in pieces]),
                )
            )
        written = {
            attribute
            for _, _, state in parts
            for attribute in state
        }
        final_codes: dict[str, np.ndarray] = {}
        for attribute in written:
            segments = []
            for (start, stop), (_, _, state) in zip(bounds, parts):
                segment = state.get(attribute)
                if segment is None:
                    # This shard never wrote the attribute; its final
                    # state is the input column.
                    segment = relation.codes(attribute)[start:stop]
                segments.append(segment)
            final_codes[attribute] = np.concatenate(segments)
        return KernelResult(
            row_mask=row_mask, writes=writes, final_codes=final_codes
        )

    def run_codes(
        self, codes: Mapping[str, np.ndarray], n_rows: int | None = None
    ) -> KernelResult:
        """Run the kernel over raw code arrays (no relation required).

        This is the entry point :class:`repro.errors.stream.BatchGuard`
        uses: encode a micro-batch of rows with :meth:`encode_value`
        and evaluate them without building a :class:`Relation`.
        """
        if n_rows is None:
            n_rows = len(next(iter(codes.values()))) if codes else 0

        def column_of(name: str) -> np.ndarray:
            try:
                return codes[name]
            except KeyError:
                raise KeyError(
                    f"compiled program needs column {name!r}"
                ) from None

        return self._execute(column_of, n_rows, None)

    def _execute(self, column_of, n_rows: int, relation) -> KernelResult:
        traced = obs.enabled()
        start = time.perf_counter() if traced else 0.0
        state: dict[str, np.ndarray] = {}
        originals: dict[str, np.ndarray] = {}
        writes: list[tuple[CompiledStatement, np.ndarray, np.ndarray]] = []
        for compiled in self.statements:
            if not compiled.branches:
                continue
            if compiled.lut is not None:
                keys = np.zeros(n_rows, dtype=np.int64)
                for name, size in zip(compiled.determinants, compiled.dims):
                    column = state.get(name)
                    if column is None:
                        column = column_of(name)
                    keys = keys * size + (column.astype(np.int64) + 2)
                first = compiled.lut[keys]
                hit = first >= 0
            else:
                matches = self._matches(
                    compiled, state, column_of, n_rows, relation
                )
                hit = matches.any(axis=0)
                first = matches.argmax(axis=0)
            if not hit.any():
                continue
            # Where no branch matched, `first` may be -1 (LUT path) and
            # wrap to the last branch — harmless, `write` is masked by
            # `hit` below.
            expected = compiled.expected_codes[first]
            dependent = compiled.dependent
            current = state.get(dependent)
            if current is None:
                current = column_of(dependent)
            write = hit & (current != expected)
            if not write.any():
                continue
            if dependent not in originals:
                # Not yet written, so `current` is still the input column.
                originals[dependent] = current
            updated = current.copy()
            updated[write] = expected[write]
            state[dependent] = updated
            writes.append(
                (compiled, np.nonzero(write)[0], first[write])
            )
        row_mask = np.zeros(n_rows, dtype=bool)
        for attribute, original in originals.items():
            row_mask |= state[attribute] != original
        if traced:
            obs.count("dsl.kernel.eval")
            obs.observe(
                "dsl.kernel.seconds", time.perf_counter() - start
            )
        return KernelResult(
            row_mask=row_mask, writes=writes, final_codes=state
        )

    def _matches(
        self, compiled: CompiledStatement, state, column_of, n_rows, relation
    ) -> np.ndarray:
        dirty = any(name in state for name in compiled.determinants)
        if relation is not None and not dirty:
            return self._matches_cached(compiled, relation)
        matrix = np.ones((len(compiled.branches), n_rows), dtype=bool)
        for j, name in enumerate(compiled.determinants):
            column = state.get(name)
            if column is None:
                column = column_of(name)
            matrix &= (
                column[None, :] == compiled.condition_codes[:, j][:, None]
            )
        return matrix

    def _matches_cached(
        self, compiled: CompiledStatement, relation: Relation
    ) -> np.ndarray:
        bucket = _mask_bucket(relation)
        cached = [
            bucket.get(branch.condition) for branch in compiled.branches
        ]
        if all(mask is not None for mask in cached):
            if obs.enabled():
                obs.count("dsl.mask_cache.hit", len(cached))
            return np.vstack(cached)
        if obs.enabled():
            obs.count(
                "dsl.mask_cache.miss",
                sum(1 for mask in cached if mask is None),
            )
        matrix = np.ones(
            (len(compiled.branches), relation.n_rows), dtype=bool
        )
        for j, name in enumerate(compiled.determinants):
            column = relation.codes(name)
            matrix &= (
                column[None, :] == compiled.condition_codes[:, j][:, None]
            )
        matrix.setflags(write=False)
        for branch, row in zip(compiled.branches, matrix):
            if branch.condition not in bucket:
                bucket[branch.condition] = row
        return matrix

    def __len__(self) -> int:
        return len(self.statements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledProgram({len(self.statements)} statements, "
            f"{sum(len(s.branches) for s in self.statements)} branches)"
        )


def _detect_shard_job(index: int) -> tuple:
    """Worker task: run the inherited compiled kernel over one shard.

    Returns a compact ``(row_mask, writes, final_codes)`` triple with
    statements referenced by index (the parent rebuilds full
    :class:`KernelResult` entries), keeping the pickled result small.
    """
    from ..parallel import get_shared

    compiled, shards = get_shared()
    result = compiled.detect(shards[index])
    return (
        result.row_mask,
        [
            (statement.index, rows, branch_indices)
            for statement, rows, branch_indices in result.writes
        ],
        result.final_codes,
    )


# ---------------------------------------------------------------------------
# The compile cache
# ---------------------------------------------------------------------------


def _compile_key(program: Program, codecs: Mapping[str, Codec]) -> tuple:
    attributes = sorted(program.attributes())
    return (program, tuple((a, codecs.get(a)) for a in attributes))


def compile_program(
    program: Program, codecs: Mapping[str, Codec] | None = None
) -> CompiledProgram:
    """Lower a program against a codec set, memoized.

    The cache key is the program plus the codec of every attribute it
    mentions, so the same program compiled against the same encoding is
    lowered exactly once (LRU-bounded at 128 entries).
    """
    codecs = codecs or {}
    key = _compile_key(program, codecs)
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        _COMPILE_CACHE.move_to_end(key)
        if obs.enabled():
            obs.count("dsl.compile.cache_hit")
        return cached
    if obs.enabled():
        obs.count("dsl.compile")
    compiled = CompiledProgram(program, codecs)
    _COMPILE_CACHE[key] = compiled
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_SIZE:
        _COMPILE_CACHE.popitem(last=False)
    return compiled


def compiled_for(program: Program, relation: Relation) -> CompiledProgram:
    """The compiled form of ``program`` under a relation's codecs."""
    return compile_program(program, relation.codecs())
