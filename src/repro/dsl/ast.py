"""Abstract syntax of the GUARDRAIL DSL (paper §2.2, Fig. 2).

The DSL models a discrete data-generating process::

    p ∈ Prog      := s*
    s ∈ Stmt      := GIVEN a+ ON a HAVING b+
    b ∈ Branch    := IF c THEN a <- l
    c ∈ Condition := a = l | c AND c
    l ∈ Literal   := String | Number | Boolean

All nodes are immutable and hashable so programs can be cached, compared,
and used as dict keys by the synthesis cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

Literal = Hashable
"""A constant attribute value (string, number, or boolean)."""


class DslError(ValueError):
    """Raised for structurally invalid DSL constructs."""


@dataclass(frozen=True)
class Condition:
    """A conjunction of equality atoms ``a = l AND a' = l' AND ...``.

    Atoms are stored sorted by attribute name so that two conditions with
    the same atoms in different order compare equal.
    """

    atoms: tuple[tuple[str, Literal], ...]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise DslError("a condition needs at least one atom")
        names = [name for name, _ in self.atoms]
        if len(set(names)) != len(names):
            raise DslError(f"condition repeats an attribute: {names}")
        object.__setattr__(self, "atoms", tuple(sorted(self.atoms)))

    @classmethod
    def of(cls, **atoms: Literal) -> "Condition":
        """Convenience constructor: ``Condition.of(city="Berkeley")``."""
        return cls(tuple(atoms.items()))

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attributes the condition constrains."""
        return tuple(name for name, _ in self.atoms)

    def value_of(self, attribute: str) -> Literal:
        """The literal this condition requires ``attribute`` to equal."""
        for name, literal in self.atoms:
            if name == attribute:
                return literal
        raise DslError(f"condition has no atom on {attribute!r}")

    def conjoin(self, other: "Condition") -> "Condition":
        """Conjunction ``c AND c`` of two conditions (disjoint attributes)."""
        return Condition(self.atoms + other.atoms)

    def __str__(self) -> str:
        return " AND ".join(f"{a} = {l!r}" for a, l in self.atoms)


@dataclass(frozen=True)
class Branch:
    """``IF condition THEN dependent <- literal``."""

    condition: Condition
    dependent: str
    literal: Literal

    def __post_init__(self) -> None:
        if self.dependent in self.condition.attributes:
            raise DslError(
                f"dependent {self.dependent!r} also appears in the condition"
            )

    def __str__(self) -> str:
        return f"IF {self.condition} THEN {self.dependent} <- {self.literal!r}"


@dataclass(frozen=True)
class Statement:
    """``GIVEN determinants ON dependent HAVING branches``.

    Every branch must assign the statement's dependent attribute and
    condition exactly on the statement's determinant set.
    """

    determinants: tuple[str, ...]
    dependent: str
    branches: tuple[Branch, ...]

    def __post_init__(self) -> None:
        if not self.determinants:
            raise DslError("a statement needs at least one determinant")
        if len(set(self.determinants)) != len(self.determinants):
            raise DslError("duplicate determinant attributes")
        if self.dependent in self.determinants:
            raise DslError("dependent attribute cannot be a determinant")
        object.__setattr__(self, "determinants", tuple(sorted(self.determinants)))
        det = set(self.determinants)
        seen_conditions: set[Condition] = set()
        for branch in self.branches:
            if branch.dependent != self.dependent:
                raise DslError(
                    f"branch assigns {branch.dependent!r}, statement is on "
                    f"{self.dependent!r}"
                )
            if set(branch.condition.attributes) != det:
                raise DslError(
                    "branch condition attributes "
                    f"{branch.condition.attributes} != determinants "
                    f"{self.determinants}"
                )
            if branch.condition in seen_conditions:
                raise DslError(f"duplicate branch condition: {branch.condition}")
            seen_conditions.add(branch.condition)

    def __iter__(self) -> Iterator[Branch]:
        return iter(self.branches)

    def __len__(self) -> int:
        return len(self.branches)

    def __str__(self) -> str:
        head = f"GIVEN {', '.join(self.determinants)} ON {self.dependent} HAVING"
        body = ";\n  ".join(str(b) for b in self.branches)
        return f"{head}\n  {body}"


@dataclass(frozen=True)
class Program:
    """A whole DGP program: a sequence of statements.

    Statement order is preserved (it is the rectification order) but does
    not affect detection semantics.
    """

    statements: tuple[Statement, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, statements: Iterable[Statement]) -> "Program":
        """Build a program from an iterable of statements."""
        return cls(tuple(statements))

    @classmethod
    def empty(cls) -> "Program":
        """The program with no statements."""
        return cls(())

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __bool__(self) -> bool:
        return bool(self.statements)

    @property
    def branches(self) -> tuple[Branch, ...]:
        """All branches across all statements (paper's ``b ∈ p``)."""
        return tuple(b for s in self.statements for b in s.branches)

    @property
    def dependents(self) -> tuple[str, ...]:
        """Dependent attribute of each statement, in order."""
        return tuple(s.dependent for s in self.statements)

    def statement_for(self, dependent: str) -> Statement | None:
        """The first statement whose dependent is ``dependent``, if any."""
        for statement in self.statements:
            if statement.dependent == dependent:
                return statement
        return None

    def attributes(self) -> set[str]:
        """All attributes mentioned anywhere in the program."""
        out: set[str] = set()
        for statement in self.statements:
            out.update(statement.determinants)
            out.add(statement.dependent)
        return out

    def __str__(self) -> str:
        if not self.statements:
            return "<empty program>"
        return "\n".join(str(s) for s in self.statements)
