"""Loss, ε-validity, and coverage of DSL constructs (paper §2.2).

* **Branch loss** (Eqn. 2): the number of rows satisfying the branch
  condition whose dependent value differs from the branch literal.
* **ε-validity** (Eqns. 3–4): every branch's loss stays within an
  ``ε`` fraction of its applicable rows.
* **Coverage** (Eqns. 5–6): the fraction of rows a branch/statement
  touches; program coverage averages statement coverages.

All measures go through the compiled layer's per-relation caches
(:func:`repro.dsl.compiled.branch_stats`), so re-scoring the same
branches across Algorithm 2's many candidate programs costs one mask
computation total, not one per candidate.
"""

from __future__ import annotations

import numpy as np

from ..relation import Relation
from .ast import Branch, Program, Statement
from .compiled import branch_stats, coverage_mask


def branch_loss(branch: Branch, relation: Relation) -> int:
    """``L(b, D)``: count of applicable rows violating the branch."""
    return branch_stats(branch, relation)[1]


def branch_support(branch: Branch, relation: Relation) -> int:
    """``|D^b|``: count of rows satisfying the branch condition."""
    return branch_stats(branch, relation)[0]


def branch_is_valid(branch: Branch, relation: Relation, epsilon: float) -> bool:
    """Branch-level ε-validity: ``L(b, D) <= |D^b| * ε``."""
    support, loss = branch_stats(branch, relation)
    return loss <= support * epsilon


def statement_loss(statement: Statement, relation: Relation) -> int:
    """Total loss across all branches of a statement."""
    return sum(branch_loss(b, relation) for b in statement.branches)


def statement_is_valid(
    statement: Statement, relation: Relation, epsilon: float
) -> bool:
    """Statement-level ε-validity (Eqn. 4): all branches are ε-valid."""
    return all(branch_is_valid(b, relation, epsilon) for b in statement.branches)


def program_loss(program: Program, relation: Relation) -> int:
    """Total loss across all branches of a program."""
    return sum(statement_loss(s, relation) for s in program.statements)


def program_is_valid(
    program: Program, relation: Relation, epsilon: float
) -> bool:
    """Program-level ε-validity (Eqn. 3): all branches are ε-valid."""
    return all(
        statement_is_valid(s, relation, epsilon) for s in program.statements
    )


def branch_coverage(branch: Branch, relation: Relation) -> float:
    """``cov(b, D) = |D^b| / |D|`` (Eqn. 5)."""
    if relation.n_rows == 0:
        return 0.0
    return branch_support(branch, relation) / relation.n_rows


def statement_coverage(statement: Statement, relation: Relation) -> float:
    """``cov(s, D) = |D^s| / |D|`` (Eqn. 6).

    Branch conditions within a statement are mutually exclusive (distinct
    determinant value combinations), so the union equals the sum of the
    branch coverages, as the paper notes.
    """
    if relation.n_rows == 0:
        return 0.0
    mask = coverage_mask(statement, relation)
    return int(np.count_nonzero(mask)) / relation.n_rows


def program_coverage(program: Program, relation: Relation) -> float:
    """Program coverage: the average coverage of its statements.

    An empty program has zero coverage — this is what makes the trivial
    program ``p = ∅`` lose to any informative program in Algorithm 2.
    """
    if not program.statements:
        return 0.0
    total = sum(statement_coverage(s, relation) for s in program.statements)
    return total / len(program.statements)
