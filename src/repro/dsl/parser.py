"""Text syntax for the DSL: parser and pretty-printer.

The concrete syntax follows Fig. 2 of the paper::

    GIVEN rel ON marital-status HAVING
      IF rel = 'Husband' THEN marital-status <- 'Married-civ-spouse';
      IF rel = 'Wife' THEN marital-status <- 'Married-civ-spouse'

``format_program`` and ``parse_program`` round-trip: for every program
``p``, ``parse_program(format_program(p)) == p``.
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from .ast import Branch, Condition, DslError, Literal, Program, Statement


class DslSyntaxError(DslError):
    """Raised on malformed DSL text."""


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<STRING>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<NUMBER>-?\d+\.\d+|-?\d+)
  | (?P<ARROW><-)
  | (?P<EQUALS>=)
  | (?P<COMMA>,)
  | (?P<SEMI>;)
  | (?P<WORD>[A-Za-z_][A-Za-z0-9_.\-]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"GIVEN", "ON", "HAVING", "IF", "THEN", "AND"}
_CONSTANTS: dict[str, Literal] = {"TRUE": True, "FALSE": False, "NONE": None}


def _tokenize(text: str) -> Iterator[_Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise DslSyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        kind = match.lastgroup or ""
        if kind != "WS":
            word = match.group()
            if kind == "WORD" and word.upper() in _KEYWORDS:
                kind = word.upper()
            yield _Token(kind, word, position)
        position = match.end()
    yield _Token("EOF", "", position)


class _Parser:
    def __init__(self, text: str):
        self._tokens = list(_tokenize(text))
        self._cursor = 0

    def _peek(self) -> _Token:
        return self._tokens[self._cursor]

    def _advance(self) -> _Token:
        token = self._tokens[self._cursor]
        self._cursor += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise DslSyntaxError(
                f"expected {kind} at offset {token.position}, "
                f"found {token.kind} ({token.text!r})"
            )
        return self._advance()

    def _accept(self, kind: str) -> bool:
        if self._peek().kind == kind:
            self._advance()
            return True
        return False

    # Grammar ----------------------------------------------------------

    def program(self) -> Program:
        statements = []
        while self._peek().kind != "EOF":
            statements.append(self.statement())
            self._accept("SEMI")
        return Program(tuple(statements))

    def statement(self) -> Statement:
        self._expect("GIVEN")
        determinants = [self._attribute()]
        while self._accept("COMMA"):
            determinants.append(self._attribute())
        self._expect("ON")
        dependent = self._attribute()
        self._expect("HAVING")
        branches = [self.branch(dependent)]
        while self._peek().kind == "SEMI" and self._lookahead_is_branch():
            self._advance()  # consume ';'
            branches.append(self.branch(dependent))
        return Statement(tuple(determinants), dependent, tuple(branches))

    def _lookahead_is_branch(self) -> bool:
        return self._tokens[self._cursor + 1].kind == "IF"

    def branch(self, dependent: str) -> Branch:
        self._expect("IF")
        condition = self.condition()
        self._expect("THEN")
        target = self._attribute()
        if target != dependent:
            raise DslSyntaxError(
                f"branch assigns {target!r} but statement is ON {dependent!r}"
            )
        self._expect("ARROW")
        literal = self._literal()
        return Branch(condition, target, literal)

    def condition(self) -> Condition:
        atoms = [self._atom()]
        while self._accept("AND"):
            atoms.append(self._atom())
        return Condition(tuple(atoms))

    def _atom(self) -> tuple[str, Literal]:
        attribute = self._attribute()
        self._expect("EQUALS")
        return attribute, self._literal()

    def _attribute(self) -> str:
        token = self._expect("WORD")
        return token.text

    def _literal(self) -> Literal:
        token = self._peek()
        if token.kind == "STRING":
            self._advance()
            body = token.text[1:-1]
            return re.sub(r"\\(.)", r"\1", body)
        if token.kind == "NUMBER":
            self._advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "WORD" and token.text.upper() in _CONSTANTS:
            self._advance()
            return _CONSTANTS[token.text.upper()]
        if token.kind == "WORD":
            # Bare words are accepted as string literals for convenience.
            self._advance()
            return token.text
        raise DslSyntaxError(
            f"expected a literal at offset {token.position}, found {token.text!r}"
        )


def parse_program(text: str) -> Program:
    """Parse DSL text into a :class:`Program`."""
    return _Parser(text).program()


def parse_statement(text: str) -> Statement:
    """Parse a single statement; rejects trailing content."""
    parser = _Parser(text)
    statement = parser.statement()
    parser._accept("SEMI")
    if parser._peek().kind != "EOF":
        raise DslSyntaxError("trailing content after statement")
    return statement


# ---------------------------------------------------------------------------
# Pretty printing
# ---------------------------------------------------------------------------


def format_literal(literal: Literal) -> str:
    """Render a literal as DSL source text."""
    if isinstance(literal, bool):
        return "TRUE" if literal else "FALSE"
    if literal is None:
        return "NONE"
    if isinstance(literal, str):
        escaped = literal.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(literal, float) and literal == int(literal):
        return f"{literal:.1f}"
    return str(literal)


def format_condition(condition: Condition) -> str:
    """Render a condition as DSL source text."""
    return " AND ".join(
        f"{name} = {format_literal(value)}" for name, value in condition.atoms
    )


def format_branch(branch: Branch) -> str:
    """Render one IF/THEN branch as DSL source text."""
    return (
        f"IF {format_condition(branch.condition)} "
        f"THEN {branch.dependent} <- {format_literal(branch.literal)}"
    )


def format_statement(statement: Statement) -> str:
    """Render one GIVEN/ON/HAVING statement as DSL source text."""
    head = (
        f"GIVEN {', '.join(statement.determinants)} "
        f"ON {statement.dependent} HAVING"
    )
    body = ";\n  ".join(format_branch(b) for b in statement.branches)
    return f"{head}\n  {body}"


def format_program(program: Program) -> str:
    """Render a whole program as round-trippable DSL source text."""
    return ";\n".join(format_statement(s) for s in program.statements)
