"""GUARDRAIL: automated integrity constraint synthesis from noisy data.

Reproduction of the SIGMOD 2025 paper.  The most common entry points
are re-exported here; see the subpackages for the full API:

>>> from repro import Guardrail, GuardrailConfig, read_csv
>>> guard = Guardrail(GuardrailConfig(epsilon=0.02)).fit(read_csv("train.csv"))
>>> repaired = guard.rectify(read_csv("serving.csv"))
"""

from . import obs
from .dsl import Program, format_program, parse_program
from .errors import Strategy, detect_errors, inject_errors
from .relation import Relation, read_csv, write_csv
from .resilience import Budget, GuardPolicy
from .synth import Guardrail, GuardrailConfig, SynthesisResult, synthesize

__version__ = "1.0.0"

__all__ = [
    "obs",
    "Guardrail",
    "GuardrailConfig",
    "SynthesisResult",
    "synthesize",
    "Program",
    "parse_program",
    "format_program",
    "Relation",
    "read_csv",
    "write_csv",
    "Strategy",
    "detect_errors",
    "inject_errors",
    "Budget",
    "GuardPolicy",
    "__version__",
]
