"""Binary classification metrics used by the evaluation (§8.1).

F1 and MCC score error detectors against injected ground truth.  Both
follow the paper's conventions: undefined values (zero denominators)
are reported as NaN, which is how Table 3 renders degenerate baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def total(self) -> int:
        """Total number of scored items."""
        return self.tp + self.fp + self.fn + self.tn


def confusion(predicted: np.ndarray, actual: np.ndarray) -> ConfusionCounts:
    """Counts from boolean prediction/ground-truth masks."""
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError("prediction and ground truth shapes differ")
    tp = int(np.count_nonzero(predicted & actual))
    fp = int(np.count_nonzero(predicted & ~actual))
    fn = int(np.count_nonzero(~predicted & actual))
    tn = int(np.count_nonzero(~predicted & ~actual))
    return ConfusionCounts(tp, fp, fn, tn)


def precision(counts: ConfusionCounts) -> float:
    """TP / (TP + FP); 0 when undefined."""
    denominator = counts.tp + counts.fp
    return counts.tp / denominator if denominator else float("nan")


def recall(counts: ConfusionCounts) -> float:
    """TP / (TP + FN); 0 when undefined."""
    denominator = counts.tp + counts.fn
    return counts.tp / denominator if denominator else float("nan")


def f1_score(counts: ConfusionCounts) -> float:
    """Harmonic mean of precision and recall; NaN when undefined."""
    denominator = 2 * counts.tp + counts.fp + counts.fn
    if denominator == 0:
        return float("nan")
    return 2 * counts.tp / denominator


def mcc_score(counts: ConfusionCounts) -> float:
    """Matthews correlation coefficient; NaN when any margin is empty."""
    tp, fp, fn, tn = counts.tp, counts.fp, counts.fn, counts.tn
    denominator = math.sqrt(
        float(tp + fp) * (tp + fn) * (tn + fp) * (tn + fn)
    )
    if denominator == 0.0:
        return float("nan")
    return (tp * tn - fp * fn) / denominator


def f1_from_masks(predicted: np.ndarray, actual: np.ndarray) -> float:
    """F1 of a predicted boolean mask against ground truth."""
    return f1_score(confusion(predicted, actual))


def mcc_from_masks(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Matthews correlation of a predicted mask vs ground truth."""
    return mcc_score(confusion(predicted, actual))
