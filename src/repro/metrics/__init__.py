"""Evaluation metrics: classification scores and correlations."""

from .classification import (
    ConfusionCounts,
    confusion,
    f1_from_masks,
    f1_score,
    mcc_from_masks,
    mcc_score,
    precision,
    recall,
)
from .correlation import (
    SpearmanResult,
    min_max_normalize,
    relative_error,
    spearman,
)

__all__ = [
    "ConfusionCounts",
    "confusion",
    "precision",
    "recall",
    "f1_score",
    "mcc_score",
    "f1_from_masks",
    "mcc_from_masks",
    "SpearmanResult",
    "spearman",
    "relative_error",
    "min_max_normalize",
]
