"""Rank correlation and error-normalization helpers (§5, §8.2).

* Spearman's rank correlation (own implementation; scipy is used only
  for the t-distribution of the significance test) — Table 1's claim
  that injected-error counts track mis-prediction counts.
* Relative error and min–max normalization — Figure 6 compares queries
  with different value scales by normalizing the L1 error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class SpearmanResult:
    """Spearman rank-correlation coefficient with its p-value."""
    coefficient: float
    p_value: float


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks with tie handling."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1)
    # Average ranks over ties.
    unique, inverse, counts = np.unique(
        values, return_inverse=True, return_counts=True
    )
    sums = np.zeros(len(unique))
    np.add.at(sums, inverse, ranks)
    return sums[inverse] / counts[inverse]


def spearman(
    x: Sequence[float], y: Sequence[float]
) -> SpearmanResult:
    """Spearman's rho with a t-test p-value."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.shape != y_arr.shape:
        raise ValueError("inputs must have equal length")
    n = len(x_arr)
    if n < 3:
        raise ValueError("need at least 3 observations")
    rx, ry = _ranks(x_arr), _ranks(y_arr)
    rx -= rx.mean()
    ry -= ry.mean()
    denominator = np.sqrt((rx**2).sum() * (ry**2).sum())
    if denominator == 0:
        return SpearmanResult(float("nan"), float("nan"))
    rho = float((rx * ry).sum() / denominator)
    if abs(rho) >= 1.0:
        return SpearmanResult(rho, 0.0)
    t = rho * np.sqrt((n - 2) / (1 - rho**2))
    p = float(2 * stats.t.sf(abs(t), df=n - 2))
    return SpearmanResult(rho, p)


def relative_error(
    observed: Sequence[float], truth: Sequence[float]
) -> float:
    """L1 distance normalized by the L1 norm of the ground truth.

    A zero-norm ground truth yields 0.0 when the observation matches and
    infinity otherwise.
    """
    observed_arr = np.asarray(observed, dtype=np.float64)
    truth_arr = np.asarray(truth, dtype=np.float64)
    if observed_arr.shape != truth_arr.shape:
        raise ValueError("shapes differ")
    absolute = float(np.abs(observed_arr - truth_arr).sum())
    norm = float(np.abs(truth_arr).sum())
    if norm == 0.0:
        return 0.0 if absolute == 0.0 else float("inf")
    return absolute / norm


def min_max_normalize(values: Sequence[float]) -> list[float]:
    """Scale values to [0, 1]; a constant vector maps to all zeros."""
    arr = np.asarray(values, dtype=np.float64)
    low, high = float(arr.min()), float(arr.max())
    if high == low:
        return [0.0] * len(arr)
    return [float((v - low) / (high - low)) for v in arr]
