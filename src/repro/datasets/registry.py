"""The 12-dataset registry (paper Table 2).

Each entry pairs the paper's dataset metadata (id, name, category,
attribute count, row count) with a ground-truth network spec from
:mod:`repro.datasets.networks` and a designated ML target attribute.
:func:`load` materializes a :class:`Dataset`: the sampled relation plus
the generating SEM, which downstream code uses both as the evaluation
workload and as an oracle (the true constraints are known here, unlike
with the original data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..pgm.sem import DiscreteSEM, random_sem
from ..relation import Relation
from . import networks
from .networks import NetworkSpec


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata of one evaluation dataset (one row of Table 2)."""

    id: int
    name: str
    category: str
    n_attributes: int
    n_rows: int
    target: str
    network: Callable[[], NetworkSpec]


DATASETS: tuple[DatasetSpec, ...] = (
    DatasetSpec(1, "Adult", "Demographic", 15, 48842,
                "income", networks.adult),
    DatasetSpec(2, "Lung Cancer", "Medical", 5, 20000,
                "dysp", networks.lung_cancer),
    DatasetSpec(3, "Cylinder Bands", "Manufacturing", 40, 540,
                "band_present", networks.cylinder_bands),
    DatasetSpec(4, "Diabetes", "Medical", 9, 520,
                "diagnosis", networks.diabetes),
    DatasetSpec(5, "Contraceptive Method Choice", "Demographic", 10, 1473,
                "method", networks.contraceptive),
    DatasetSpec(6, "Blood Transfusion Service Center", "Medical", 4, 748,
                "donated", networks.blood_transfusion),
    DatasetSpec(7, "Steel Plates Faults", "Manufacturing", 28, 1941,
                "fault", networks.steel_plates),
    DatasetSpec(8, "Jungle Chess", "Game", 7, 44819,
                "outcome", networks.jungle_chess),
    DatasetSpec(9, "Telco Customer Churn", "Business", 21, 7043,
                "churn", networks.telco_churn),
    DatasetSpec(10, "Bank Marketing", "Business", 17, 45211,
                "subscribed", networks.bank_marketing),
    DatasetSpec(11, "Phishing Websites", "Security", 31, 11055,
                "phishing", networks.phishing),
    DatasetSpec(12, "Hotel Reservations", "Business", 18, 36275,
                "booking_status", networks.hotel_reservations),
)


class DatasetError(ValueError):
    """Raised on unknown dataset lookups."""


@dataclass
class Dataset:
    """A materialized dataset twin."""

    spec: DatasetSpec
    relation: Relation
    sem: DiscreteSEM

    @property
    def name(self) -> str:
        """The dataset twin's display name."""
        return self.spec.name

    @property
    def target(self) -> str:
        """The prediction-target attribute."""
        return self.spec.target

    def feature_names(self) -> list[str]:
        """Attribute names used as model features (all but the target)."""
        return [n for n in self.relation.names if n != self.spec.target]

    def ground_truth_dag(self):
        """The generating SEM's DAG (evaluation ground truth)."""
        return self.sem.dag


def get_spec(key: "int | str") -> DatasetSpec:
    """Look a dataset up by id (1–12) or (case-insensitive) name."""
    for spec in DATASETS:
        if isinstance(key, int) and spec.id == key:
            return spec
        if isinstance(key, str) and spec.name.lower() == key.lower():
            return spec
    raise DatasetError(f"unknown dataset: {key!r}")


def load(
    key: "int | str",
    n_rows: int | None = None,
    seed: int | None = None,
) -> Dataset:
    """Materialize a dataset twin.

    Parameters
    ----------
    n_rows:
        Override the paper's row count (benchmarks use scaled-down
        sizes on this single-core machine; the default reproduces
        Table 2 exactly).
    seed:
        Sampling seed; defaults to a per-dataset constant so loads are
        reproducible.
    """
    spec = get_spec(key)
    network = spec.network()
    if len(network.attributes) != spec.n_attributes:
        raise DatasetError(
            f"network for {spec.name!r} has {len(network.attributes)} "
            f"attributes, expected {spec.n_attributes}"
        )
    sem_rng = np.random.default_rng(network.seed)
    sem = random_sem(
        network.dag(),
        cardinalities=network.cardinality_map(),
        determinism=network.determinism,
        unconstrained_fraction=network.unconstrained_fraction,
        rng=sem_rng,
    )
    sample_rng = np.random.default_rng(
        seed if seed is not None else network.seed + 10_000
    )
    relation = sem.sample(n_rows or spec.n_rows, sample_rng)
    return Dataset(spec=spec, relation=relation, sem=sem)


def load_all(
    n_rows: int | None = None, seed: int | None = None
) -> list[Dataset]:
    """Materialize all 12 twins (optionally scaled)."""
    return [load(spec.id, n_rows=n_rows, seed=seed) for spec in DATASETS]
