"""Synthetic twins of the paper's 12 evaluation datasets (Table 2)."""

from .networks import NetworkSpec
from .queries import BenchQuery, queries_for
from .registry import (
    DATASETS,
    Dataset,
    DatasetError,
    DatasetSpec,
    get_spec,
    load,
    load_all,
)

__all__ = [
    "NetworkSpec",
    "BenchQuery",
    "queries_for",
    "DATASETS",
    "Dataset",
    "DatasetError",
    "DatasetSpec",
    "get_spec",
    "load",
    "load_all",
]
