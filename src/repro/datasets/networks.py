"""Ground-truth networks for the 12 evaluation datasets (Table 2).

The paper's datasets come from UCI/OpenML/Kaggle; this environment has
no network access, so each dataset is regenerated as a *synthetic twin*:
a hand-built discrete structural equation model with the same name,
attribute count, and row count as Table 2 (see DESIGN.md for why this
substitution preserves the evaluation's behaviour).  Attribute names
follow the real datasets where they are well known (Adult, Telco, the
bnlearn Cancer network behind "Lung Cancer"), and the dependency
structures mix hand-crafted backbones — including the Adult
relationship → marital-status constraint the case study uses — with
seeded random edges to reach realistic densities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pgm.dag import DAG


@dataclass(frozen=True)
class NetworkSpec:
    """Structure + generation parameters of one dataset twin."""

    attributes: tuple[str, ...]
    edges: tuple[tuple[str, str], ...]
    cardinalities: dict[str, int] = field(default_factory=dict)
    default_cardinality: int = 3
    determinism: float = 0.94
    unconstrained_fraction: float = 0.25
    seed: int = 0

    def dag(self) -> DAG:
        """The network structure as a DAG."""
        return DAG(self.attributes, self.edges)

    def cardinality_map(self) -> dict[str, int]:
        """Node name -> outcome cardinality."""
        return {
            name: self.cardinalities.get(name, self.default_cardinality)
            for name in self.attributes
        }


def _random_edges(
    names: tuple[str, ...],
    n_edges: int,
    seed: int,
    max_parents: int = 3,
    forbidden: frozenset[tuple[str, str]] = frozenset(),
) -> list[tuple[str, str]]:
    """Random DAG edges respecting the name order as topological order."""
    rng = np.random.default_rng(seed)
    edges: set[tuple[str, str]] = set()
    parent_count = {n: 0 for n in names}
    attempts = 0
    while len(edges) < n_edges and attempts < n_edges * 50:
        attempts += 1
        i, j = sorted(rng.choice(len(names), size=2, replace=False))
        edge = (names[int(i)], names[int(j)])
        if edge in edges or edge in forbidden:
            continue
        if parent_count[edge[1]] >= max_parents:
            continue
        edges.add(edge)
        parent_count[edge[1]] += 1
    return sorted(edges)


def _spec(
    attributes: tuple[str, ...],
    backbone: tuple[tuple[str, str], ...],
    extra_edges: int,
    seed: int,
    **kwargs,
) -> NetworkSpec:
    # Random edges follow a topological order of the backbone so the
    # combined edge set is guaranteed acyclic.
    topo = DAG(attributes, backbone).topological_order()
    forbidden = frozenset(backbone) | frozenset(
        (b, a) for a, b in backbone
    )
    random_part = _random_edges(topo, extra_edges, seed, forbidden=forbidden)
    return NetworkSpec(
        attributes=attributes,
        edges=tuple(backbone) + tuple(random_part),
        seed=seed,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Dataset-specific networks
# ---------------------------------------------------------------------------


def adult() -> NetworkSpec:
    """Adult census twin (15 attributes).

    Encodes the constraint the case study rectifies: relationship
    Husband/Wife determines marital-status, and education determines
    education-num.
    """
    attributes = (
        "age", "workclass", "education", "education-num",
        "marital-status", "occupation", "relationship", "race", "sex",
        "capital-gain", "capital-loss", "hours-per-week",
        "native-country", "fnlwgt", "income",
    )
    backbone = (
        ("education", "education-num"),
        ("relationship", "marital-status"),
        ("age", "marital-status"),
        ("education", "occupation"),
        ("workclass", "occupation"),
        ("occupation", "income"),
        ("education", "income"),
        ("hours-per-week", "income"),
        ("sex", "relationship"),
    )
    return _spec(
        attributes, backbone, extra_edges=6, seed=101,
        cardinalities={
            "education": 5, "education-num": 5, "age": 8,
            "relationship": 4, "marital-status": 4, "income": 2,
            "sex": 2, "native-country": 4, "fnlwgt": 512,
            "capital-gain": 12, "capital-loss": 12,
            "hours-per-week": 16,
        },
        determinism=0.998,
    )


def lung_cancer() -> NetworkSpec:
    """The bnlearn Cancer network (5 nodes) — the DGP is public."""
    attributes = ("pollution", "smoker", "cancer", "xray", "dysp")
    backbone = (
        ("pollution", "cancer"),
        ("smoker", "cancer"),
        ("cancer", "xray"),
        ("cancer", "dysp"),
    )
    return NetworkSpec(
        attributes=attributes,
        edges=backbone,
        cardinalities={n: 2 for n in attributes} | {"cancer": 3},
        determinism=0.998,
        seed=102,
    )


def cylinder_bands() -> NetworkSpec:
    """Manufacturing process twin (40 attributes)."""
    attributes = tuple(
        ["cylinder_size", "paper_type", "ink_type", "press_type",
         "humidity", "viscosity", "band_type"]
        + [f"proc_{i:02d}" for i in range(32)]
        + ["band_present"]
    )[:40]
    backbone = (
        ("cylinder_size", "band_type"),
        ("paper_type", "viscosity"),
        ("ink_type", "viscosity"),
        ("press_type", "humidity"),
        ("viscosity", "band_present"),
        ("humidity", "band_present"),
    )
    return _spec(
        attributes, backbone, extra_edges=26, seed=103,
        default_cardinality=7, determinism=0.998,
    )


def diabetes() -> NetworkSpec:
    """Diabetes symptoms twin (9 attributes; small-sample regime)."""
    attributes = (
        "age_band", "gender", "polyuria", "polydipsia", "weight_loss",
        "weakness", "obesity", "family_history", "diagnosis",
    )
    backbone = (
        ("diagnosis", "polyuria"),
        ("diagnosis", "polydipsia"),
        ("polyuria", "weight_loss"),
        ("obesity", "diagnosis"),
        ("family_history", "diagnosis"),
        ("age_band", "diagnosis"),
    )
    return _spec(
        attributes, backbone, extra_edges=3, seed=104,
        cardinalities={n: 2 for n in attributes} | {"age_band": 48},
        determinism=0.998,
    )


def contraceptive() -> NetworkSpec:
    """Contraceptive method choice twin (10 attributes)."""
    attributes = (
        "wife_age", "wife_education", "husband_education", "children",
        "wife_religion", "wife_working", "husband_occupation",
        "living_standard", "media_exposure", "method",
    )
    backbone = (
        ("wife_education", "media_exposure"),
        ("wife_age", "children"),
        ("wife_education", "method"),
        ("children", "method"),
        ("living_standard", "method"),
    )
    return _spec(
        attributes, backbone, extra_edges=4, seed=105,
        cardinalities={"wife_age": 34, "children": 8, "method": 3},
        default_cardinality=3, determinism=0.998,
    )


def blood_transfusion() -> NetworkSpec:
    """Blood donation RFM twin (4 attributes)."""
    attributes = ("recency", "frequency", "monetary", "donated")
    backbone = (
        ("frequency", "monetary"),
        ("recency", "donated"),
        ("frequency", "donated"),
    )
    return NetworkSpec(
        attributes=attributes,
        edges=backbone,
        cardinalities={
            "recency": 25, "frequency": 33, "monetary": 33, "donated": 2,
        },
        determinism=0.998,
        seed=106,
    )


def steel_plates() -> NetworkSpec:
    """Steel plate fault twin (28 attributes)."""
    attributes = tuple(
        ["steel_type", "thickness", "luminosity", "edge_class"]
        + [f"geom_{i:02d}" for i in range(20)]
        + ["sigmoid_band", "outside_band", "fault_severity", "fault"]
    )[:28]
    backbone = (
        ("steel_type", "fault"),
        ("thickness", "fault_severity"),
        ("luminosity", "sigmoid_band"),
        ("edge_class", "outside_band"),
        ("fault_severity", "fault"),
    )
    return _spec(
        attributes, backbone, extra_edges=18, seed=107,
        default_cardinality=7, determinism=0.998,
    )


def jungle_chess() -> NetworkSpec:
    """Jungle chess endgame twin (7 attributes; game rules are exact)."""
    attributes = (
        "white_piece", "white_rank", "white_file",
        "black_piece", "black_rank", "black_file", "outcome",
    )
    backbone = (
        ("white_piece", "outcome"),
        ("black_piece", "outcome"),
        ("white_rank", "white_file"),
        ("black_rank", "black_file"),
    )
    return _spec(
        attributes, backbone, extra_edges=1, seed=108,
        cardinalities={
            "white_piece": 4, "black_piece": 4, "outcome": 3,
        },
        default_cardinality=4, determinism=0.998,
    )


def telco_churn() -> NetworkSpec:
    """Telco customer churn twin (21 attributes).

    Encodes the real dataset's hard constraints, e.g. customers without
    phone service cannot have multiple lines, and internet add-ons
    require internet service.
    """
    attributes = (
        "gender", "senior", "partner", "dependents", "tenure_band",
        "phone_service", "multiple_lines", "internet_service",
        "online_security", "online_backup", "device_protection",
        "tech_support", "streaming_tv", "streaming_movies",
        "contract", "paperless", "payment_method", "monthly_band",
        "total_band", "lifetime_value", "churn",
    )
    backbone = (
        ("phone_service", "multiple_lines"),
        ("internet_service", "online_security"),
        ("internet_service", "online_backup"),
        ("internet_service", "device_protection"),
        ("internet_service", "tech_support"),
        ("internet_service", "streaming_tv"),
        ("internet_service", "streaming_movies"),
        ("tenure_band", "total_band"),
        ("monthly_band", "total_band"),
        ("contract", "churn"),
        ("tenure_band", "churn"),
    )
    return _spec(
        attributes, backbone, extra_edges=6, seed=109,
        cardinalities={
            "churn": 2, "phone_service": 2, "paperless": 2,
            "senior": 2, "partner": 2, "dependents": 2, "gender": 2,
            "internet_service": 3, "contract": 3, "payment_method": 4,
            "monthly_band": 16, "total_band": 192, "lifetime_value": 256,
            "tenure_band": 12,
        },
        determinism=0.998,
    )


def bank_marketing() -> NetworkSpec:
    """Bank telemarketing twin (17 attributes)."""
    attributes = (
        "age_band", "job", "marital", "education", "default",
        "balance_band", "housing", "loan", "contact", "day_band",
        "month_band", "duration_band", "campaign_band", "pdays_band",
        "previous_band", "poutcome", "subscribed",
    )
    backbone = (
        ("job", "education"),
        ("age_band", "marital"),
        ("balance_band", "housing"),
        ("poutcome", "subscribed"),
        ("duration_band", "subscribed"),
        ("previous_band", "poutcome"),
    )
    return _spec(
        attributes, backbone, extra_edges=7, seed=110,
        cardinalities={
            "subscribed": 2, "default": 2, "housing": 2, "loan": 2,
            "job": 5, "month_band": 12, "balance_band": 256,
            "duration_band": 128, "age_band": 10,
        },
        determinism=0.998,
    )


def phishing() -> NetworkSpec:
    """Phishing website features twin (31 attributes)."""
    attributes = tuple(
        ["has_ip", "url_length", "shortener", "at_symbol",
         "double_slash", "prefix_suffix", "subdomains", "https",
         "domain_age", "favicon"]
        + [f"feat_{i:02d}" for i in range(20)]
        + ["phishing"]
    )[:31]
    backbone = (
        ("has_ip", "phishing"),
        ("shortener", "url_length"),
        ("https", "phishing"),
        ("domain_age", "phishing"),
        ("subdomains", "prefix_suffix"),
    )
    return _spec(
        attributes, backbone, extra_edges=20, seed=111,
        cardinalities={"phishing": 2, "https": 2, "has_ip": 2},
        default_cardinality=6, determinism=0.998,
    )


def hotel_reservations() -> NetworkSpec:
    """Hotel booking twin (18 attributes)."""
    attributes = (
        "adults", "children", "weekend_nights", "week_nights",
        "meal_plan", "parking", "room_type", "lead_time_band",
        "arrival_month_band", "market_segment", "repeated_guest",
        "prev_cancellations", "prev_bookings", "price_band",
        "special_requests", "deposit", "channel", "booking_status",
    )
    backbone = (
        ("room_type", "price_band"),
        ("market_segment", "channel"),
        ("lead_time_band", "booking_status"),
        ("deposit", "booking_status"),
        ("repeated_guest", "prev_bookings"),
        ("prev_cancellations", "booking_status"),
    )
    return _spec(
        attributes, backbone, extra_edges=7, seed=112,
        cardinalities={
            "booking_status": 2, "repeated_guest": 2, "parking": 2,
            "room_type": 4, "market_segment": 4, "lead_time_band": 64,
            "price_band": 128,
        },
        determinism=0.998,
    )
