"""The 48 ML-integrated SQL queries of RQ2 (four per dataset).

The paper's authors hand-wrote four queries of varied complexity per
dataset; we generate four *shapes* instantiated with each dataset's own
attributes, mirroring the examples shown in the paper (Fig. 1's grouped
average, the case study's ``GROUP BY income_pred`` aggregate, CASE WHEN
indicator averages, and a filtered class-share query):

Q1  prediction histogram              — GROUP BY prediction, COUNT(*)
Q2  grouped indicator average         — AVG(CASE WHEN attr=v ...) per prediction
Q3  filtered class share              — AVG(CASE WHEN pred=v ...) under WHERE
Q4  per-category positive counts      — WHERE pred=v GROUP BY attr
"""

from __future__ import annotations

from dataclasses import dataclass

from .registry import Dataset


@dataclass(frozen=True)
class BenchQuery:
    """One ML-integrated SQL query of the RQ2 workload."""

    dataset_id: int
    index: int
    sql: str

    @property
    def name(self) -> str:
        """Short identifier of the benchmark query."""
        return f"D{self.dataset_id}-Q{self.index}"


def _value(dataset: Dataset, attribute: str, code: int = 0) -> str:
    codec = dataset.relation.codec(attribute)
    value = codec.decode_one(min(code, codec.cardinality - 1))
    return str(value).replace("'", "''")


def queries_for(
    dataset: Dataset, table: str = "t", model: str = "m"
) -> list[BenchQuery]:
    """The four RQ2 queries for a dataset twin."""
    features = dataset.feature_names()
    probe = features[0]
    filter_attr = features[1] if len(features) > 1 else probe
    probe_value = _value(dataset, probe, 0)
    filter_value = _value(dataset, filter_attr, 0)
    target_value = _value(dataset, dataset.target, 0)

    q1 = (
        f"SELECT PREDICT({model}) AS pred, COUNT(*) AS n "
        f"FROM {table} GROUP BY pred ORDER BY pred"
    )
    q2 = (
        f"SELECT PREDICT({model}) AS pred, "
        f"AVG(CASE WHEN {probe} = '{probe_value}' THEN 1 ELSE 0 END) "
        f"AS share FROM {table} GROUP BY pred ORDER BY pred"
    )
    q3 = (
        f"SELECT AVG(CASE WHEN PREDICT({model}) = '{target_value}' "
        f"THEN 1 ELSE 0 END) AS positive_rate "
        f"FROM {table} WHERE {filter_attr} = '{filter_value}'"
    )
    q4 = (
        f"SELECT {probe}, COUNT(*) AS n FROM {table} "
        f"WHERE PREDICT({model}) = '{target_value}' "
        f"GROUP BY {probe} ORDER BY {probe}"
    )
    return [
        BenchQuery(dataset.spec.id, i + 1, sql)
        for i, sql in enumerate((q1, q2, q3, q4))
    ]
