"""Command-line interface: ``python -m repro <command>``.

Commands
--------
synthesize  CSV in → synthesized DSL program (stdout or file)
check       program + CSV → violation report
rectify     program + CSV → repaired CSV
datasets    list the 12 dataset twins, or export one as CSV
to-sql      program → SQL (audit query / CHECK clauses / UPDATEs)
experiment  regenerate one or all of the paper's tables/figures
obs         observability: render a trace file into a report
chaos       run the fault-injection suite under a degradation policy
drift       vet a stream CSV for drift against training data, with
            optional self-healing re-synthesis (--heal)
serve       drive the asyncio multi-tenant guard service with a
            closed-loop workload and print the service report

``synthesize``, ``check``, ``rectify``, ``experiment``, and ``drift``
accept ``--trace PATH`` to record a structured JSONL trace of the run
(:mod:`repro.obs`); ``obs report PATH`` renders it.  ``synthesize
--budget SECONDS`` caps synthesis wall-clock (best-so-far partial
program), ``--checkpoint PATH`` journals crash-safe synthesis state
there, and ``--resume PATH`` continues from such a journal;
``rectify --guard-policy`` and ``chaos --guard-policy`` select a
:class:`repro.resilience.GuardPolicy` degradation mode.

``synthesize``, ``check``, ``rectify``, and ``drift`` accept
``--workers N`` to fork N worker processes for the heavy phases
(``0`` = one per CPU core); results are bit-identical to a serial run
(:mod:`repro.parallel`, ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .dsl import (
    check_constraints,
    format_program,
    parse_program,
    rectify_updates,
    violations_query,
)
from .errors import apply_strategy, detect_errors
from .relation import read_csv, write_csv
from .synth import CheckpointError, GuardrailConfig, synthesize


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (one subcommand per verb)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GUARDRAIL: synthesize integrity constraints from noisy "
            "data and use them to detect and rectify errors."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace", type=Path, metavar="PATH",
            help="record a JSONL observability trace of this run",
        )

    def add_workers_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="fork N worker processes for the heavy phases "
            "(0 = one per CPU core, default 1 = serial); results are "
            "bit-identical to a serial run",
        )

    synth = sub.add_parser(
        "synthesize", help="synthesize a DSL program from a CSV file"
    )
    add_trace_flag(synth)
    add_workers_flag(synth)
    synth.add_argument("csv", type=Path, help="input data (CSV with header)")
    synth.add_argument(
        "-o", "--output", type=Path, help="write the program here"
    )
    synth.add_argument(
        "--epsilon", type=float, default=0.02,
        help="noise tolerance of Eqn. 3 (default 0.02)",
    )
    synth.add_argument(
        "--alpha", type=float, default=0.01,
        help="CI-test significance level (default 0.01)",
    )
    synth.add_argument(
        "--min-support", type=int, default=4,
        help="minimum rows per warranted condition (default 4)",
    )
    synth.add_argument(
        "--max-dags", type=int, default=256,
        help="MEC enumeration cap (default 256)",
    )
    synth.add_argument(
        "--budget", type=float, metavar="SECONDS",
        help="wall-clock budget; exhaustion returns the best-so-far "
        "partial program instead of running unbounded",
    )
    synth.add_argument(
        "--checkpoint", type=Path, metavar="PATH",
        help="journal crash-safe synthesis state here (atomic writes); "
        "a killed run resumes via --resume PATH",
    )
    synth.add_argument(
        "--resume", type=Path, metavar="PATH",
        help="resume from a checkpoint journaled by --checkpoint on the "
        "same data and settings (skips completed phases)",
    )
    synth.add_argument("--seed", type=int, default=0)

    check = sub.add_parser(
        "check", help="report rows of a CSV violating a saved program"
    )
    add_trace_flag(check)
    add_workers_flag(check)
    check.add_argument("program", type=Path, help="saved DSL program")
    check.add_argument("csv", type=Path, help="data to vet")
    check.add_argument(
        "--limit", type=int, default=20,
        help="max violating rows to print (default 20)",
    )

    rectify = sub.add_parser(
        "rectify", help="repair a CSV against a saved program"
    )
    add_trace_flag(rectify)
    add_workers_flag(rectify)
    rectify.add_argument("program", type=Path)
    rectify.add_argument("csv", type=Path)
    rectify.add_argument(
        "-o", "--output", type=Path, required=True,
        help="where to write the repaired CSV",
    )
    rectify.add_argument(
        "--strategy",
        choices=["rectify", "coerce", "ignore", "raise"],
        default="rectify",
    )
    rectify.add_argument(
        "--guard-policy",
        choices=["strict", "warn", "pass_through", "reject"],
        default="strict",
        help="degradation mode if handling itself fails: strict raises, "
        "warn/pass_through write the input unrepaired, reject refuses "
        "to write (default strict)",
    )

    datasets = sub.add_parser(
        "datasets", help="list or export the 12 evaluation dataset twins"
    )
    datasets.add_argument(
        "--export", metavar="ID", help="dataset id or name to export"
    )
    datasets.add_argument("-o", "--output", type=Path)
    datasets.add_argument(
        "--rows", type=int, help="row count override (default: Table 2)"
    )
    datasets.add_argument("--seed", type=int, default=None)

    to_sql = sub.add_parser(
        "to-sql", help="translate a saved program to SQL"
    )
    to_sql.add_argument("program", type=Path)
    to_sql.add_argument(
        "--table", default="data", help="target table name"
    )
    to_sql.add_argument(
        "--mode",
        choices=["audit", "check", "update"],
        default="audit",
    )

    experiment = sub.add_parser(
        "experiment",
        help="regenerate one or all of the paper's tables/figures",
    )
    experiment.add_argument(
        "artifact",
        nargs="?",
        help=(
            "artifact key (table1, table3, ..., fig6, fig7, optsmt); "
            "omit to run all and emit a Markdown report"
        ),
    )
    experiment.add_argument(
        "-o", "--output", type=Path,
        help="write the report here instead of stdout",
    )
    experiment.add_argument(
        "--scale-rows", type=int, default=None,
        help="row cap per dataset (default: REPRO_SCALE_ROWS or 2400)",
    )
    add_trace_flag(experiment)

    obs_parser = sub.add_parser(
        "obs", help="observability utilities (see repro.obs)"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report",
        help="render a JSONL trace: phase timings, metrics, guard "
        "dashboard",
    )
    report.add_argument(
        "trace", type=Path, help="trace file written by --trace"
    )

    chaos = sub.add_parser(
        "chaos",
        help="inject every fault class and verify the degradation "
        "policy holds (repro.resilience.chaos)",
    )
    chaos.add_argument(
        "--guard-policy",
        choices=["strict", "warn", "pass_through", "reject"],
        default="warn",
        help="policy the guarded pipeline degrades under (default warn)",
    )
    chaos.add_argument(
        "--fault",
        action="append",
        metavar="NAME",
        help="run only this fault class (repeatable; default: all)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="seed for the harness's random generator (default 0)",
    )
    chaos.add_argument(
        "--worker-faults",
        action="store_true",
        help="run only the process-level fault classes (worker "
        "SIGKILL/hang/poisoned result in the supervised pool)",
    )
    chaos.add_argument(
        "--durability",
        action="store_true",
        help="run only the disk-fault classes (torn journal tail, "
        "corrupt snapshot, disk full, crash+restart) against the "
        "durable state store",
    )
    chaos.add_argument(
        "--load",
        action="store_true",
        help="run the chaos-under-load suite instead: faults injected "
        "into a live GuardServer while a closed-loop client fleet "
        "drives it (repro.resilience.chaos_load)",
    )
    chaos.add_argument(
        "--clients", type=int, default=8,
        help="closed-loop clients in the --load fleet (default 8)",
    )
    chaos.add_argument(
        "--requests", type=int, default=5,
        help="requests per client per --load traffic phase (default 5)",
    )
    chaos.add_argument(
        "--overload",
        action="store_true",
        help="run the overload storm suite instead: traffic-shaped "
        "faults (10x storms, retry bursts, noisy neighbors, deadline "
        "stampedes) against a live GuardServer "
        "(repro.resilience.chaos_overload)",
    )
    chaos.add_argument(
        "--scale", type=float, default=1.0,
        help="scale factor on --overload storm volume (default 1.0)",
    )

    drift = sub.add_parser(
        "drift",
        help="vet a stream CSV for drift against training data "
        "(repro.resilience.drift)",
    )
    add_trace_flag(drift)
    add_workers_flag(drift)
    drift.add_argument(
        "train", type=Path, help="training data the guard was fit on"
    )
    drift.add_argument(
        "stream", type=Path, help="arriving data to vet for drift"
    )
    drift.add_argument(
        "--program", type=Path, metavar="PATH",
        help="saved DSL program to guard with (default: synthesize "
        "one from the training CSV)",
    )
    drift.add_argument(
        "--window", type=int, default=512,
        help="rows per drift-evaluation window (default 512)",
    )
    drift.add_argument(
        "--heal", action="store_true",
        help="run the full self-healing loop: on drift, re-synthesize "
        "under a budget, validate, and hot-swap the guardrail",
    )
    drift.add_argument(
        "--heal-budget", type=float, default=10.0, metavar="SECONDS",
        help="wall-clock budget per re-synthesis attempt (default 10)",
    )

    serve = sub.add_parser(
        "serve",
        help="drive the asyncio multi-tenant guard service "
        "(repro.serve) with a closed-loop workload",
    )
    add_trace_flag(serve)
    serve.add_argument(
        "program", type=Path, help="saved DSL program to serve"
    )
    serve.add_argument(
        "csv", type=Path, help="rows to replay as request traffic"
    )
    serve.add_argument(
        "--tenants", type=int, default=4, metavar="N",
        help="named guardrail tenants to register (default 4)",
    )
    serve.add_argument(
        "--clients", type=int, default=16, metavar="K",
        help="concurrent closed-loop clients (default 16)",
    )
    serve.add_argument(
        "--requests", type=int, default=64, metavar="M",
        help="requests per client (default 64)",
    )
    serve.add_argument(
        "--mode", default="blocking",
        choices=("blocking", "parallel"),
        help="guard-vs-predict execution mode (default blocking)",
    )
    serve.add_argument(
        "--guard-policy", default="strict", metavar="POLICY",
        help="degradation policy when the guard fails "
        "(strict|warn|pass-through|reject; default strict)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64, metavar="B",
        help="micro-batch flush threshold (default 64)",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0, metavar="MS",
        help="longest a request waits for batch-mates (default 2)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=1024, metavar="Q",
        help="per-tenant admission queue bound (default 1024)",
    )
    serve.add_argument(
        "--state-dir", type=Path, default=None, metavar="DIR",
        help="make the server durable: write-ahead journal + "
        "snapshots under DIR; registrations/swaps/quarantined rows "
        "survive a crash (recover with `repro recover DIR`)",
    )

    recover = sub.add_parser(
        "recover",
        help="inspect and replay a durable guard-server state "
        "directory (repro.resilience.durability)",
    )
    add_trace_flag(recover)
    recover.add_argument(
        "state_dir", type=Path,
        help="state directory a `repro serve --state-dir` run wrote",
    )
    recover.add_argument(
        "--repair", action="store_true",
        help="also truncate a torn journal tail on disk (recovery "
        "itself is read-only by default)",
    )

    return parser


def _cmd_synthesize(args: argparse.Namespace) -> int:
    relation = read_csv(args.csv)
    config = GuardrailConfig(
        epsilon=args.epsilon,
        alpha=args.alpha,
        min_support=args.min_support,
        max_dags=args.max_dags,
        seed=args.seed,
    )
    budget = None
    if args.budget is not None:
        from .resilience import Budget

        budget = Budget(seconds=args.budget)
    try:
        result = synthesize(
            relation,
            config,
            budget=budget,
            workers=args.workers,
            checkpoint_path=args.checkpoint,
            resume_from=args.resume,
        )
    except CheckpointError as error:
        print(f"cannot resume: {error}", file=sys.stderr)
        return 2
    if result.resumed:
        print(
            f"-- resumed from checkpoint {args.resume}", file=sys.stderr
        )
    text = format_program(result.program)
    print(
        f"-- {len(result.program)} statements, "
        f"{len(result.program.branches)} branches, "
        f"coverage {result.coverage:.3f}, loss {result.loss}, "
        f"{result.n_dags_enumerated} DAGs enumerated",
        file=sys.stderr,
    )
    if result.partial:
        notes = "; ".join(result.budget_notes) or "budget exhausted"
        print(
            f"-- PARTIAL: best-so-far under a {args.budget}s budget "
            f"({notes})",
            file=sys.stderr,
        )
    if args.output:
        args.output.write_text(text + "\n", encoding="utf-8")
        print(f"program written to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    program = parse_program(args.program.read_text(encoding="utf-8"))
    relation = read_csv(args.csv)
    result = detect_errors(program, relation, pool=args.workers)
    print(
        f"{result.n_flagged_rows} of {relation.n_rows} rows violate "
        f"the constraints"
    )
    for violation in result.violations[: args.limit]:
        print(
            f"  row {violation.row}: {violation.attribute} should be "
            f"{violation.expected!r} "
            f"(found {relation.value(violation.row, violation.attribute)!r})"
        )
    if len(result.violations) > args.limit:
        print(f"  ... and {len(result.violations) - args.limit} more")
    return 1 if result.n_flagged_rows else 0


def _cmd_rectify(args: argparse.Namespace) -> int:
    import functools

    from .errors import DataIntegrityError
    from .resilience import GuardPolicy, resilient_call

    program = parse_program(args.program.read_text(encoding="utf-8"))
    relation = read_csv(args.csv)
    policy = GuardPolicy.parse(args.guard_policy)
    outcome = resilient_call(
        functools.partial(apply_strategy, pool=args.workers),
        program,
        relation,
        args.strategy,
        policy=policy,
        fallback=None,
        expected=(DataIntegrityError,),
    )
    if outcome is None:
        # Handling itself failed and the policy says degrade.
        if policy is GuardPolicy.REJECT:
            print(
                "error handling failed; refusing to write under the "
                "reject policy",
                file=sys.stderr,
            )
            return 3
        if policy is GuardPolicy.WARN:
            print(
                "warning: error handling failed; writing the input "
                "unrepaired",
                file=sys.stderr,
            )
        write_csv(relation, args.output)
        print(f"0 cells changed (degraded); wrote {args.output}")
        return 0
    write_csv(outcome.relation, args.output)
    print(
        f"{outcome.n_changed} cells changed "
        f"({outcome.detection.n_flagged_rows} violating rows); "
        f"wrote {args.output}"
    )
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .datasets import DATASETS, load

    if args.export is None:
        print(f"{'id':<3} {'name':<34} {'category':<14} attrs rows")
        for spec in DATASETS:
            print(
                f"{spec.id:<3} {spec.name:<34} {spec.category:<14} "
                f"{spec.n_attributes:<5} {spec.n_rows}"
            )
        return 0
    key: "int | str" = (
        int(args.export) if args.export.isdigit() else args.export
    )
    dataset = load(key, n_rows=args.rows, seed=args.seed)
    target = args.output or Path(
        dataset.spec.name.lower().replace(" ", "_") + ".csv"
    )
    write_csv(dataset.relation, target)
    print(
        f"wrote {dataset.relation.n_rows} rows x "
        f"{len(dataset.relation.schema)} attrs to {target}"
    )
    return 0


def _cmd_to_sql(args: argparse.Namespace) -> int:
    program = parse_program(args.program.read_text(encoding="utf-8"))
    if args.mode == "audit":
        print(violations_query(program, args.table))
    elif args.mode == "check":
        for clause in check_constraints(program):
            print(clause + ",")
    else:
        for update in rectify_updates(program, args.table):
            print(update)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import (
        ExperimentContext,
        artifact_keys,
        generate_report,
        run_artifact,
    )

    kwargs = {}
    if args.scale_rows is not None:
        kwargs["scale_rows"] = args.scale_rows
    context = ExperimentContext(**kwargs)
    if args.artifact:
        if args.artifact not in artifact_keys():
            print(
                f"unknown artifact {args.artifact!r}; choose from: "
                + ", ".join(artifact_keys()),
                file=sys.stderr,
            )
            return 2
        body = run_artifact(args.artifact, context)
        if args.output:
            args.output.write_text(body + "\n", encoding="utf-8")
        else:
            print(body)
        return 0
    report = generate_report(context)
    if args.output:
        args.output.write_text(report, encoding="utf-8")
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(report)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from .obs import render_report

    if not args.trace.exists():
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    try:
        print(render_report(args.trace))
    except json.JSONDecodeError as error:
        print(
            f"not a valid JSONL trace: {args.trace} ({error})",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience import (
        DURABILITY_FAULT_CLASSES,
        FAULT_CLASSES,
        LOAD_FAULT_CLASSES,
        OVERLOAD_FAULT_CLASSES,
        WORKER_FAULT_CLASSES,
        render_chaos_report,
        render_load_report,
        render_overload_report,
        run_chaos_suite,
        run_load_suite,
        run_overload_suite,
    )

    if args.overload:
        faults = (
            tuple(args.fault) if args.fault else OVERLOAD_FAULT_CLASSES
        )
        unknown = [
            f for f in faults if f not in OVERLOAD_FAULT_CLASSES
        ]
        if unknown:
            print(
                f"unknown overload fault class(es): "
                f"{', '.join(unknown)}; choose from: "
                f"{', '.join(OVERLOAD_FAULT_CLASSES)}",
                file=sys.stderr,
            )
            return 2
        outcomes = run_overload_suite(
            args.guard_policy, faults=faults, scale=args.scale
        )
        print(render_overload_report(outcomes))
        return 0 if all(o.conformant for o in outcomes) else 1
    if args.load:
        faults = tuple(args.fault) if args.fault else LOAD_FAULT_CLASSES
        unknown = [f for f in faults if f not in LOAD_FAULT_CLASSES]
        if unknown:
            print(
                f"unknown load fault class(es): {', '.join(unknown)}; "
                f"choose from: {', '.join(LOAD_FAULT_CLASSES)}",
                file=sys.stderr,
            )
            return 2
        outcomes = run_load_suite(
            args.guard_policy,
            faults=faults,
            clients=args.clients,
            requests=args.requests,
        )
        print(render_load_report(outcomes))
        return 0 if all(o.conformant for o in outcomes) else 1
    if args.worker_faults:
        default_faults = WORKER_FAULT_CLASSES
    elif args.durability:
        default_faults = DURABILITY_FAULT_CLASSES
    else:
        default_faults = FAULT_CLASSES
    faults = tuple(args.fault) if args.fault else default_faults
    unknown = [f for f in faults if f not in FAULT_CLASSES]
    if unknown:
        print(
            f"unknown fault class(es): {', '.join(unknown)}; choose "
            f"from: {', '.join(FAULT_CLASSES)}",
            file=sys.stderr,
        )
        return 2
    import numpy as np

    outcomes = run_chaos_suite(
        args.guard_policy,
        faults=faults,
        rng=np.random.default_rng(args.seed),
    )
    print(render_chaos_report(outcomes))
    return 0 if all(o.conformant for o in outcomes) else 1


def _cmd_drift(args: argparse.Namespace) -> int:
    from .resilience import (
        DriftDetector,
        GuardrailSupervisor,
        SupervisorConfig,
        render_drift_report,
    )
    from .synth import Guardrail

    train = read_csv(args.train)
    stream = read_csv(args.stream)
    if args.program is not None:
        guard = Guardrail.load(args.program)
    else:
        print("-- synthesizing guard from training data", file=sys.stderr)
        guard = Guardrail(GuardrailConfig()).fit(train)
    detector = DriftDetector.from_training(
        train, program=guard.program, window=args.window
    )
    if args.heal:
        supervisor = GuardrailSupervisor(
            guard,
            drift=detector,
            config=SupervisorConfig(
                heal_budget_seconds=args.heal_budget,
                min_heal_rows=min(128, max(8, stream.n_rows // 4)),
            ),
        )
        flagged = sum(
            0 if verdict.ok else 1
            for verdict in supervisor.stream(stream.iter_rows())
        )
        alerts, stats = supervisor.alerts, supervisor.drift.stats
        print(render_drift_report(alerts, stats))
        for heal in supervisor.heals:
            tag = "accepted" if heal.accepted else "rejected"
            print(f"heal {tag}: {heal.reason}")
        print(
            f"{flagged} of {stream.n_rows} rows flagged; guardrail at "
            f"version {supervisor.version}"
        )
    else:
        from .parallel import as_pool

        pool = as_pool(args.workers)
        if pool is not None and pool.parallel:
            # Batch path: sharded detection + window-parallel drift
            # scan; verdicts, alerts, and stats are bit-identical to
            # the row-at-a-time loop below.
            mask = guard.check(stream, pool=pool)
            detector.scan(stream, ~mask, pool=pool)
            flagged = int(mask.sum())
        else:
            row_guard = guard.row_guard()
            row_guard.attach_drift(detector)
            flagged = sum(
                0 if row_guard.check(row).ok else 1
                for row in stream.iter_rows()
            )
        detector.flush()
        alerts = detector.poll()
        print(render_drift_report(alerts, detector.stats))
        print(f"{flagged} of {stream.n_rows} rows flagged")
    return 1 if alerts else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import GuardServer, TenantConfig, render_service_report
    from .synth import Guardrail

    guardrail = Guardrail.load(args.program)
    relation = read_csv(args.csv)
    rows = [dict(row) for row in relation.iter_rows()]
    if not rows:
        print("no rows to serve", file=sys.stderr)
        return 2
    config = TenantConfig(
        mode=args.mode,
        policy=args.guard_policy,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_size=args.queue_size,
    )

    async def drive() -> GuardServer:
        server = GuardServer(state_dir=args.state_dir)
        names = [f"tenant-{i}" for i in range(args.tenants)]
        for name in names:
            server.register(name, guardrail, config)

        async def client(client_id: int) -> None:
            for i in range(args.requests):
                index = client_id * args.requests + i
                tenant = names[index % len(names)]
                response = await server.check(
                    tenant, rows[index % len(rows)]
                )
                if response.rejected:
                    await asyncio.sleep(response.retry_after or 0.001)

        async with server:
            await asyncio.gather(
                *(client(i) for i in range(args.clients))
            )
            server.publish_metrics()
        return server

    server = asyncio.run(drive())
    print(render_service_report(server))
    total = sum(s["completed"] for s in server.metrics().values())
    flagged = sum(
        t.guard.stats.degraded_verdicts
        for t in (server.tenant(n) for n in server.tenants)
    )
    print(
        f"{total} requests served across {args.tenants} tenants "
        f"({args.clients} clients x {args.requests} requests; "
        f"{flagged} degraded verdicts)"
    )
    if args.state_dir is not None:
        print(f"durable state journaled under {args.state_dir}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from .resilience.durability import (
        JOURNAL_NAME,
        DurabilityError,
        WriteAheadJournal,
        recover_runtime_state,
    )

    try:
        folded, recovered = recover_runtime_state(args.state_dir)
    except DurabilityError as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        return 2
    print(f"state directory: {args.state_dir}")
    print(
        f"snapshot: generation {recovered.snapshot_generation} "
        f"({recovered.snapshot_generations} on disk, "
        f"{recovered.rejected_snapshots} rejected as corrupt)"
    )
    print(
        f"journal: {recovered.replayed_records} record(s) replayed, "
        f"{recovered.truncated_tail_bytes} torn tail byte(s) discarded, "
        f"last committed seq {recovered.last_seq}"
    )
    for name, tenant in folded["tenants"].items():
        print(
            f"  tenant {name}: version {tenant['cursor'] + 1} of "
            f"{len(tenant['programs'])}, "
            f"{len(tenant['quarantine'])} quarantined row(s) "
            f"({tenant['quarantine_dropped']} dropped)"
        )
    if not folded["tenants"]:
        print("  no tenants committed")
    if args.repair and recovered.truncated_tail_bytes:
        journal = WriteAheadJournal(args.state_dir / JOURNAL_NAME)
        repaired = journal.repair()
        print(f"repaired: truncated {repaired} torn tail byte(s)")
    return 0


_COMMANDS = {
    "synthesize": _cmd_synthesize,
    "check": _cmd_check,
    "rectify": _cmd_rectify,
    "datasets": _cmd_datasets,
    "to-sql": _cmd_to_sql,
    "experiment": _cmd_experiment,
    "obs": _cmd_obs,
    "chaos": _cmd_chaos,
    "drift": _cmd_drift,
    "serve": _cmd_serve,
    "recover": _cmd_recover,
}


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command, tracing it when ``--trace`` was given."""
    trace_path = getattr(args, "trace", None)
    if args.command == "obs" or trace_path is None:
        return _COMMANDS[args.command](args)
    from . import obs

    try:
        sink = obs.JsonlSink(trace_path)
    except OSError as error:
        print(f"cannot write trace to {trace_path}: {error}", file=sys.stderr)
        return 2
    try:
        with obs.tracing(sink):
            return _COMMANDS[args.command](args)
    finally:
        sink.close()
        print(f"trace written to {trace_path}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
