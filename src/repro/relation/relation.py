"""The :class:`Relation` column store.

A relation is an immutable-by-convention columnar table.  Categorical
columns are stored as ``int32`` code arrays with a :class:`~repro.relation.
encoding.Codec`; numeric columns as ``float64`` arrays.  All mutating
operations return a new :class:`Relation` sharing unchanged column arrays.

This substrate replaces pandas (not installed in the build environment)
for everything GUARDRAIL needs: row access for the DSL interpreter,
vectorized code matrices for structure learning, grouping for Algorithm 1,
and filtering/aggregation for the SQL executor.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator, Mapping, Sequence

import numpy as np

from .encoding import MISSING, Codec
from .schema import Attribute, AttributeType, Schema, SchemaError


class RelationError(ValueError):
    """Raised on malformed relation construction or invalid operations."""


Row = dict[str, Any]


class Relation:
    """A columnar table over numpy arrays.

    Parameters
    ----------
    schema:
        Column names and types.
    columns:
        Mapping from attribute name to a numpy array.  Categorical columns
        must be ``int32`` code arrays; numeric columns ``float64``.
    codecs:
        Mapping from categorical attribute name to its :class:`Codec`.
    """

    # ``__weakref__`` lets the compiled-DSL layer key its condition-mask
    # caches on relations without pinning them in memory.
    __slots__ = ("_schema", "_columns", "_codecs", "_n_rows", "__weakref__")

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        codecs: Mapping[str, Codec],
    ):
        n_rows: int | None = None
        cols: dict[str, np.ndarray] = {}
        cdx: dict[str, Codec] = {}
        for attr in schema:
            if attr.name not in columns:
                raise RelationError(f"missing column data for {attr.name!r}")
            arr = np.asarray(columns[attr.name])
            if arr.ndim != 1:
                raise RelationError(f"column {attr.name!r} must be 1-D")
            if n_rows is None:
                n_rows = arr.shape[0]
            elif arr.shape[0] != n_rows:
                raise RelationError(
                    f"column {attr.name!r} has {arr.shape[0]} rows, "
                    f"expected {n_rows}"
                )
            if attr.is_categorical():
                if attr.name not in codecs:
                    raise RelationError(f"missing codec for {attr.name!r}")
                cols[attr.name] = arr.astype(np.int32, copy=False)
                cdx[attr.name] = codecs[attr.name]
            else:
                cols[attr.name] = arr.astype(np.float64, copy=False)
        self._schema = schema
        self._columns = cols
        self._codecs = cdx
        self._n_rows = 0 if n_rows is None else int(n_rows)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Row],
        schema: Schema | None = None,
        codecs: Mapping[str, Codec] | None = None,
    ) -> "Relation":
        """Build a relation from a sequence of row dicts.

        When ``schema`` is omitted, every attribute found in the first row
        is treated as categorical.  When ``codecs`` is omitted, codecs are
        fit from the data in first-seen order.
        """
        if schema is None:
            if not rows:
                raise RelationError("cannot infer schema from zero rows")
            schema = Schema.categorical(rows[0].keys())
        codecs = dict(codecs or {})
        columns: dict[str, np.ndarray] = {}
        for attr in schema:
            raw = [row.get(attr.name) for row in rows]
            if attr.is_categorical():
                codec = codecs.get(attr.name)
                if codec is None:
                    codec = Codec.fit(raw)
                    codecs[attr.name] = codec
                columns[attr.name] = codec.encode(raw)
            else:
                columns[attr.name] = np.array(
                    [np.nan if v is None else float(v) for v in raw],
                    dtype=np.float64,
                )
        return cls(schema, columns, codecs)

    @classmethod
    def from_columns(
        cls,
        data: Mapping[str, Sequence[Hashable]],
        schema: Schema | None = None,
        codecs: Mapping[str, Codec] | None = None,
    ) -> "Relation":
        """Build a relation from raw (decoded) column sequences."""
        if schema is None:
            schema = Schema.categorical(data.keys())
        codecs = dict(codecs or {})
        columns: dict[str, np.ndarray] = {}
        for attr in schema:
            raw = data[attr.name]
            if attr.is_categorical():
                codec = codecs.get(attr.name)
                if codec is None:
                    codec = Codec.fit(raw)
                    codecs[attr.name] = codec
                columns[attr.name] = codec.encode(list(raw))
            else:
                columns[attr.name] = np.asarray(raw, dtype=np.float64)
        return cls(schema, columns, codecs)

    @classmethod
    def from_codes(
        cls,
        codes: Mapping[str, np.ndarray],
        codecs: Mapping[str, Codec],
        schema: Schema | None = None,
    ) -> "Relation":
        """Build a relation directly from code arrays (all categorical)."""
        if schema is None:
            schema = Schema.categorical(codes.keys())
        return cls(schema, codes, codecs)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names, in schema order."""
        return self._schema.names

    def __len__(self) -> int:
        return self._n_rows

    def codec(self, name: str) -> Codec:
        """Return the codec of a categorical column."""
        try:
            return self._codecs[name]
        except KeyError:
            raise SchemaError(f"no codec for attribute {name!r}") from None

    def codecs(self) -> dict[str, Codec]:
        """Return a shallow copy of the codec mapping."""
        return dict(self._codecs)

    def codes(self, name: str) -> np.ndarray:
        """Return the raw ``int32`` code array of a categorical column."""
        attr = self._schema[name]
        if not attr.is_categorical():
            raise SchemaError(f"attribute {name!r} is not categorical")
        return self._columns[name]

    def numeric(self, name: str) -> np.ndarray:
        """Return a ``float64`` view of a column.

        Numeric columns are returned as-is; categorical columns are
        returned as their float-cast codes (useful for aggregation over
        integer-like categoricals).
        """
        attr = self._schema[name]
        arr = self._columns[name]
        if attr.is_numeric():
            return arr
        return arr.astype(np.float64)

    def column_values(self, name: str) -> list[Hashable]:
        """Return the decoded Python values of a column (NaN → None)."""
        attr = self._schema[name]
        if attr.is_categorical():
            return self._codecs[name].decode(self._columns[name])
        return [
            None if np.isnan(v) else float(v) for v in self._columns[name]
        ]

    def cardinality(self, name: str) -> int:
        """Number of distinct non-missing values observed in a column."""
        attr = self._schema[name]
        if attr.is_categorical():
            arr = self._columns[name]
            return int(np.unique(arr[arr != MISSING]).shape[0])
        arr = self._columns[name]
        return int(np.unique(arr[~np.isnan(arr)]).shape[0])

    def unique(self, name: str) -> list[Hashable]:
        """Distinct decoded values of a column, in code order."""
        attr = self._schema[name]
        if attr.is_categorical():
            arr = self._columns[name]
            codec = self._codecs[name]
            codes = np.unique(arr[arr != MISSING])
            return [codec.decode_one(int(c)) for c in codes]
        arr = self._columns[name]
        return [float(v) for v in np.unique(arr[~np.isnan(arr)])]

    def value(self, row: int, name: str) -> Hashable:
        """Decoded value of a single cell."""
        attr = self._schema[name]
        if attr.is_categorical():
            return self._codecs[name].decode_one(int(self._columns[name][row]))
        v = float(self._columns[name][row])
        return None if np.isnan(v) else v

    def row(self, index: int) -> Row:
        """Decoded values of one row as a dict."""
        if not 0 <= index < self._n_rows:
            raise IndexError(f"row index {index} out of range")
        return {name: self.value(index, name) for name in self.names}

    def iter_rows(self) -> Iterator[Row]:
        """Iterate decoded rows (slow path; prefer vectorized access)."""
        for i in range(self._n_rows):
            yield self.row(i)

    def to_rows(self) -> list[Row]:
        """The relation as a list of decoded row dicts."""
        return list(self.iter_rows())

    def codes_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack categorical code columns into an ``(n_rows, k)`` matrix."""
        names = list(names if names is not None else self._schema.categorical_names())
        if not names:
            return np.empty((self._n_rows, 0), dtype=np.int32)
        return np.column_stack([self.codes(n) for n in names])

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Relation":
        """Restrict to the given attributes, preserving their order."""
        schema = self._schema.project(names)
        columns = {n: self._columns[n] for n in names}
        codecs = {n: self._codecs[n] for n in names if n in self._codecs}
        return Relation(schema, columns, codecs)

    def filter(self, mask: np.ndarray) -> "Relation":
        """Keep rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n_rows,):
            raise RelationError(
                f"mask shape {mask.shape} does not match {self._n_rows} rows"
            )
        columns = {n: arr[mask] for n, arr in self._columns.items()}
        return Relation(self._schema, columns, self._codecs)

    def take(self, indices: np.ndarray | Sequence[int]) -> "Relation":
        """Select rows by index (with repetition allowed)."""
        idx = np.asarray(indices, dtype=np.int64)
        columns = {n: arr[idx] for n, arr in self._columns.items()}
        return Relation(self._schema, columns, self._codecs)

    def head(self, n: int) -> "Relation":
        """The first ``n`` rows as a new relation."""
        return self.take(np.arange(min(n, self._n_rows)))

    def slice_rows(self, start: int, stop: int) -> "Relation":
        """A contiguous row range ``[start, stop)`` as a zero-copy view.

        Unlike :meth:`take`, the column arrays of the result are numpy
        basic slices *sharing memory* with this relation — the substrate
        of :mod:`repro.parallel`'s horizontal sharding, where forked
        workers read the parent's pages copy-on-write.  Treat the result
        as read-only, as the immutable-by-convention contract demands.
        """
        if not 0 <= start <= stop <= self._n_rows:
            raise RelationError(
                f"slice [{start}, {stop}) out of range for "
                f"{self._n_rows} rows"
            )
        columns = {n: arr[start:stop] for n, arr in self._columns.items()}
        return Relation(self._schema, columns, self._codecs)

    def with_column(
        self,
        name: str,
        values: Sequence[Hashable] | np.ndarray,
        type: AttributeType = AttributeType.CATEGORICAL,
        codec: Codec | None = None,
    ) -> "Relation":
        """Return a relation with a column added or replaced."""
        if name in self._schema:
            attrs = [
                Attribute(name, type) if a.name == name else a
                for a in self._schema
            ]
        else:
            attrs = list(self._schema) + [Attribute(name, type)]
        schema = Schema(attrs)
        columns = dict(self._columns)
        codecs = dict(self._codecs)
        if type is AttributeType.CATEGORICAL:
            if codec is None:
                codec = Codec.fit(values)
                columns[name] = codec.encode(list(values))
            else:
                arr = np.asarray(values)
                if arr.dtype.kind in "iu":
                    columns[name] = arr.astype(np.int32)
                else:
                    columns[name] = codec.encode(list(values))
            codecs[name] = codec
        else:
            columns[name] = np.asarray(values, dtype=np.float64)
            codecs.pop(name, None)
        return Relation(schema, columns, codecs)

    def replace_codes(self, name: str, codes: np.ndarray) -> "Relation":
        """Replace a categorical column's code array, keeping its codec."""
        attr = self._schema[name]
        if not attr.is_categorical():
            raise SchemaError(f"attribute {name!r} is not categorical")
        codes = np.asarray(codes, dtype=np.int32)
        if codes.shape != (self._n_rows,):
            raise RelationError("replacement codes have wrong length")
        columns = dict(self._columns)
        columns[name] = codes
        return Relation(self._schema, columns, self._codecs)

    def set_cell(self, row: int, name: str, value: Hashable) -> "Relation":
        """Return a relation with a single cell replaced.

        The codec is extended if the value is unseen.
        """
        attr = self._schema[name]
        columns = dict(self._columns)
        codecs = dict(self._codecs)
        if attr.is_categorical():
            codec = codecs[name].extend([value])
            codecs[name] = codec
            arr = columns[name].copy()
            arr[row] = codec.encode_one(value)
            columns[name] = arr
        else:
            arr = columns[name].copy()
            arr[row] = np.nan if value is None else float(value)
            columns[name] = arr
        return Relation(self._schema, columns, codecs)

    def concat(self, other: "Relation") -> "Relation":
        """Vertically concatenate two relations with identical schemas.

        Codecs must match exactly (use :meth:`align_codecs` first if not).
        """
        if self._schema != other._schema:
            raise RelationError("cannot concat relations with different schemas")
        for name in self._schema.categorical_names():
            if self._codecs[name] != other._codecs[name]:
                raise RelationError(f"codec mismatch on column {name!r}")
        columns = {
            n: np.concatenate([self._columns[n], other._columns[n]])
            for n in self.names
        }
        return Relation(self._schema, columns, self._codecs)

    def align_codecs(self, codecs: Mapping[str, Codec]) -> "Relation":
        """Re-encode categorical columns under the given (super)codecs."""
        columns = dict(self._columns)
        new_codecs = dict(self._codecs)
        for name in self._schema.categorical_names():
            target = codecs.get(name)
            if target is None or target == self._codecs[name]:
                continue
            old = self._codecs[name]
            remap = np.array(
                [target.encode_one(v) for v in old.values], dtype=np.int32
            )
            arr = self._columns[name]
            out = np.full(arr.shape, MISSING, dtype=np.int32)
            valid = arr != MISSING
            out[valid] = remap[arr[valid]]
            columns[name] = out
            new_codecs[name] = target
        return Relation(self._schema, columns, new_codecs)

    # ------------------------------------------------------------------
    # Grouping and splitting
    # ------------------------------------------------------------------

    def group_indices(
        self, names: Sequence[str]
    ) -> dict[tuple[int, ...], np.ndarray]:
        """Group row indices by the code tuples of the given columns."""
        if not names:
            return {(): np.arange(self._n_rows)}
        matrix = self.codes_matrix(names)
        order = np.lexsort(matrix.T[::-1])
        sorted_matrix = matrix[order]
        changes = np.any(np.diff(sorted_matrix, axis=0) != 0, axis=1)
        boundaries = np.concatenate([[0], np.nonzero(changes)[0] + 1, [len(order)]])
        groups: dict[tuple[int, ...], np.ndarray] = {}
        for start, stop in zip(boundaries[:-1], boundaries[1:]):
            key = tuple(int(c) for c in sorted_matrix[start])
            groups[key] = order[start:stop]
        return groups

    def split(
        self, fraction: float, rng: np.random.Generator | None = None
    ) -> tuple["Relation", "Relation"]:
        """Randomly split into (first, second) with ``fraction`` in first."""
        if not 0.0 < fraction < 1.0:
            raise RelationError("fraction must be in (0, 1)")
        rng = rng or np.random.default_rng(0)
        perm = rng.permutation(self._n_rows)
        cut = int(round(self._n_rows * fraction))
        return self.take(perm[:cut]), self.take(perm[cut:])

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------

    def equals(self, other: "Relation") -> bool:
        """Deep equality on schema, codecs, and cell values."""
        if self._schema != other._schema or self._n_rows != other._n_rows:
            return False
        for name in self.names:
            a, b = self._columns[name], other._columns[name]
            if self._schema[name].is_numeric():
                if not np.allclose(a, b, equal_nan=True):
                    return False
            else:
                if self._codecs[name] != other._codecs[name]:
                    return False
                if not np.array_equal(a, b):
                    return False
        return True

    def rows_differ(self, other: "Relation") -> np.ndarray:
        """Boolean mask of rows whose cells differ between two relations.

        Both relations must share schema and codecs (e.g., a clean table
        and its error-injected copy).
        """
        if self._schema != other._schema or self._n_rows != other._n_rows:
            raise RelationError("relations are not comparable")
        diff = np.zeros(self._n_rows, dtype=bool)
        for name in self.names:
            a, b = self._columns[name], other._columns[name]
            if self._schema[name].is_numeric():
                both_nan = np.isnan(a) & np.isnan(b)
                diff |= ~both_nan & (a != b)
            else:
                diff |= a != b
        return diff

    def __repr__(self) -> str:
        return f"Relation({self._n_rows} rows, {len(self._schema)} cols)"

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------

    def to_text(self, max_rows: int = 10) -> str:
        """Render a small ASCII table (for examples and debugging)."""
        names = self.names
        rows = [self.row(i) for i in range(min(max_rows, self._n_rows))]
        cells = [[str(r[n]) for n in names] for r in rows]
        widths = [
            max(len(n), *(len(c[i]) for c in cells)) if cells else len(n)
            for i, n in enumerate(names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
        ]
        lines = [header, sep, *body]
        if self._n_rows > max_rows:
            lines.append(f"... ({self._n_rows - max_rows} more rows)")
        return "\n".join(lines)


def apply_aggregate(
    func: Callable[[np.ndarray], float], values: np.ndarray
) -> float:
    """Apply an aggregate, treating NaN as missing; empty input yields NaN."""
    clean = values[~np.isnan(values)]
    if clean.size == 0:
        return float("nan")
    return float(func(clean))
