"""Columnar relation substrate (schema, encoding, relation, CSV I/O)."""

from .encoding import MISSING, Codec, CodecError
from .io import (
    RelationIOError,
    from_csv_text,
    read_csv,
    to_csv_text,
    write_csv,
)
from .relation import Relation, RelationError, Row, apply_aggregate
from .schema import Attribute, AttributeType, Schema, SchemaError

__all__ = [
    "MISSING",
    "Codec",
    "CodecError",
    "Attribute",
    "AttributeType",
    "Schema",
    "SchemaError",
    "Relation",
    "RelationError",
    "RelationIOError",
    "Row",
    "apply_aggregate",
    "read_csv",
    "write_csv",
    "to_csv_text",
    "from_csv_text",
]
