"""CSV import/export for relations.

The paper's artifact ships datasets as CSV files; this module provides the
equivalent loading path for our synthetic dataset twins and for users who
bring their own data.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, TextIO

from .relation import Relation, RelationError
from .schema import AttributeType, Schema


class RelationIOError(RelationError):
    """A malformed CSV payload (ragged/empty rows, unparsable cells).

    Carries the 1-based data ``row`` number of the offending record
    (``None`` for file-level problems like an empty file), so callers
    can point users at the exact line.
    """

    def __init__(self, message: str, row: int | None = None):
        super().__init__(message)
        self.row = row


def _open_text(path: str | Path | TextIO, mode: str):
    if hasattr(path, "read") or hasattr(path, "write"):
        return path, False
    return open(path, mode, newline="", encoding="utf-8"), True


def read_csv(
    source: str | Path | TextIO,
    schema: Schema | None = None,
    numeric: Iterable[str] = (),
) -> Relation:
    """Read a CSV file with a header row into a :class:`Relation`.

    Columns listed in ``numeric`` are parsed as floats (empty cells become
    missing); everything else is categorical.  A full ``schema`` overrides
    ``numeric``.

    Malformed payloads raise :class:`RelationIOError` naming the
    offending data row: ragged or empty records, and numeric cells that
    do not parse.
    """
    handle, should_close = _open_text(source, "r")
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise RelationIOError("CSV file is empty") from None
        if not header or all(name == "" for name in header):
            raise RelationIOError("CSV header row is empty")
        numeric_set = set(numeric)
        if schema is None:
            schema = Schema(
                _attr(name, name in numeric_set) for name in header
            )
        rows = []
        for number, record in enumerate(reader, start=1):
            if not record:
                raise RelationIOError(
                    f"row {number} is empty (expected "
                    f"{len(header)} fields)",
                    row=number,
                )
            if len(record) != len(header):
                raise RelationIOError(
                    f"row {number} has {len(record)} fields, expected "
                    f"{len(header)}",
                    row=number,
                )
            row = {}
            for name, cell in zip(header, record):
                if schema[name].is_numeric():
                    if cell == "":
                        row[name] = None
                    else:
                        try:
                            row[name] = float(cell)
                        except ValueError:
                            raise RelationIOError(
                                f"row {number}: column {name!r} expects "
                                f"a number, got {cell!r}",
                                row=number,
                            ) from None
                else:
                    row[name] = cell if cell != "" else None
            rows.append(row)
        return Relation.from_rows(rows, schema=schema)
    finally:
        if should_close:
            handle.close()


def write_csv(relation: Relation, target: str | Path | TextIO) -> None:
    """Write a relation to a CSV file with a header row."""
    handle, should_close = _open_text(target, "w")
    try:
        writer = csv.writer(handle)
        writer.writerow(relation.names)
        for row in relation.iter_rows():
            writer.writerow(
                ["" if row[n] is None else row[n] for n in relation.names]
            )
    finally:
        if should_close:
            handle.close()


def to_csv_text(relation: Relation) -> str:
    """Render a relation as CSV text (round-trips via :func:`read_csv`)."""
    buffer = io.StringIO()
    write_csv(relation, buffer)
    return buffer.getvalue()


def from_csv_text(
    text: str, schema: Schema | None = None, numeric: Iterable[str] = ()
) -> Relation:
    """Parse CSV text into a relation."""
    return read_csv(io.StringIO(text), schema=schema, numeric=numeric)


def _attr(name: str, is_numeric: bool):
    from .schema import Attribute

    kind = AttributeType.NUMERIC if is_numeric else AttributeType.CATEGORICAL
    return Attribute(name, kind)
