"""Schema objects for the columnar relation substrate.

A :class:`Schema` is an ordered collection of :class:`Attribute` objects.
Attributes carry a name and a coarse :class:`AttributeType`; GUARDRAIL's
synthesis operates on categorical attributes, while the SQL layer also
needs numeric attributes for aggregation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator


class AttributeType(enum.Enum):
    """Coarse type of a column."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttributeType.{self.name}"


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    type: AttributeType = AttributeType.CATEGORICAL

    def is_categorical(self) -> bool:
        """Is this a categorical attribute?"""
        return self.type is AttributeType.CATEGORICAL

    def is_numeric(self) -> bool:
        """Is this a numeric attribute?"""
        return self.type is AttributeType.NUMERIC


class SchemaError(ValueError):
    """Raised for malformed schemas or unknown attribute lookups."""


class Schema:
    """An ordered, name-unique collection of attributes.

    >>> s = Schema([Attribute("city"), Attribute("age", AttributeType.NUMERIC)])
    >>> s.names
    ('city', 'age')
    >>> s["age"].is_numeric()
    True
    """

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        index: dict[str, int] = {}
        for pos, attr in enumerate(attrs):
            if not isinstance(attr, Attribute):
                raise SchemaError(f"expected Attribute, got {type(attr).__name__}")
            if attr.name in index:
                raise SchemaError(f"duplicate attribute name: {attr.name!r}")
            index[attr.name] = pos
        self._attributes = attrs
        self._index = index

    @classmethod
    def categorical(cls, names: Iterable[str]) -> "Schema":
        """Build an all-categorical schema from attribute names."""
        return cls(Attribute(name) for name in names)

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names, in declaration order."""
        return tuple(attr.name for attr in self._attributes)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attribute objects, in declaration order."""
        return self._attributes

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, key: str | int) -> Attribute:
        if isinstance(key, int):
            return self._attributes[key]
        try:
            return self._attributes[self._index[key]]
        except KeyError:
            raise SchemaError(f"unknown attribute: {key!r}") from None

    def position(self, name: str) -> int:
        """Return the ordinal position of ``name`` in the schema."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute: {name!r}") from None

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a new schema restricted to ``names`` (in the given order)."""
        return Schema(self[name] for name in names)

    def categorical_names(self) -> tuple[str, ...]:
        """Names of the categorical attributes."""
        return tuple(a.name for a in self._attributes if a.is_categorical())

    def numeric_names(self) -> tuple[str, ...]:
        """Names of the numeric attributes."""
        return tuple(a.name for a in self._attributes if a.is_numeric())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{a.name}:{a.type.value[:3]}" for a in self._attributes
        )
        return f"Schema({parts})"
