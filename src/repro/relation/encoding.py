"""Dictionary encoding for categorical columns.

Categorical columns are stored as ``int32`` code arrays plus a
:class:`Codec` mapping codes back to the original Python values.  A code
of :data:`MISSING` (-1) marks a missing/NaN cell.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

MISSING: int = -1
"""Sentinel code for a missing categorical value."""


class CodecError(ValueError):
    """Raised when decoding an unknown code or encoding fails."""


class Codec:
    """A bidirectional mapping between categorical values and int codes.

    Codes are dense, starting at zero, assigned in first-seen order by
    :meth:`fit`.  The codec is immutable once built; :meth:`extend`
    returns a new codec with extra values appended.
    """

    __slots__ = ("_values", "_codes")

    def __init__(self, values: Iterable[Hashable]):
        vals = tuple(values)
        codes: dict[Hashable, int] = {}
        for code, value in enumerate(vals):
            if value in codes:
                raise CodecError(f"duplicate categorical value: {value!r}")
            codes[value] = code
        self._values = vals
        self._codes = codes

    @classmethod
    def fit(cls, data: Iterable[Hashable]) -> "Codec":
        """Build a codec from raw data, in first-seen order, skipping None."""
        seen: dict[Hashable, None] = {}
        for value in data:
            if value is not None and value not in seen:
                seen[value] = None
        return cls(seen.keys())

    @property
    def cardinality(self) -> int:
        """Number of distinct encoded values."""
        return len(self._values)

    @property
    def values(self) -> tuple[Hashable, ...]:
        """The decoded values, in code order."""
        return self._values

    def encode_one(self, value: Hashable) -> int:
        """Encode a single value; ``None`` maps to :data:`MISSING`."""
        if value is None:
            return MISSING
        try:
            return self._codes[value]
        except KeyError:
            raise CodecError(f"value not in codec: {value!r}") from None

    def decode_one(self, code: int) -> Hashable:
        """Decode a single code; :data:`MISSING` maps to ``None``."""
        if code == MISSING:
            return None
        try:
            return self._values[code]
        except IndexError:
            raise CodecError(f"code out of range: {code}") from None

    def encode(self, data: Sequence[Hashable]) -> np.ndarray:
        """Encode a sequence of values into an ``int32`` code array."""
        return np.fromiter(
            (self.encode_one(v) for v in data), dtype=np.int32, count=len(data)
        )

    def decode(self, codes: np.ndarray) -> list[Hashable]:
        """Decode a code array back into Python values."""
        return [self.decode_one(int(c)) for c in codes]

    def __contains__(self, value: object) -> bool:
        return value in self._codes

    def extend(self, values: Iterable[Hashable]) -> "Codec":
        """Return a new codec with unseen ``values`` appended."""
        extra = [v for v in values if v is not None and v not in self._codes]
        if not extra:
            return self
        return Codec(self._values + tuple(extra))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Codec):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:4])
        suffix = ", ..." if len(self._values) > 4 else ""
        return f"Codec([{preview}{suffix}], n={len(self._values)})"
