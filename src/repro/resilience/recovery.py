"""Self-healing recovery: quarantine, re-synthesis, and guard hot-swap.

Drift detection (:mod:`repro.resilience.drift`) tells us the guard no
longer models the stream; this module closes the loop back to a
healthy state:

    detect → quarantine → re-synthesize → validate → swap → (rollback)

* :class:`QuarantineBuffer` — a bounded buffer for suspect rows with a
  stated overflow policy, so a drifting stream cannot exhaust memory;
* :class:`GuardrailVersions` — a versioned holder for the live
  :class:`~repro.synth.Guardrail`: candidate programs are swapped in
  **atomically** (one reference assignment), every prior version is
  kept for :meth:`~GuardrailVersions.rollback`, and a corrupt
  guardrail file offered mid-swap surfaces
  :class:`~repro.synth.GuardrailLoadError` while the previous version
  stays active.  The holder speaks the executor's guardrail protocol
  (``handle``/``check``/``program``), so it plugs straight into
  :class:`repro.sql.QueryExecutor` and swaps take effect mid-session;
* :class:`LiveRowGuard` / :class:`LiveBatchGuard` — streaming-guard
  proxies that follow the holder's current version, so long-lived
  consumers pick up a hot-swap on their next check without rebuilding
  anything themselves;
* :class:`GuardrailSupervisor` — the conductor: feeds the detectors,
  quarantines flagged rows, and on a :class:`DriftAlert` re-synthesizes
  under a :class:`~repro.resilience.Budget` (warm-started from the
  prior run's PC skeleton, fill cache shared across heals), validates
  the candidate on held-out clean rows, and hot-swaps only a candidate
  that beats the incumbent's false-flag rate.

    supervisor = GuardrailSupervisor(guardrail, training=train)
    for verdict in supervisor.stream(rows):
        ...
    supervisor.version        # > 1 iff a heal swapped a new program in
    supervisor.heals          # what happened, and why
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from .. import obs
from ..errors.stream import RowVerdict
from ..relation import Relation
from ..synth import Guardrail, GuardrailLoadError
from .budget import Budget
from .drift import DriftAlert, DriftDetector
from .policy import GuardPolicy

OVERFLOW_POLICIES = ("drop_oldest", "drop_newest")
"""Supported :class:`QuarantineBuffer` overflow policies."""


class QuarantineBuffer:
    """A bounded holding pen for rows the guard flagged during drift.

    Parameters
    ----------
    capacity:
        Maximum rows held; pushes beyond it apply ``overflow``.
    overflow:
        ``"drop_oldest"`` (default: the buffer is a sliding window of
        the most recent suspects) or ``"drop_newest"`` (the buffer
        preserves the first evidence of the incident).

    Pushes are atomic (internal lock), so concurrent producers — the
    serving layer quarantines from many in-flight requests — can never
    overshoot ``capacity`` or drop a row while under it.
    """

    def __init__(self, capacity: int = 1024, overflow: str = "drop_oldest"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; expected one of "
                + ", ".join(OVERFLOW_POLICIES)
            )
        self.capacity = int(capacity)
        self.overflow = overflow
        self.dropped = 0
        self._rows: deque = deque()
        self._lock = threading.Lock()
        self._journal = None

    def attach_journal(self, journal) -> None:
        """Journal pushes/drains through ``journal(kind, **data)``.

        Quarantine traffic is *data-plane*: a journal write failure
        (e.g. disk full) must not lose the row or surface an exception
        to the guard path, so on failure the in-memory push proceeds
        anyway and the incident is counted
        (``durability.quarantine_unjournaled``) instead of raised —
        the opposite of the control-plane contract
        :meth:`GuardrailVersions.attach_journal` enforces.
        """
        self._journal = journal

    def _journal_event(self, kind: str, **data) -> None:
        """Best-effort data-plane journaling (count, never raise)."""
        if self._journal is None:
            return
        try:
            self._journal(kind, **data)
        except Exception:
            if obs.enabled():
                obs.count("durability.quarantine_unjournaled")

    def push(self, row: Mapping[str, Hashable]) -> bool:
        """Quarantine one row; returns False when a row was dropped."""
        self._journal_event("quarantine_push", row=dict(row))
        with self._lock:
            rows = self._rows
            if len(rows) < self.capacity:
                rows.append(row)
                return True
            self.dropped += 1
            if self.overflow == "drop_oldest":
                rows.popleft()
                rows.append(row)
            # drop_newest: the incoming row is the casualty.
        if obs.enabled():
            obs.count("recovery.quarantine.dropped")
        return False

    def drain(self) -> list:
        """Remove and return every quarantined row."""
        self._journal_event("quarantine_drain")
        with self._lock:
            rows = list(self._rows)
            self._rows.clear()
        return rows

    def peek(self) -> list:
        """The quarantined rows, oldest first (non-destructive)."""
        with self._lock:
            return list(self._rows)

    def restore(self, rows: Iterable, dropped: int = 0) -> None:
        """Replace the buffer's contents wholesale (crash recovery).

        Used when rebuilding a tenant from the durability journal:
        the rows were already journaled once, so this bypasses
        :meth:`push` (and its journal hook) to avoid re-committing
        them.  Overflow still applies.
        """
        with self._lock:
            self._rows.clear()
            for row in rows:
                if len(self._rows) < self.capacity:
                    self._rows.append(row)
                elif self.overflow == "drop_oldest":
                    self._rows.popleft()
                    self._rows.append(row)
            self.dropped = int(dropped)

    def __len__(self) -> int:
        return len(self._rows)


class GuardrailVersions:
    """Versioned guardrail holder with atomic hot-swap and rollback.

    The *live* version is a single ``(number, guardrail)`` tuple
    reference, so a swap is atomic with respect to concurrent readers
    (:class:`LiveRowGuard`, the SQL executor's guard stage, the
    serving layer's batchers): every check runs against exactly one
    version, before or after the swap, never a mixture — and
    :meth:`snapshot` hands readers a *consistent* pair, never a new
    number with an old guardrail.  All prior versions stay resident
    for :meth:`rollback`; swap/rollback themselves serialize on an
    internal lock.
    """

    def __init__(self, guardrail: Guardrail):
        if not isinstance(guardrail, Guardrail):
            raise GuardrailLoadError(
                f"expected a Guardrail, got {type(guardrail).__name__}"
            )
        self._versions: list[Guardrail] = [guardrail]
        self._cursor = 0
        self._live: tuple[int, Guardrail] = (1, guardrail)
        self._lock = threading.RLock()
        self._journal = None

    def attach_journal(self, journal) -> None:
        """Journal swaps/rollbacks through ``journal(kind, **data)``.

        Version changes are *control-plane*: the event is journaled
        **before** the new version activates (the write-ahead
        contract), and a journal failure — e.g. the state disk is full
        — aborts the swap/rollback with the journal's typed error
        while the previous version **stays active**.  A version the
        caller saw activate is therefore always recoverable.
        """
        self._journal = journal

    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """The live version number (1-based; bumps on swap/rollback)."""
        return self._live[0]

    @property
    def n_versions(self) -> int:
        """How many versions have ever been installed."""
        return len(self._versions)

    @property
    def current(self) -> Guardrail:
        """The live guardrail."""
        return self._live[1]

    def snapshot(self) -> tuple[int, Guardrail]:
        """The live ``(version, guardrail)`` pair, read atomically.

        Concurrent readers that need the number and the guardrail to
        agree (e.g. a serving batcher stamping verdicts with the
        version they ran under) must use this instead of reading
        :attr:`version` and :attr:`current` separately across a
        potential swap.
        """
        return self._live

    @property
    def previous(self) -> Guardrail | None:
        """The version a :meth:`rollback` would restore (None at v1)."""
        with self._lock:
            if self._cursor == 0:
                return None
            return self._versions[self._cursor - 1]

    def history(self) -> tuple[Guardrail, ...]:
        """Every installed version, oldest first (the rollback chain).

        Read atomically; with :attr:`cursor` this is the full durable
        description of the holder — the durability layer snapshots it
        and rebuilds an identical holder on recovery.
        """
        with self._lock:
            return tuple(self._versions)

    @property
    def cursor(self) -> int:
        """0-based index of the live version within :meth:`history`."""
        return self._cursor

    def swap(self, guardrail: Guardrail) -> int:
        """Install ``guardrail`` as the live version; returns its number.

        Raises :class:`~repro.synth.GuardrailLoadError` (and leaves the
        current version active) when handed anything that is not a
        :class:`~repro.synth.Guardrail`.
        """
        if not isinstance(guardrail, Guardrail):
            raise GuardrailLoadError(
                f"hot-swap rejected: expected a Guardrail, got "
                f"{type(guardrail).__name__}; previous version stays live"
            )
        with self._lock:
            if self._journal is not None:
                from ..dsl import format_program

                self._journal(  # may raise: swap aborted, state intact
                    "swap",
                    version=len(self._versions) + 1,
                    program=format_program(guardrail.program),
                )
            self._versions.append(guardrail)
            self._cursor = len(self._versions) - 1
            self._live = (self._cursor + 1, guardrail)
        if obs.enabled():
            obs.count("recovery.swap")
            obs.record("recovery.swap", version=self.version)
        return self.version

    def swap_from_file(self, path, config=None) -> int:
        """Hot-swap from a saved guardrail file.

        A missing/corrupt/truncated payload raises
        :class:`~repro.synth.GuardrailLoadError` — typed, with the path
        and cause — and the previous version **stays active**: the load
        is fully validated before the swap happens.
        """
        candidate = Guardrail.load(path, config)  # may raise, pre-swap
        return self.swap(candidate)

    def rollback(self) -> int:
        """Re-activate the previous version; returns the live number.

        Raises ``RuntimeError`` when already at the first version.
        """
        with self._lock:
            if self._cursor == 0:
                raise RuntimeError(
                    "cannot roll back past the first version"
                )
            if self._journal is not None:
                # May raise: rollback aborted, current version intact.
                self._journal("rollback", to_version=self._cursor)
            self._cursor -= 1
            self._live = (self._cursor + 1, self._versions[self._cursor])
        if obs.enabled():
            obs.count("recovery.rollback")
        return self.version

    # ------------------------------------------------------------------
    # The executor-facing guardrail protocol (delegation to current).
    # ------------------------------------------------------------------

    @property
    def program(self):
        """The live version's program."""
        return self.current.program

    def handle(self, relation: Relation, strategy: str = "rectify"):
        """Apply an error-handling strategy via the live version."""
        return self.current.handle(relation, strategy)

    def check(self, relation: Relation):
        """Row-violation mask under the live version."""
        return self.current.check(relation)

    def row_guard(self) -> "LiveRowGuard":
        """A streaming row guard that follows hot-swaps."""
        return LiveRowGuard(self)

    def batch_guard(self, batch_size: int = 256) -> "LiveBatchGuard":
        """A streaming batch guard that follows hot-swaps."""
        return LiveBatchGuard(self, batch_size=batch_size)


class _LiveGuardBase:
    """Shared version-following logic for the live guard proxies.

    The rebuilt inner guard lives in a single immutable
    ``(version, guard)`` snapshot, refreshed under a lock, so a check
    racing a :meth:`GuardrailVersions.swap` can never interleave the
    guard with the wrong version label (the torn state where verdicts
    keep coming from the old program while :attr:`version` reports the
    new one) and can never rebuild twice for one version (which
    silently dropped the first rebuild's ``stats`` counters).
    """

    def __init__(self, versions: GuardrailVersions):
        self._versions = versions
        self._built: tuple[int, object] | None = None
        self._drift = None
        self._lock = threading.Lock()
        #: Version the most recent operation ran under.  Single-consumer
        #: bookkeeping (the serving batcher stamps responses with it);
        #: concurrent readers should use :meth:`current_snapshot`.
        self.last_version = 0

    def _snapshot(self) -> tuple[int, object]:
        """The live ``(version, inner guard)`` pair (rebuilt on swap)."""
        built = self._built
        if built is not None and built[0] == self._versions.version:
            self.last_version = built[0]
            return built
        with self._lock:
            built = self._built
            version, guardrail = self._versions.snapshot()
            if built is None or built[0] != version:
                guard = self._build(guardrail)
                if self._drift is not None:
                    guard.attach_drift(self._drift)
                built = (version, guard)
                self._built = built
            self.last_version = built[0]
            return built

    def _current(self):
        """The inner guard for the live version (rebuilt on swap)."""
        return self._snapshot()[1]

    def current_snapshot(self) -> tuple[int, object]:
        """A consistent ``(version, guard)`` pair for version-stamped
        work: the guard *is* the one built for that version, even when
        a hot-swap lands concurrently (the pair is simply one swap
        behind until the next call)."""
        return self._snapshot()

    def attach_drift(self, detector) -> None:
        """Attach a drift detector that survives hot-swap rebuilds."""
        with self._lock:
            self._drift = detector
            if self._built is not None:
                self._built[1].attach_drift(detector)

    @property
    def drift(self):
        """The attached drift detector, if any."""
        return self._drift

    @property
    def version(self) -> int:
        """The guardrail version the next check will run against."""
        return self._versions.version

    @property
    def stats(self):
        """The inner guard's counters (reset when a swap rebuilds it)."""
        return self._current().stats

    def __len__(self) -> int:
        return len(self._current())


class LiveRowGuard(_LiveGuardBase):
    """A :class:`~repro.errors.RowGuard` proxy bound to the live version.

    The first check after a hot-swap transparently rebuilds the
    compiled per-statement indexes for the new program; verdict
    semantics are exactly :class:`~repro.errors.RowGuard`'s.
    """

    def _build(self, guardrail: Guardrail):
        return guardrail.row_guard()

    def check(self, row: Mapping[str, Hashable]) -> RowVerdict:
        """Vet one row against the live version."""
        return self._current().check(row)

    def rectify(self, row: Mapping[str, Hashable]) -> dict:
        """Repair one row against the live version."""
        return self._current().rectify(row)

    def process(self, row: Mapping[str, Hashable], strategy: str = "rectify"):
        """One-shot vetting under a named strategy (live version)."""
        return self._current().process(row, strategy)


class LiveBatchGuard(_LiveGuardBase):
    """A :class:`~repro.errors.BatchGuard` proxy bound to the live version."""

    def __init__(self, versions: GuardrailVersions, batch_size: int = 256):
        super().__init__(versions)
        self.batch_size = int(batch_size)

    def _build(self, guardrail: Guardrail):
        return guardrail.batch_guard(batch_size=self.batch_size)

    def check(self, row: Mapping[str, Hashable]) -> RowVerdict:
        """Vet one row (a batch of one) against the live version."""
        return self._current().check(row)

    def check_batch(self, rows: Sequence) -> list[RowVerdict]:
        """Vet a batch against the live version."""
        return self._current().check_batch(rows)

    def stream(self, rows: Iterable) -> Iterator[RowVerdict]:
        """Vet a row stream with micro-batching.

        Version changes are picked up at batch boundaries: each flush
        runs wholly under one version (verdicts are never mixed within
        a batch), matching :class:`LiveRowGuard` row for row on the
        same stream whenever swaps land between batches.
        """
        buffer: list = []
        for row in rows:
            buffer.append(row)
            if len(buffer) >= self.batch_size:
                yield from self.check_batch(buffer)
                buffer = []
        if buffer:
            yield from self.check_batch(buffer)


@dataclass
class SupervisorConfig:
    """Knobs of the self-healing loop (defaults favour safety).

    Attributes
    ----------
    history_rows:
        Recent raw rows kept as re-synthesis material (a sliding
        window over the *current* distribution).
    quarantine_capacity / quarantine_overflow:
        Bounds of the suspect-row buffer (see
        :class:`QuarantineBuffer`).
    min_heal_rows:
        Don't attempt a heal on less history than this.
    heal_budget_seconds / heal_budget_steps:
        The :class:`~repro.resilience.Budget` each re-synthesis runs
        under (None disables that limit).
    holdout_every:
        Every k-th history row is held out of re-synthesis and used to
        validate the candidate (k >= 2).
    validation_margin:
        A candidate is acceptable when its held-out false-flag rate is
        at most ``max(validation_margin, incumbent_rate)``.
    cooldown_rows:
        Rows to wait after a heal attempt before reacting to alerts
        again (lets the rebased detectors refill their windows).
    checkpoint_dir:
        When set, each heal's synthesis journals its state here
        (crash-safe resume via ``synthesize(resume_from=...)``).
    """

    history_rows: int = 2048
    quarantine_capacity: int = 1024
    quarantine_overflow: str = "drop_oldest"
    min_heal_rows: int = 128
    heal_budget_seconds: float | None = 10.0
    heal_budget_steps: int | None = 200_000
    holdout_every: int = 5
    validation_margin: float = 0.05
    cooldown_rows: int = 512
    checkpoint_dir: object | None = None

    def __post_init__(self) -> None:
        if self.holdout_every < 2:
            raise ValueError("holdout_every must be >= 2")
        if self.history_rows < 1:
            raise ValueError("history_rows must be >= 1")


@dataclass(frozen=True)
class HealOutcome:
    """What one heal attempt did, and why."""

    alert: DriftAlert | None
    accepted: bool
    reason: str
    old_version: int
    new_version: int
    candidate_statements: int = 0
    candidate_false_flag_rate: float = float("nan")
    incumbent_false_flag_rate: float = float("nan")
    synthesis_partial: bool = False
    elapsed_seconds: float = 0.0


class GuardrailSupervisor:
    """Reacts to drift alerts by re-synthesizing and hot-swapping.

    Parameters
    ----------
    guardrail:
        The fitted incumbent (or an existing
        :class:`GuardrailVersions` holder to supervise in place).
    training:
        Training relation for drift calibration; required unless a
        pre-built ``drift`` detector is supplied.
    drift:
        Optional pre-configured :class:`DriftDetector`.
    config:
        The :class:`SupervisorConfig` heal-loop knobs.
    policy:
        :class:`~repro.resilience.GuardPolicy` note for reporting; the
        supervisor itself never raises out of :meth:`check` for data
        problems (violations are verdicts, not failures), so the
        policy only governs how callers wrap the live guards.
    synth_config:
        :class:`~repro.synth.GuardrailConfig` for re-synthesis
        (default: the incumbent's own config).
    """

    def __init__(
        self,
        guardrail: "Guardrail | GuardrailVersions",
        training: Relation | None = None,
        drift: DriftDetector | None = None,
        config: SupervisorConfig | None = None,
        policy: "GuardPolicy | str" = GuardPolicy.WARN,
        synth_config=None,
    ):
        self.versions = (
            guardrail
            if isinstance(guardrail, GuardrailVersions)
            else GuardrailVersions(guardrail)
        )
        self.config = config or SupervisorConfig()
        self.policy = GuardPolicy.parse(policy)
        if drift is None:
            if training is None:
                raise ValueError(
                    "GuardrailSupervisor needs `training` (to calibrate "
                    "drift detection) or a pre-built `drift` detector"
                )
            drift = DriftDetector.from_training(
                training, program=self.versions.program
            )
        self.drift = drift
        self.synth_config = synth_config or self.versions.current.config
        self.quarantine = QuarantineBuffer(
            self.config.quarantine_capacity,
            self.config.quarantine_overflow,
        )
        self.heals: list[HealOutcome] = []
        self.alerts: list[DriftAlert] = []
        self._row_guard = self.versions.row_guard()
        self._history: deque = deque(maxlen=self.config.history_rows)
        self._cooldown = 0
        self._fill_cache = None  # built lazily; shared across heals

    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """The live guardrail version."""
        return self.versions.version

    def row_guard(self) -> LiveRowGuard:
        """A hot-swap-following row guard over the supervised versions."""
        return self.versions.row_guard()

    def batch_guard(self, batch_size: int = 256) -> LiveBatchGuard:
        """A hot-swap-following batch guard over the supervised versions."""
        return self.versions.batch_guard(batch_size=batch_size)

    def check(self, row: Mapping[str, Hashable]) -> RowVerdict:
        """Vet one row, feed the detectors, and heal when drift fires.

        This is the supervised deployment loop in one call: the verdict
        comes from the live guard (hot-swaps apply immediately), the
        row lands in the history window (and, if flagged, the
        quarantine buffer), and any pending :class:`DriftAlert`
        triggers a heal once the cooldown allows.
        """
        verdict = self._row_guard.check(row)
        self._ingest(row, verdict.ok)
        return verdict

    def stream(
        self, rows: Iterable[Mapping[str, Hashable]]
    ) -> Iterator[RowVerdict]:
        """Vet a row stream under supervision (see :meth:`check`)."""
        for row in rows:
            yield self.check(row)

    def observe(self, row: Mapping[str, Hashable], ok: bool) -> None:
        """Feed an externally-vetted row (e.g. from the SQL guard stage)
        into drift tracking without re-checking it."""
        self._ingest(row, ok)

    def _ingest(self, row: Mapping[str, Hashable], ok: bool) -> None:
        self._history.append(row)
        self.drift.observe(row, ok)
        if not ok:
            self.quarantine.push(row)
        if self._cooldown > 0:
            self._cooldown -= 1
            self.drift.poll()  # discard alerts raised mid-cooldown
            return
        alerts = self.drift.poll()
        if alerts:
            self.alerts.extend(alerts)
            self.heal(alerts[0])

    # ------------------------------------------------------------------

    def heal(self, alert: DriftAlert | None = None) -> HealOutcome:
        """One full recovery attempt: re-synthesize, validate, swap.

        Never raises for a failed heal — a candidate that cannot be
        synthesized or fails validation is *rejected* (the incumbent
        stays live) and the outcome records why.  The cooldown starts
        regardless, so a persistent alert cannot melt the CPU with
        back-to-back synthesis runs.
        """
        started = time.perf_counter()
        self._cooldown = self.config.cooldown_rows
        old_version = self.versions.version
        with obs.span("recovery.heal", version=old_version):
            outcome = self._heal(alert, old_version, started)
        self.heals.append(outcome)
        if obs.enabled():
            obs.count(
                "recovery.heal.accepted"
                if outcome.accepted
                else "recovery.heal.rejected"
            )
        return outcome

    def _heal(
        self, alert: DriftAlert | None, old_version: int, started: float
    ) -> HealOutcome:
        from ..synth import synthesize

        def rejected(reason: str, **kwargs) -> HealOutcome:
            return HealOutcome(
                alert=alert,
                accepted=False,
                reason=reason,
                old_version=old_version,
                new_version=old_version,
                elapsed_seconds=time.perf_counter() - started,
                **kwargs,
            )

        rows = list(self._history)
        if len(rows) < self.config.min_heal_rows:
            return rejected(
                f"insufficient history ({len(rows)} rows < "
                f"{self.config.min_heal_rows})"
            )
        every = self.config.holdout_every
        holdout = rows[::every]
        train = [row for i, row in enumerate(rows) if i % every]
        try:
            train_relation = Relation.from_rows(train)
            holdout_relation = Relation.from_rows(holdout)
        except Exception as error:  # malformed rows in the window
            return rejected(
                f"history rows do not form a relation: "
                f"{type(error).__name__}: {error}"
            )

        budget = Budget(
            seconds=self.config.heal_budget_seconds,
            max_steps=self.config.heal_budget_steps,
        )
        checkpoint_path = None
        if self.config.checkpoint_dir is not None:
            from pathlib import Path

            directory = Path(self.config.checkpoint_dir)
            directory.mkdir(parents=True, exist_ok=True)
            checkpoint_path = directory / f"heal-v{old_version}.json"
        warm = self._warm_start()
        if self._fill_cache is None:
            from ..sketch import FillCache

            self._fill_cache = FillCache()
        try:
            result = synthesize(
                train_relation,
                self.synth_config,
                budget=budget,
                warm_start=warm,
                fill_cache=self._fill_cache,
                checkpoint_path=checkpoint_path,
            )
        except Exception as error:
            return rejected(
                f"re-synthesis failed: {type(error).__name__}: {error}"
            )
        if not len(result.program):
            return rejected(
                "candidate program is empty (nothing to enforce)",
                synthesis_partial=result.partial,
            )
        candidate = Guardrail.from_result(result, self.synth_config)
        try:
            candidate_rate = float(
                candidate.check(holdout_relation).mean()
            )
            incumbent_rate = float(
                self.versions.check(holdout_relation).mean()
            )
        except Exception as error:
            return rejected(
                f"validation failed: {type(error).__name__}: {error}",
                candidate_statements=len(result.program),
                synthesis_partial=result.partial,
            )
        bar = max(self.config.validation_margin, incumbent_rate)
        if candidate_rate > bar:
            return rejected(
                f"candidate false-flag rate {candidate_rate:.3f} exceeds "
                f"acceptance bar {bar:.3f}",
                candidate_statements=len(result.program),
                candidate_false_flag_rate=candidate_rate,
                incumbent_false_flag_rate=incumbent_rate,
                synthesis_partial=result.partial,
            )
        new_version = self.versions.swap(candidate)
        # The healed window is the new "normal": rebase the detectors
        # on it so residual evidence against the old program cannot
        # immediately re-alert.
        try:
            window_relation = Relation.from_rows(rows)
        except Exception:
            window_relation = train_relation
        self.drift.rebase(
            window_relation, baseline_violation_rate=candidate_rate
        )
        return HealOutcome(
            alert=alert,
            accepted=True,
            reason=(
                f"swapped v{old_version} -> v{new_version}: candidate "
                f"false-flag {candidate_rate:.3f} <= bar {bar:.3f}"
            ),
            old_version=old_version,
            new_version=new_version,
            candidate_statements=len(result.program),
            candidate_false_flag_rate=candidate_rate,
            incumbent_false_flag_rate=incumbent_rate,
            synthesis_partial=result.partial,
            elapsed_seconds=time.perf_counter() - started,
        )

    def rollback(self) -> int:
        """Back out the most recent swap (see
        :meth:`GuardrailVersions.rollback`)."""
        return self.versions.rollback()

    def _warm_start(self):
        """The incumbent's PC result, when it has one (synthesized
        guardrails do; hand-written programs don't)."""
        result = self.versions.current._result
        if result is not None and result.pc_result is not None:
            return result.pc_result
        return None
