"""Durable guard-runtime state: write-ahead journal + crash recovery.

Everything the guard runtime accumulates in deployment — tenant
registrations, :class:`~repro.resilience.GuardrailVersions`
swap/rollback history, :class:`~repro.resilience.QuarantineBuffer`
contents, drift baselines — lives in process memory, so without this
module a crash silently forgets every committed hot-swap and every
quarantined row the self-healing loop feeds on.  This module is the
durability substrate:

* :class:`WriteAheadJournal` — an append-only journal of CRC32-framed
  JSON records, one per committed event, fsynced per append.  Replay
  tolerates a torn or corrupt tail (a crash mid-write) by truncating
  to the last valid record — the *committed prefix* — and never
  surfaces a partially applied record;
* :class:`SnapshotStore` — periodic full-state snapshots written
  atomically (tmp + fsync + rename), multiple generations kept; a
  corrupt generation is rejected by its embedded checksum and recovery
  falls back to the previous one;
* :class:`DurableStateStore` — the two glued together: ``append`` is
  the WAL (journaled *before* the in-memory mutation activates), a
  snapshot every ``snapshot_every`` records bounds replay time, and
  the journal is compacted to the records the oldest kept snapshot
  does not cover;
* :func:`recover` — load the newest valid snapshot, replay the
  journal tail, report exactly what happened
  (:class:`RecoveredState`: replayed records, truncated tail bytes,
  rejected snapshot generations) and emit the same numbers as obs
  counters;
* :class:`DiskIO` — the pluggable IO shim **every** durability write
  flows through, so the chaos harness can tear a write mid-record
  (:class:`TornWriteIO`) or fill the disk (:class:`FullDiskIO`)
  without touching the kernel;
* :func:`atomic_write_text` — the one shared atomic-write helper
  (tmp + fsync + ``os.replace``) every persistence path in the repo
  routes through (``Guardrail.save``, synthesis checkpoints), so no
  code path can leave a torn file.

    store = DurableStateStore(state_dir)
    store.append("swap", tenant="acme", version=2, program=text)
    ...                                   # process dies at any point
    recovered = recover(state_dir)
    recovered.state, recovered.events     # the committed prefix

All failures are typed :class:`DurabilityError`\\ s naming the path and
the cause — never a bare ``OSError``/``JSONDecodeError``.
"""

from __future__ import annotations

import json
import os
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from .. import obs

JOURNAL_FORMAT_VERSION = 1
"""Journal/snapshot schema version; bumped on incompatible changes."""

JOURNAL_MAGIC = b"G1"
"""Leading bytes of every journal frame (rejects foreign files fast)."""

JOURNAL_NAME = "journal.log"
"""The journal file's name inside a state directory."""

SNAPSHOT_GLOB = "snapshot-*.json"
"""Pattern snapshot generations match inside a state directory."""


class DurabilityError(ValueError):
    """A durable-state file is missing, corrupt, or unwritable.

    Carries the offending :attr:`path` so operators know *which* file
    to inspect; the ``__cause__`` chain preserves the underlying
    OS/JSON error.  Subclasses ``ValueError`` so pre-typed callers
    keep working.
    """

    def __init__(self, message: str, path: "Path | str | None" = None):
        super().__init__(message)
        self.path = Path(path) if path is not None else None


# ---------------------------------------------------------------------------
# The IO shim: every durability byte flows through one of these
# ---------------------------------------------------------------------------


class DiskIO:
    """Real disk IO for durability writes (the default shim).

    All journal appends and snapshot writes go through one shim
    instance, so chaos fault classes (torn writes, disk full) inject
    below the durability logic — exactly where a real kernel would
    fail — by substituting a subclass via the ``io=`` parameter or
    :func:`io_shim`.
    """

    def append_bytes(self, path: Path, data: bytes) -> None:
        """Append ``data`` to ``path``, flushed and fsynced."""
        with open(path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def write_atomic(self, path: Path, data: bytes) -> None:
        """Write ``data`` to ``path`` atomically (tmp+fsync+rename).

        A crash at any point leaves either the previous file or the
        complete new one, never a torn mixture; the directory entry is
        fsynced so the rename itself is durable.
        """
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.fsync_dir(path.parent)

    def fsync_dir(self, directory: Path) -> None:
        """Fsync a directory entry (no-op where unsupported)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - e.g. network mounts
            pass
        finally:
            os.close(fd)

    def truncate(self, path: Path, length: int) -> None:
        """Truncate ``path`` to ``length`` bytes (tail repair)."""
        with open(path, "r+b") as handle:
            handle.truncate(length)
            handle.flush()
            os.fsync(handle.fileno())

    def remove(self, path: Path) -> None:
        """Delete a retired snapshot generation (missing is fine)."""
        try:
            os.remove(path)
        except FileNotFoundError:
            pass


class TornWriteIO(DiskIO):
    """Chaos shim: the Nth append writes only a byte prefix, then fails.

    Models a crash (or kernel error) mid-``write``: the journal gains
    a torn tail exactly as a powered-off machine would leave one.
    """

    def __init__(self, fail_on_append: int = 1, keep_bytes: int = 7):
        self.fail_on_append = int(fail_on_append)
        self.keep_bytes = int(keep_bytes)
        self.appends = 0

    def append_bytes(self, path: Path, data: bytes) -> None:
        """Append normally until the fated call, then tear the write."""
        self.appends += 1
        if self.appends == self.fail_on_append:
            super().append_bytes(path, data[: self.keep_bytes])
            raise OSError(5, "chaos: torn write (simulated power loss)")
        super().append_bytes(path, data)


class FullDiskIO(DiskIO):
    """Chaos shim: the device runs out of space after a byte budget.

    Every write path (append and atomic) starts failing with
    ``ENOSPC`` once ``capacity_bytes`` have been written — the classic
    slow-burn production failure the durability layer must surface as
    a typed error without corrupting prior state.
    """

    def __init__(self, capacity_bytes: int):
        self.capacity_bytes = int(capacity_bytes)
        self.written = 0

    def _claim(self, n: int) -> None:
        if self.written + n > self.capacity_bytes:
            raise OSError(28, "chaos: no space left on device")
        self.written += n

    def append_bytes(self, path: Path, data: bytes) -> None:
        """Append within the byte budget; ENOSPC beyond it."""
        self._claim(len(data))
        super().append_bytes(path, data)

    def write_atomic(self, path: Path, data: bytes) -> None:
        """Atomic write within the byte budget; ENOSPC beyond it."""
        self._claim(len(data))
        super().write_atomic(path, data)


DEFAULT_IO = DiskIO()
"""The shim used when no ``io=`` is supplied (module-wide default)."""

_ACTIVE_IO: list[DiskIO] = [DEFAULT_IO]


def active_io() -> DiskIO:
    """The shim durability writes currently resolve to (see
    :func:`io_shim`)."""
    return _ACTIVE_IO[-1]


@contextmanager
def io_shim(shim: DiskIO):
    """Temporarily route default-IO durability writes through ``shim``.

    The chaos harness and the typed-error tests use this to inject
    disk faults into code paths whose signatures do not thread an
    ``io=`` (e.g. ``Guardrail.save``)::

        with io_shim(TornWriteIO(fail_on_append=1)):
            guardrail.save(path)   # raises; the old file is intact
    """
    _ACTIVE_IO.append(shim)
    try:
        yield shim
    finally:
        _ACTIVE_IO.pop()


def atomic_write_text(
    path, text: str, io: "DiskIO | None" = None
) -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename).

    The one shared atomic-write helper every persistence path in the
    repo routes through; a failure at any point raises a typed
    :class:`DurabilityError` and leaves the previous file (if any)
    untouched.
    """
    path = Path(path)
    shim = io if io is not None else active_io()
    try:
        shim.write_atomic(path, text.encode("utf-8"))
    except OSError as error:
        raise DurabilityError(
            f"cannot write {path} atomically: {error}", path=path
        ) from error


# ---------------------------------------------------------------------------
# The write-ahead journal
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalRecord:
    """One committed event replayed from (or written to) the journal."""

    seq: int
    """Monotonic sequence number (1-based, store-wide)."""
    kind: str
    """Event vocabulary name (``swap``, ``quarantine_push``, ...)."""
    data: dict
    """The event payload (JSON-round-trippable)."""


def _frame(record: JournalRecord) -> bytes:
    """Encode one record as a CRC32-framed journal line."""
    body = json.dumps(
        {"seq": record.seq, "kind": record.kind, "data": record.data},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return JOURNAL_MAGIC + b" %08x %d " % (crc, len(body)) + body + b"\n"


def _parse_frame(line: bytes) -> "JournalRecord | None":
    """Decode one complete journal line; None when the frame is invalid.

    A frame is valid iff the magic matches, the declared length matches
    the body, the CRC32 matches the body bytes, and the body is a JSON
    object with ``seq``/``kind``/``data`` fields.
    """
    if not line.startswith(JOURNAL_MAGIC + b" "):
        return None
    try:
        _, crc_hex, length = line.split(b" ", 3)[:3]
        header_len = len(JOURNAL_MAGIC) + 1 + len(crc_hex) + 1 + len(length) + 1
        body = line[header_len:]
        declared = int(length)
        crc = int(crc_hex, 16)
    except (ValueError, IndexError):
        return None
    if len(body) != declared or zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    try:
        return JournalRecord(
            seq=int(payload["seq"]),
            kind=str(payload["kind"]),
            data=dict(payload["data"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


@dataclass
class JournalReplay:
    """What :meth:`WriteAheadJournal.replay` found on disk."""

    records: list[JournalRecord] = field(default_factory=list)
    """Every valid record of the committed prefix, in journal order."""
    valid_bytes: int = 0
    """Offset of the end of the committed prefix."""
    truncated_tail_bytes: int = 0
    """Bytes past the committed prefix (a torn/corrupt tail); 0 means
    the journal was clean."""


class WriteAheadJournal:
    """An append-only journal of CRC32-framed JSON event records.

    ``append`` is the commit point: the frame is written, flushed, and
    fsynced through the IO shim before it returns, so a record that
    ``append`` acknowledged survives any later crash.  ``replay``
    walks frames from the start and stops at the first invalid one —
    a torn tail (crash mid-write) or trailing corruption yields the
    committed prefix plus a count of discarded bytes, never an
    exception and never a partial record.
    """

    def __init__(self, path, io: "DiskIO | None" = None):
        self.path = Path(path)
        self._io = io

    @property
    def io(self) -> DiskIO:
        """The shim this journal's writes flow through."""
        return self._io if self._io is not None else active_io()

    def append(self, record: JournalRecord) -> None:
        """Durably append one record (the WAL commit point).

        Raises a typed :class:`DurabilityError` when the device
        refuses the write (disk full, IO error); the on-disk journal
        may gain a torn tail in that case, which the next
        :meth:`replay` discards.
        """
        try:
            self.io.append_bytes(self.path, _frame(record))
        except OSError as error:
            if obs.enabled():
                obs.count("durability.append_errors")
            raise DurabilityError(
                f"cannot journal record seq={record.seq} "
                f"({record.kind}) to {self.path}: {error}",
                path=self.path,
            ) from error

    def replay(self) -> JournalReplay:
        """Read the committed prefix (valid leading frames) from disk.

        A missing journal is an empty one.  Unreadable bytes raise a
        typed :class:`DurabilityError`; torn/corrupt *content* never
        does — it marks the end of the committed prefix.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return JournalReplay()
        except OSError as error:
            raise DurabilityError(
                f"cannot read journal {self.path}: {error}",
                path=self.path,
            ) from error
        replay = JournalReplay()
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break  # incomplete final line: torn tail
            record = _parse_frame(raw[offset:newline])
            if record is None:
                break  # corrupt frame: everything after is untrusted
            replay.records.append(record)
            offset = newline + 1
        replay.valid_bytes = offset
        replay.truncated_tail_bytes = len(raw) - offset
        return replay

    def repair(self, replay: "JournalReplay | None" = None) -> int:
        """Truncate the on-disk journal to its committed prefix.

        Returns the number of tail bytes discarded (0 for a clean
        journal).  Called on recovery before new appends, so fresh
        records can never interleave with a torn tail.
        """
        if replay is None:
            replay = self.replay()
        if replay.truncated_tail_bytes and self.path.exists():
            try:
                self.io.truncate(self.path, replay.valid_bytes)
            except OSError as error:
                raise DurabilityError(
                    f"cannot repair journal tail of {self.path}: "
                    f"{error}",
                    path=self.path,
                ) from error
        return replay.truncated_tail_bytes

    def rewrite(self, records: list[JournalRecord]) -> None:
        """Atomically replace the journal's contents (compaction)."""
        data = b"".join(_frame(record) for record in records)
        try:
            self.io.write_atomic(self.path, data)
        except OSError as error:
            raise DurabilityError(
                f"cannot compact journal {self.path}: {error}",
                path=self.path,
            ) from error


# ---------------------------------------------------------------------------
# Snapshot generations
# ---------------------------------------------------------------------------


class SnapshotStore:
    """Atomic full-state snapshots, several generations deep.

    Each generation is one JSON file (``snapshot-<gen>.json``) whose
    payload embeds a CRC32 of the state it carries; a generation whose
    checksum, structure, or format version fails validation is
    *rejected* at load time and the previous generation is used
    instead — a half-written or bit-rotted snapshot can cost recency,
    never correctness.
    """

    def __init__(self, directory, keep: int = 2, io: "DiskIO | None" = None):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.keep = int(keep)
        self._io = io

    @property
    def io(self) -> DiskIO:
        """The shim this store's writes flow through."""
        return self._io if self._io is not None else active_io()

    def _path(self, generation: int) -> Path:
        return self.directory / f"snapshot-{generation:08d}.json"

    def generations(self) -> list[int]:
        """Snapshot generation numbers present on disk, ascending."""
        numbers = []
        for path in self.directory.glob(SNAPSHOT_GLOB):
            stem = path.stem  # snapshot-NNNNNNNN
            try:
                numbers.append(int(stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(numbers)

    def write(self, state: dict, seq: int) -> int:
        """Durably write the next generation; returns its number.

        The payload (state + the journal sequence it covers) is
        written atomically; only after it is durable are generations
        beyond :attr:`keep` retired.
        """
        existing = self.generations()
        generation = (existing[-1] + 1) if existing else 1
        body = json.dumps(state, sort_keys=True, separators=(",", ":"))
        payload = json.dumps(
            {
                "format_version": JOURNAL_FORMAT_VERSION,
                "generation": generation,
                "seq": int(seq),
                "crc": zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF,
                "state": state,
            },
            sort_keys=True,
        )
        path = self._path(generation)
        try:
            self.io.write_atomic(path, payload.encode("utf-8"))
        except OSError as error:
            raise DurabilityError(
                f"cannot write snapshot generation {generation} to "
                f"{path}: {error}",
                path=path,
            ) from error
        for old in existing[: max(0, len(existing) + 1 - self.keep)]:
            self.io.remove(self._path(old))
        return generation

    def load_one(self, generation: int) -> tuple[dict, int]:
        """Load and validate one generation; returns ``(state, seq)``.

        Raises :class:`DurabilityError` for any validation failure —
        unreadable file, non-JSON payload, wrong format version,
        checksum mismatch.
        """
        path = self._path(generation)
        try:
            text = path.read_bytes().decode("utf-8")
        except OSError as error:
            raise DurabilityError(
                f"cannot read snapshot {path}: {error}", path=path
            ) from error
        except UnicodeDecodeError as error:
            raise DurabilityError(
                f"snapshot {path} is not valid UTF-8 (bit rot or torn "
                f"write rejected): {error}",
                path=path,
            ) from error
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise DurabilityError(
                f"snapshot {path} is not valid JSON: {error}", path=path
            ) from error
        if not isinstance(payload, dict):
            raise DurabilityError(
                f"snapshot {path} does not hold a JSON object", path=path
            )
        version = payload.get("format_version")
        if version != JOURNAL_FORMAT_VERSION:
            raise DurabilityError(
                f"snapshot {path} has format version {version!r}; this "
                f"build reads version {JOURNAL_FORMAT_VERSION}",
                path=path,
            )
        state = payload.get("state")
        if not isinstance(state, dict):
            raise DurabilityError(
                f"snapshot {path} is missing its state object", path=path
            )
        body = json.dumps(state, sort_keys=True, separators=(",", ":"))
        if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != payload.get(
            "crc"
        ):
            raise DurabilityError(
                f"snapshot {path} fails its checksum (torn or corrupt "
                f"write rejected)",
                path=path,
            )
        return state, int(payload.get("seq", 0))

    def load_latest(self) -> tuple["dict | None", int, int, int]:
        """The newest *valid* generation, falling back across corrupt ones.

        Returns ``(state, seq, generation, rejected)`` where
        ``rejected`` counts newer generations that failed validation
        (each one fell back to its predecessor).  With no valid
        generation at all, ``state`` is None and replay starts from
        the journal's beginning.
        """
        rejected = 0
        for generation in reversed(self.generations()):
            try:
                state, seq = self.load_one(generation)
            except DurabilityError:
                rejected += 1
                continue
            return state, seq, generation, rejected
        return None, 0, 0, rejected


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveredState:
    """Everything :func:`recover` reconstructed, plus how it went."""

    state: "dict | None"
    """The newest valid snapshot's state (None: no usable snapshot)."""
    events: list[JournalRecord]
    """Journal records past the snapshot, in commit order."""
    last_seq: int
    """Highest committed sequence number (snapshot or journal)."""
    snapshot_generation: int = 0
    """Generation the state came from (0: recovered from journal only)."""
    snapshot_generations: int = 0
    """Snapshot generations present on disk at recovery time."""
    rejected_snapshots: int = 0
    """Newer generations rejected as corrupt before one validated."""
    replayed_records: int = 0
    """Journal records replayed on top of the snapshot."""
    truncated_tail_bytes: int = 0
    """Torn/corrupt journal tail bytes discarded (0: clean shutdown)."""

    @property
    def clean(self) -> bool:
        """True when recovery found no corruption anywhere."""
        return self.truncated_tail_bytes == 0 and self.rejected_snapshots == 0


def recover(state_dir, io: "DiskIO | None" = None) -> RecoveredState:
    """Reconstruct committed guard-runtime state from ``state_dir``.

    Loads the newest snapshot generation that validates (falling back
    past corrupt ones), replays the journal tail — records with
    ``seq`` beyond the snapshot — and tolerates a torn/corrupt journal
    tail by stopping at the last valid record.  The result is exactly
    the committed prefix: every event some ``append`` call
    acknowledged before the crash, and nothing else.

    Read-only: the on-disk files are not repaired (pass the result to
    :class:`DurableStateStore` — or just construct one — to reopen
    for writing, which truncates the torn tail first).  Raises
    :class:`DurabilityError` only for *environmental* failures (the
    directory or a file cannot be read); data corruption is handled,
    counted, and reported, never raised.
    """
    state_dir = Path(state_dir)
    if not state_dir.is_dir():
        raise DurabilityError(
            f"no such state directory: {state_dir}", path=state_dir
        )
    snapshots = SnapshotStore(state_dir, io=io)
    state, snapshot_seq, generation, rejected = snapshots.load_latest()
    journal = WriteAheadJournal(state_dir / JOURNAL_NAME, io=io)
    replay = journal.replay()
    events = [r for r in replay.records if r.seq > snapshot_seq]
    last_seq = events[-1].seq if events else snapshot_seq
    recovered = RecoveredState(
        state=state,
        events=events,
        last_seq=last_seq,
        snapshot_generation=generation,
        snapshot_generations=len(snapshots.generations()),
        rejected_snapshots=rejected,
        replayed_records=len(events),
        truncated_tail_bytes=replay.truncated_tail_bytes,
    )
    if obs.enabled():
        obs.count("recovery.replayed_records", recovered.replayed_records)
        obs.count(
            "recovery.truncated_tail_bytes",
            recovered.truncated_tail_bytes,
        )
        obs.count(
            "snapshot.generations", recovered.snapshot_generations
        )
        if recovered.rejected_snapshots:
            obs.count(
                "recovery.rejected_snapshots",
                recovered.rejected_snapshots,
            )
        obs.record(
            "durability.recover",
            replayed=recovered.replayed_records,
            truncated_tail_bytes=recovered.truncated_tail_bytes,
            generation=recovered.snapshot_generation,
        )
    return recovered


# ---------------------------------------------------------------------------
# The combined store (what the guard runtime holds)
# ---------------------------------------------------------------------------


class DurableStateStore:
    """Crash-safe state store: WAL appends + periodic snapshots.

    Opening the store *is* recovery: the constructor loads the last
    valid snapshot, replays the journal tail, truncates any torn tail
    (so new appends never interleave with garbage), and exposes the
    result as :attr:`recovered`.  From then on

    * :meth:`append` durably journals one committed event **before**
      the caller activates the matching in-memory mutation (the WAL
      contract — a crash between the two replays the event on
      recovery, which is idempotent for every event kind);
    * every ``snapshot_every`` appends, ``state_provider`` (when set)
      is asked for the full state and a snapshot generation is
      written, after which the journal is compacted down to the
      records the *oldest kept* generation does not cover — so a
      corrupt newest snapshot can always fall back without losing
      events.

    Parameters
    ----------
    state_dir:
        Directory holding ``journal.log`` + ``snapshot-*.json``
        (created if missing).
    snapshot_every:
        Appends between automatic snapshots (None disables; explicit
        :meth:`snapshot` calls still work).
    keep_snapshots:
        Snapshot generations retained (>= 2 keeps a fallback).
    io:
        The :class:`DiskIO` shim (default: the active module shim).
    state_provider:
        Zero-argument callable returning the full JSON-serializable
        state for automatic snapshots.
    """

    def __init__(
        self,
        state_dir,
        snapshot_every: "int | None" = 256,
        keep_snapshots: int = 2,
        io: "DiskIO | None" = None,
        state_provider=None,
    ):
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1 (or None)")
        self.state_dir = Path(state_dir)
        try:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise DurabilityError(
                f"cannot create state directory {self.state_dir}: "
                f"{error}",
                path=self.state_dir,
            ) from error
        self.snapshot_every = snapshot_every
        self.state_provider = state_provider
        self._io = io
        self.journal = WriteAheadJournal(
            self.state_dir / JOURNAL_NAME, io=io
        )
        self.snapshots = SnapshotStore(
            self.state_dir, keep=keep_snapshots, io=io
        )
        self.recovered = recover(self.state_dir, io=io)
        self.journal.repair()
        self._seq = self.recovered.last_seq
        self._since_snapshot = self.recovered.replayed_records
        self.append_errors = 0

    @property
    def last_seq(self) -> int:
        """Highest committed sequence number."""
        return self._seq

    def append(self, kind: str, **data) -> JournalRecord:
        """Durably commit one event; returns its journal record.

        The record is on disk (written + fsynced) when this returns —
        the caller may then activate the in-memory mutation.  Raises
        :class:`DurabilityError` when the device refuses the write;
        the in-memory state must then stay un-mutated (the event was
        never committed).
        """
        record = JournalRecord(seq=self._seq + 1, kind=kind, data=data)
        try:
            self.journal.append(record)
        except DurabilityError:
            self.append_errors += 1
            raise
        self._seq = record.seq
        self._since_snapshot += 1
        if (
            self.snapshot_every is not None
            and self.state_provider is not None
            and self._since_snapshot >= self.snapshot_every
        ):
            # The caller has NOT yet applied this record's in-memory
            # mutation (journal-before-activation), so the state the
            # provider reports covers only the records before it —
            # claim coverage through seq-1 and let the journal keep
            # this record for replay.
            self.snapshot(self.state_provider(), seq=record.seq - 1)
        return record

    def snapshot(self, state: dict, seq: "int | None" = None) -> int:
        """Write a snapshot generation covering everything committed.

        ``seq`` is the highest journal sequence ``state`` reflects
        (default: everything committed so far — correct when the
        caller's in-memory state is fully caught up, as at a clean
        shutdown).  After the generation is durable the journal is
        compacted: only records newer than the *oldest kept*
        generation's coverage survive, so recovery can fall back one
        generation and still replay forward to the present.  Returns
        the generation number.
        """
        generation = self.snapshots.write(
            state, self._seq if seq is None else seq
        )
        self._since_snapshot = 0
        oldest = self.snapshots.generations()[0]
        try:
            _, covered_seq = self.snapshots.load_one(oldest)
        except DurabilityError:
            covered_seq = 0  # keep everything: the fallback is suspect
        survivors = [
            record
            for record in self.journal.replay().records
            if record.seq > covered_seq
        ]
        self.journal.rewrite(survivors)
        if obs.enabled():
            obs.count("durability.snapshots")
        return generation


# ---------------------------------------------------------------------------
# The guard-runtime event vocabulary and its fold
# ---------------------------------------------------------------------------

RUNTIME_EVENT_KINDS = (
    "tenant_register",
    "tenant_remove",
    "swap",
    "rollback",
    "quarantine_push",
    "quarantine_drain",
    "drift_rebase",
    "brownout",
)
"""Every event kind the guard runtime journals (the vocabulary
:func:`fold_runtime_state` understands)."""


def _blank_tenant(config: "dict | None" = None) -> dict:
    return {
        "config": dict(config or {}),
        "programs": [],
        "cursor": -1,
        "quarantine": [],
        "quarantine_dropped": 0,
        "baseline_violation_rate": None,
    }


def fold_runtime_state(
    state: "dict | None", events: list[JournalRecord]
) -> dict:
    """Apply journaled events on top of a snapshot state (pure).

    The reducer behind :func:`recover` consumers: ``state`` is a
    snapshot's ``{"tenants": {...}}`` payload (or None for empty) and
    ``events`` the replayed journal tail; the result is the same shape
    with every event applied, exactly as the live runtime would have.
    Unknown event kinds raise :class:`DurabilityError` (a newer
    writer's journal must not be half-understood); events for unknown
    tenants are tolerated (a ``tenant_remove`` already erased them).

    Beyond the per-tenant state, the fold carries the server-wide
    brownout controller: ``brownout`` events (journaled tier
    transitions, which deliberately carry no timestamps) replay into
    ``folded["brownout"]`` — the tier and the full transition history,
    bit-identical to the live controller's record.
    """
    folded = {
        "tenants": {},
        "brownout": {"tier": 0, "transitions": []},
    }
    if state:
        brownout = state.get("brownout")
        if brownout:
            folded["brownout"] = {
                "tier": int(brownout.get("tier", 0)),
                "transitions": [
                    dict(t) for t in brownout.get("transitions", [])
                ],
            }
        for name, tenant in state.get("tenants", {}).items():
            merged = _blank_tenant(tenant.get("config"))
            merged.update(
                {
                    key: tenant[key]
                    for key in merged
                    if key in tenant and key != "config"
                }
            )
            folded["tenants"][name] = merged
    tenants = folded["tenants"]
    for event in events:
        kind, data = event.kind, event.data
        name = data.get("tenant")
        if kind == "tenant_register":
            tenant = _blank_tenant(data.get("config"))
            programs = data.get("programs")
            if programs is None:  # single-program shorthand
                programs = [data.get("program", "")]
            tenant["programs"] = list(programs)
            tenant["cursor"] = int(
                data.get("cursor", len(programs) - 1)
            )
            tenants[name] = tenant
            continue
        if kind == "tenant_remove":
            tenants.pop(name, None)
            continue
        if kind == "brownout":
            record = {
                "from": int(data.get("from", 0)),
                "tier": int(data.get("tier", 0)),
                "reason": data.get("reason", "?"),
            }
            folded["brownout"]["tier"] = record["tier"]
            folded["brownout"]["transitions"].append(record)
            continue
        tenant = tenants.get(name)
        if tenant is None:
            continue
        if kind == "swap":
            tenant["programs"].append(data.get("program", ""))
            tenant["cursor"] = len(tenant["programs"]) - 1
        elif kind == "rollback":
            if tenant["cursor"] > 0:
                tenant["cursor"] -= 1
        elif kind == "quarantine_push":
            config = tenant.get("config", {})
            capacity = int(config.get("quarantine_capacity", 1024))
            overflow = config.get("quarantine_overflow", "drop_oldest")
            quarantine = tenant["quarantine"]
            if len(quarantine) < capacity:
                quarantine.append(data.get("row"))
            else:
                tenant["quarantine_dropped"] += 1
                if overflow == "drop_oldest":
                    quarantine.pop(0)
                    quarantine.append(data.get("row"))
        elif kind == "quarantine_drain":
            tenant["quarantine"] = []
        elif kind == "drift_rebase":
            tenant["baseline_violation_rate"] = data.get(
                "baseline_violation_rate"
            )
        else:
            raise DurabilityError(
                f"journal record seq={event.seq} has unknown kind "
                f"{kind!r}; refusing to half-apply a newer writer's "
                f"journal"
            )
    return folded


def recover_runtime_state(state_dir, io: "DiskIO | None" = None):
    """One-call recovery to folded runtime state.

    Returns ``(folded_state, recovered)`` where ``folded_state`` is
    the :func:`fold_runtime_state` result — the committed tenants,
    each with its version history, cursor, quarantine contents, and
    drift baseline — and ``recovered`` the raw
    :class:`RecoveredState` diagnostics.
    """
    recovered = recover(state_dir, io=io)
    return fold_runtime_state(recovered.state, recovered.events), recovered
