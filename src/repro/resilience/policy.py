"""Guard degradation policies, retries, and the circuit breaker.

The runtime guard (Fig. 1) sits on the query path: if it throws, the
whole query dies with it.  Following the block / warn / pass-through
enforcement modes of the semantic-integrity-constraints line of work,
a :class:`GuardPolicy` states what a *failing* guard (or model stage)
does to the rows it can no longer vet:

* ``strict``       — fail closed: re-raise, the query errors out;
* ``warn``         — fail open, loudly: rows flow unvetted, the
  degradation is recorded (stats, obs counters, execution metrics);
* ``pass_through`` — fail open, quietly: rows flow unvetted;
* ``reject``       — fail closed without raising: the affected rows
  are withheld (verdict *not ok* / rows dropped from the query).

:class:`CircuitBreaker` adds retry-with-backoff and a trip wire: after
``failure_threshold`` consecutive failures the breaker opens and calls
are refused outright (:class:`CircuitOpenError`) until
``recovery_seconds`` pass, at which point a half-open probe is allowed
through.  :class:`ResilientRowGuard` / :class:`ResilientBatchGuard`
compose both around the streaming guards of :mod:`repro.errors.stream`.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from .. import obs
from ..errors.stream import RowVerdict


class GuardPolicy(enum.Enum):
    """What a failing guard/model stage does to the rows it covers."""

    STRICT = "strict"
    WARN = "warn"
    PASS_THROUGH = "pass_through"
    REJECT = "reject"

    @classmethod
    def parse(cls, value: "GuardPolicy | str") -> "GuardPolicy":
        """Coerce a string (or member) into a :class:`GuardPolicy`."""
        if isinstance(value, GuardPolicy):
            return value
        try:
            return cls(value.lower().replace("-", "_"))
        except ValueError:
            options = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown guard policy {value!r}; expected one of {options}"
            ) from None

    @property
    def fails_open(self) -> bool:
        """Do rows flow through when the guard is down?"""
        return self in (GuardPolicy.WARN, GuardPolicy.PASS_THROUGH)


class GuardUnavailableError(RuntimeError):
    """Raised under the ``strict`` policy when the guard cannot run."""


class CircuitOpenError(GuardUnavailableError):
    """Raised when a call is refused because the breaker is open."""


class BreakerState(enum.Enum):
    """Circuit-breaker lifecycle states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Consecutive-failure trip wire with retry/backoff per call.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (counting a call as one failure after its
        retries are spent) that open the circuit.
    recovery_seconds:
        How long an open circuit refuses calls before letting one
        half-open probe through.
    max_retries:
        In-call retries before the call counts as failed.
    backoff_seconds:
        Sleep before the first retry; multiplied by
        ``backoff_multiplier`` for each further retry.  0 disables
        sleeping (the right setting for tests and for in-process
        guards, where retrying later does not help a deterministic
        fault).

    The breaker is thread-safe: state transitions happen under an
    internal lock, and the OPEN → HALF_OPEN transition admits exactly
    **one** probe.  Before the serving layer this was a latent
    stampede — every caller racing the recovery window saw the flip
    and probed the failing dependency at once, which is precisely the
    hammering the breaker exists to prevent.
    """

    failure_threshold: int = 3
    recovery_seconds: float = 0.1
    max_retries: int = 1
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    total_failures: int = 0
    total_retries: int = 0
    times_opened: int = 0
    _opened_at: float = field(default=0.0, repr=False)
    _probe_at: float = field(default=0.0, repr=False)
    _probe_in_flight: bool = field(default=False, repr=False)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def allow(self) -> bool:
        """May a call proceed right now?  (Open → half-open on timeout.)

        In the HALF_OPEN window exactly one caller holds the probe
        token; everyone else is refused until the probe reports back
        via :meth:`record_success` / :meth:`record_failure`.  A probe
        whose caller never reports (crashed mid-call) is considered
        lost after ``recovery_seconds`` and a new probe is admitted.
        """
        if self.state is BreakerState.CLOSED:
            return True
        with self._lock:
            if self.state is BreakerState.CLOSED:
                return True
            now = time.monotonic()
            if self.state is BreakerState.OPEN:
                if now - self._opened_at < self.recovery_seconds:
                    return False
                self.state = BreakerState.HALF_OPEN
                self._probe_in_flight = True
                self._probe_at = now
                return True
            # HALF_OPEN: the single probe is either in flight (refuse)
            # or lost (its caller went quiet past the recovery window).
            if (
                self._probe_in_flight
                and now - self._probe_at < self.recovery_seconds
            ):
                return False
            self._probe_in_flight = True
            self._probe_at = now
            return True

    def record_success(self) -> None:
        """A call completed: close the circuit and reset the streak."""
        with self._lock:
            self.consecutive_failures = 0
            self.state = BreakerState.CLOSED
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """A call failed (post-retries): maybe trip the circuit."""
        with self._lock:
            self.consecutive_failures += 1
            self.total_failures += 1
            self._probe_in_flight = False
            if (
                self.state is BreakerState.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold
            ):
                self.state = BreakerState.OPEN
                self._opened_at = time.monotonic()
                self.times_opened += 1
                if obs.enabled():
                    obs.count("resilience.breaker.opened")

    def call(
        self,
        fn: Callable,
        *args,
        expected: tuple[type[BaseException], ...] = (),
        **kwargs,
    ):
        """Run ``fn`` under the breaker with retry/backoff.

        Exception types in ``expected`` are *intended* outcomes (e.g.
        ``DataIntegrityError`` under the ``raise`` strategy): they
        propagate immediately and count as neither failure nor success.
        """
        if not self.allow():
            raise CircuitOpenError(
                f"circuit open after {self.consecutive_failures} "
                f"consecutive failures"
            )
        delay = self.backoff_seconds
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            try:
                result = fn(*args, **kwargs)
            except expected:
                raise
            except Exception:
                if attempt + 1 >= attempts:
                    self.record_failure()
                    raise
                self.total_retries += 1
                if obs.enabled():
                    obs.count("resilience.retry")
                if delay > 0:
                    time.sleep(delay)
                    delay *= self.backoff_multiplier
            else:
                self.record_success()
                return result
        raise AssertionError("unreachable")  # pragma: no cover


@dataclass
class DegradationStats:
    """What a resilient guard had to paper over."""

    failures: int = 0
    degraded_verdicts: int = 0
    slow_calls: int = 0
    last_error: str | None = None

    @property
    def degraded(self) -> bool:
        """Did any call degrade (fail or run past the watchdog)?"""
        return self.failures > 0 or self.slow_calls > 0


class _ResilientGuardBase:
    """Shared failure handling for the resilient guard wrappers."""

    def __init__(
        self,
        policy: "GuardPolicy | str" = GuardPolicy.STRICT,
        breaker: CircuitBreaker | None = None,
        watchdog_seconds: float | None = None,
    ):
        self.policy = GuardPolicy.parse(policy)
        self.breaker = breaker or CircuitBreaker()
        self.watchdog_seconds = watchdog_seconds
        self.stats = DegradationStats()

    def attach_drift(self, detector) -> None:
        """Attach a drift detector to the wrapped guard.

        Delegates to the inner guard's ``attach_drift`` (see
        :meth:`repro.errors.RowGuard.attach_drift`), so detection rides
        the same verdicts the caller sees — including a degraded
        verdict's row never reaching the detector, since a row the
        guard could not vet says nothing about drift.
        """
        self.guard.attach_drift(detector)

    @property
    def drift(self):
        """The inner guard's attached drift detector, if any."""
        return getattr(self.guard, "drift", None)

    def _degraded_verdict(self, error: BaseException) -> RowVerdict:
        """The policy-dictated verdict for a row the guard never saw."""
        self.stats.failures += 1
        self.stats.last_error = f"{type(error).__name__}: {error}"
        if obs.enabled():
            obs.count("resilience.guard.failure")
            obs.record(
                "resilience.degraded",
                policy=self.policy.value,
                error=type(error).__name__,
            )
        if self.policy is GuardPolicy.STRICT:
            if isinstance(error, GuardUnavailableError):
                raise error
            raise GuardUnavailableError(
                f"guard failed under strict policy: {error}"
            ) from error
        self.stats.degraded_verdicts += 1
        if self.policy is GuardPolicy.REJECT:
            return RowVerdict(False, ())
        # warn / pass_through: fail open.
        return RowVerdict(True, ())

    def _watch(self, elapsed: float) -> None:
        """Post-hoc watchdog: count a slow call as a breaker failure.

        An in-process guard cannot be preempted, so the watchdog trips
        *after* the slow call returns — the verdict is still used, but
        repeated slowness opens the breaker and subsequent calls
        degrade per policy instead of stalling the pipeline.
        """
        if (
            self.watchdog_seconds is not None
            and elapsed > self.watchdog_seconds
        ):
            self.stats.slow_calls += 1
            self.breaker.record_failure()
            if obs.enabled():
                obs.count("resilience.guard.slow")
                obs.observe("resilience.guard.slow_seconds", elapsed)


class ResilientRowGuard(_ResilientGuardBase):
    """A :class:`~repro.errors.RowGuard` that degrades instead of dying.

    Wraps ``check`` / ``rectify`` / ``process`` with the breaker and
    converts any guard failure (adversarial input, injected fault, open
    circuit) into the policy's verdict.

        guard = ResilientRowGuard(gr.row_guard(), policy="warn")
        guard.check(["not", "a", "mapping"]).ok      # True (fail open)
        guard.stats.failures                          # 1
    """

    def __init__(
        self,
        guard,
        policy: "GuardPolicy | str" = GuardPolicy.STRICT,
        breaker: CircuitBreaker | None = None,
        watchdog_seconds: float | None = None,
    ):
        super().__init__(policy, breaker, watchdog_seconds)
        self.guard = guard

    def check(self, row) -> RowVerdict:
        """Vet one row; failures yield the policy verdict."""
        breaker = self.breaker
        # Hot path: no watchdog, no retries, circuit closed — the
        # wrapper must cost next to nothing per row, so skip the timer
        # and the breaker's dispatch machinery.
        if (
            self.watchdog_seconds is None
            and breaker.max_retries == 0
            and breaker.state is BreakerState.CLOSED
        ):
            try:
                verdict = self.guard.check(row)
            except Exception as error:
                breaker.record_failure()
                return self._degraded_verdict(error)
            if breaker.consecutive_failures:
                breaker.record_success()
            return verdict
        try:
            start = time.perf_counter()
            verdict = breaker.call(self.guard.check, row)
            self._watch(time.perf_counter() - start)
            return verdict
        except Exception as error:
            return self._degraded_verdict(error)

    def rectify(self, row) -> dict[str, Hashable] | None:
        """Repair one row; on failure the policy decides the fallback.

        Fail-open policies return the row unrepaired (best effort);
        ``reject`` returns ``None`` (the row is withheld); ``strict``
        raises :class:`GuardUnavailableError`.
        """
        try:
            start = time.perf_counter()
            repaired = self.breaker.call(self.guard.rectify, row)
            self._watch(time.perf_counter() - start)
            return repaired
        except Exception as error:
            self._degraded_verdict(error)  # raises under strict
            if self.policy is GuardPolicy.REJECT:
                return None
            try:
                return dict(row)
            except Exception:
                return None

    def stream(self, rows: Iterable) -> Iterator[RowVerdict]:
        """Vet a row stream; every row gets a verdict, come what may."""
        for row in rows:
            yield self.check(row)

    def __len__(self) -> int:
        return len(self.guard)


class ResilientBatchGuard(_ResilientGuardBase):
    """A :class:`~repro.errors.BatchGuard` wrapper with per-row salvage.

    A batch kernel failure (one malformed row poisons the whole encode)
    is retried row by row, so healthy rows in a bad batch still get real
    verdicts and only the offending rows degrade per policy.  Verdicts
    therefore match :class:`ResilientRowGuard` under the same policy.
    """

    def __init__(
        self,
        guard,
        policy: "GuardPolicy | str" = GuardPolicy.STRICT,
        breaker: CircuitBreaker | None = None,
        watchdog_seconds: float | None = None,
    ):
        super().__init__(policy, breaker, watchdog_seconds)
        self.guard = guard

    def check(self, row) -> RowVerdict:
        """Vet one row (a batch of one)."""
        return self.check_batch([row])[0]

    def check_batch(self, rows: Sequence) -> list[RowVerdict]:
        """Vet a batch; kernel failures fall back to per-row vetting."""
        rows = list(rows)
        try:
            start = time.perf_counter()
            verdicts = self.breaker.call(self.guard.check_batch, rows)
            self._watch(time.perf_counter() - start)
            return verdicts
        except Exception:
            if obs.enabled():
                obs.count("resilience.guard.batch_salvage")
            return [self._check_one(row) for row in rows]

    def _check_one(self, row) -> RowVerdict:
        try:
            return self.breaker.call(self.guard.check_batch, [row])[0]
        except Exception as error:
            return self._degraded_verdict(error)

    def stream(self, rows: Iterable) -> Iterator[RowVerdict]:
        """Vet a row stream with micro-batching and per-row salvage."""
        buffer: list = []
        size = getattr(self.guard, "batch_size", 256)
        for row in rows:
            buffer.append(row)
            if len(buffer) >= size:
                yield from self.check_batch(buffer)
                buffer = []
        if buffer:
            yield from self.check_batch(buffer)

    def __len__(self) -> int:
        return len(self.guard)


def resilient_call(
    fn: Callable,
    *args,
    policy: "GuardPolicy | str" = GuardPolicy.STRICT,
    breaker: CircuitBreaker | None = None,
    fallback=None,
    expected: tuple[type[BaseException], ...] = (),
    **kwargs,
):
    """One-shot policy wrapper for an arbitrary pipeline stage.

    Runs ``fn`` under ``breaker`` (a throwaway one when omitted); on
    failure, ``strict`` re-raises as :class:`GuardUnavailableError`
    while every other policy returns ``fallback``.  Exceptions listed
    in ``expected`` always propagate unchanged.
    """
    policy = GuardPolicy.parse(policy)
    breaker = breaker or CircuitBreaker(max_retries=0)
    try:
        return breaker.call(fn, *args, expected=expected, **kwargs)
    except expected:
        raise
    except Exception as error:
        if policy is GuardPolicy.STRICT:
            raise GuardUnavailableError(
                f"stage failed under strict policy: {error}"
            ) from error
        if obs.enabled():
            obs.count("resilience.stage.failure")
        return fallback
