"""Chaos-injection harness: prove degradation policies hold under fire.

TorchQL-style integrity checking has to survive messy real inputs; this
module makes that an executable claim.  Each *fault class* injects one
production failure mode into a guarded pipeline — a guard that raises,
a guard that stalls, a model that throws, values the codecs never saw,
malformed and ragged rows, mid-stream schema drift, a forked worker
SIGKILLed or wedged mid-shard, a result that cannot cross the pickle
boundary, a torn journal tail, a bit-rotted snapshot, a full state
disk, a process SIGKILLed mid-commit — and the harness
verifies the outcome is exactly what the configured
:class:`~repro.resilience.GuardPolicy` dictates: ``strict`` fails the
query with a typed error, ``warn``/``pass_through`` complete with rows
flowing unvetted (and the degradation recorded), ``reject`` completes
with the affected rows withheld.  No fault class may ever surface as an
unhandled exception.

    outcomes = run_chaos_suite(policy="warn")
    assert all(o.conformant for o in outcomes)
    print(render_chaos_report(outcomes))

The harness is self-contained (synthetic data, a hand-built program, a
stub model), so it runs in milliseconds and can gate CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..dsl import Branch, Condition, Program, Statement
from ..relation import Relation
from .policy import (
    CircuitBreaker,
    GuardPolicy,
    GuardUnavailableError,
    ResilientBatchGuard,
    ResilientRowGuard,
)

FAULT_CLASSES = (
    "raising_guard",
    "slow_guard",
    "model_exception",
    "codec_unseen",
    "malformed_rows",
    "schema_drift",
    "marginal_shift",
    "unseen_burst",
    "worker_killed",
    "worker_hang",
    "poisoned_result",
    "torn_journal_tail",
    "corrupt_snapshot",
    "disk_full",
    "crash_restart",
)
"""Every fault class the harness can inject, in suite order."""

WORKER_FAULT_CLASSES = (
    "worker_killed",
    "worker_hang",
    "poisoned_result",
)
"""The process-level subset: faults injected below Python, into the
forked workers of :class:`repro.parallel.WorkerPool` (see
``repro chaos --worker-faults``)."""

DURABILITY_FAULT_CLASSES = (
    "torn_journal_tail",
    "corrupt_snapshot",
    "disk_full",
    "crash_restart",
)
"""The disk-fault subset: faults injected through the durability
layer's pluggable IO shim (torn writes, bit rot, ENOSPC) or below it
(SIGKILL mid-commit), judged on committed-prefix recovery (see
``repro chaos --durability``)."""


@dataclass
class ChaosOutcome:
    """Verdict on one injected fault: did the policy hold?"""

    fault: str
    policy: GuardPolicy
    conformant: bool
    detail: str


# ---------------------------------------------------------------------------
# Fixture: a tiny guarded ML-SQL pipeline
# ---------------------------------------------------------------------------

_CITY_OF = {
    "94704": "Berkeley",
    "94720": "Berkeley",
    "10001": "NewYork",
    "73301": "Austin",
}
_STATE_OF = {"Berkeley": "CA", "NewYork": "NY", "Austin": "TX"}


def chaos_relation(copies: int = 8) -> Relation:
    """A clean PostalCode → City → State relation for the harness."""
    rows = []
    for postal, city in _CITY_OF.items():
        for _ in range(copies):
            rows.append(
                {
                    "PostalCode": postal,
                    "City": city,
                    "State": _STATE_OF[city],
                }
            )
    return Relation.from_rows(rows)


def chaos_program() -> Program:
    """The ground-truth constraints of :func:`chaos_relation`."""

    def statement(det: str, dep: str, table: dict) -> Statement:
        return Statement(
            (det,),
            dep,
            tuple(
                Branch(Condition.of(**{det: key}), dep, value)
                for key, value in table.items()
            ),
        )

    return Program(
        (
            statement("PostalCode", "City", _CITY_OF),
            statement("City", "State", _STATE_OF),
        )
    )


class _StubModel:
    """A model the executor can call: predicts the City column."""

    def predict_values(self, relation: Relation) -> list[object]:
        return list(relation.column_values("City"))


class _ExplodingModel:
    """A model that dies on every inference call."""

    def predict_values(self, relation: Relation) -> list[object]:
        raise RuntimeError("chaos: model backend unavailable")


class _ExplodingGuardrail:
    """A guardrail whose handle() raises (e.g. a poisoned program)."""

    def handle(self, relation, strategy):
        raise RuntimeError("chaos: guard crashed mid-query")


class _SlowGuardrail:
    """A guardrail that stalls past the executor's watchdog."""

    def __init__(self, inner, delay: float):
        self._inner = inner
        self.delay = delay

    def handle(self, relation, strategy):
        time.sleep(self.delay)
        return self._inner.handle(relation, strategy)


_QUERY = "SELECT PREDICT(m) AS p, COUNT(*) AS n FROM t GROUP BY p"


def _run_sql(
    guardrail,
    model,
    relation: Relation,
    policy: GuardPolicy,
    guard_timeout_seconds: float | None = None,
):
    """Execute the probe query; return (result | None, error | None,
    metrics)."""
    # Imported lazily: the executor itself depends on repro.resilience
    # (degradation policies), and chaos is the one module that closes
    # the loop in the other direction.
    from ..sql.executor import QueryExecutor

    executor = QueryExecutor(
        {"t": relation},
        {"m": model},
        guardrail=guardrail,
        strategy="rectify",
        policy=policy,
        guard_timeout_seconds=guard_timeout_seconds,
    )
    try:
        result = executor.execute(_QUERY)
    except Exception as error:  # noqa: BLE001 - the harness judges it
        return None, error, executor.last_metrics
    return result, None, executor.last_metrics


def _judge_sql(
    policy: GuardPolicy, result, error, metrics, n_rows: int
) -> tuple[bool, str]:
    """Is a degraded SQL run's outcome what the policy dictates?"""
    from ..sql.executor import SqlRuntimeError

    if policy is GuardPolicy.STRICT:
        if isinstance(error, SqlRuntimeError):
            return True, f"failed closed: {error}"
        return False, f"expected SqlRuntimeError, got {error!r}"
    if error is not None:
        return False, f"unhandled {type(error).__name__}: {error}"
    returned = sum(result.column("n")) if result.rows else 0
    if policy is GuardPolicy.REJECT:
        if returned == 0 and metrics.rows_rejected > 0:
            return True, f"rejected {metrics.rows_rejected} rows"
        return False, f"expected 0 rows, got {returned}"
    if not metrics.degraded:
        return False, "degradation not recorded in metrics"
    if returned != n_rows:
        return False, f"expected {n_rows} rows to flow, got {returned}"
    return True, (
        f"failed open: {returned} rows flowed, "
        f"{len(metrics.degradations)} degradation(s) recorded"
    )


# ---------------------------------------------------------------------------
# Fault classes
# ---------------------------------------------------------------------------


def _fault_raising_guard(policy: GuardPolicy) -> ChaosOutcome:
    relation = chaos_relation()
    result, error, metrics = _run_sql(
        _ExplodingGuardrail(), _StubModel(), relation, policy
    )
    ok, detail = _judge_sql(policy, result, error, metrics, relation.n_rows)
    return ChaosOutcome("raising_guard", policy, ok, detail)


def _fault_slow_guard(policy: GuardPolicy) -> ChaosOutcome:
    from ..synth import Guardrail

    relation = chaos_relation()
    guardrail = _SlowGuardrail(
        Guardrail.from_program(chaos_program()), delay=0.02
    )
    result, error, metrics = _run_sql(
        guardrail,
        _StubModel(),
        relation,
        policy,
        guard_timeout_seconds=0.001,
    )
    ok, detail = _judge_sql(policy, result, error, metrics, relation.n_rows)
    return ChaosOutcome("slow_guard", policy, ok, detail)


def _fault_model_exception(policy: GuardPolicy) -> ChaosOutcome:
    from ..synth import Guardrail

    relation = chaos_relation()
    guardrail = Guardrail.from_program(chaos_program())
    result, error, metrics = _run_sql(
        guardrail, _ExplodingModel(), relation, policy
    )
    ok, detail = _judge_sql(policy, result, error, metrics, relation.n_rows)
    return ChaosOutcome("model_exception", policy, ok, detail)


def _fault_codec_unseen(policy: GuardPolicy) -> ChaosOutcome:
    """Values the program's codecs never saw must not crash the guard."""
    from ..synth import Guardrail

    relation = chaos_relation()
    relation = relation.set_cell(0, "City", "Atlantis")
    relation = relation.set_cell(1, "State", "ZZ")
    relation = relation.set_cell(2, "PostalCode", "00000")
    guardrail = Guardrail.from_program(chaos_program())
    result, error, metrics = _run_sql(
        guardrail, _StubModel(), relation, policy
    )
    if error is not None:
        return ChaosOutcome(
            "codec_unseen",
            policy,
            False,
            f"unhandled {type(error).__name__}: {error}",
        )
    if metrics.degraded:
        return ChaosOutcome(
            "codec_unseen", policy, False, "unseen values degraded the guard"
        )
    return ChaosOutcome(
        "codec_unseen",
        policy,
        True,
        f"handled natively: {metrics.rows_flagged} rows flagged, "
        f"{metrics.rows_rectified} cells rectified",
    )


_MALFORMED_ROWS: list = [
    {"PostalCode": "94704", "City": "Berkeley", "State": "CA"},  # clean
    ["94704", "Berkeley", "CA"],  # non-mapping
    None,  # not even a row
    {"PostalCode": "10001"},  # ragged: missing attributes
    {"PostalCode": "10001", "City": None, "State": None},  # None cells
    {"PostalCode": "73301", "City": "Austin", "State": "TX", "x": 1},  # extra
    42,  # scalar garbage
]
_MALFORMED_BAD = {1, 2, 6}  # indexes the bare guards cannot vet


def _stream_guards(policy: GuardPolicy):
    from ..synth import Guardrail

    guardrail = Guardrail.from_program(chaos_program())
    # Generous breaker: the point here is per-row degradation, not
    # tripping the circuit (the breaker has its own unit tests).
    row = ResilientRowGuard(
        guardrail.row_guard(),
        policy=policy,
        breaker=CircuitBreaker(failure_threshold=10_000, max_retries=0),
    )
    batch = ResilientBatchGuard(
        guardrail.batch_guard(batch_size=4),
        policy=policy,
        breaker=CircuitBreaker(failure_threshold=10_000, max_retries=0),
    )
    return row, batch


def _judge_stream(
    fault: str,
    policy: GuardPolicy,
    rows: list,
    bad: set[int],
) -> ChaosOutcome:
    """Stream ``rows`` through both resilient guards; check the policy.

    ``bad`` marks the indexes the bare guards cannot vet; those must
    raise under ``strict`` and take the policy verdict otherwise, and
    the row/batch wrappers must agree row for row.
    """
    row_guard, batch_guard = _stream_guards(policy)
    if policy is GuardPolicy.STRICT and bad:
        try:
            list(row_guard.stream(rows))
        except GuardUnavailableError as error:
            return ChaosOutcome(
                fault, policy, True, f"failed closed: {error}"
            )
        except Exception as error:  # noqa: BLE001
            return ChaosOutcome(
                fault,
                policy,
                False,
                f"wrong error type {type(error).__name__}: {error}",
            )
        return ChaosOutcome(
            fault, policy, False, "strict policy swallowed the fault"
        )
    try:
        row_verdicts = list(row_guard.stream(rows))
        batch_verdicts = list(batch_guard.stream(rows))
    except Exception as error:  # noqa: BLE001
        return ChaosOutcome(
            fault, policy, False, f"unhandled {type(error).__name__}: {error}"
        )
    if len(row_verdicts) != len(rows) or len(batch_verdicts) != len(rows):
        return ChaosOutcome(
            fault, policy, False, "a row was dropped without a verdict"
        )
    for index, (rv, bv) in enumerate(zip(row_verdicts, batch_verdicts)):
        if rv.ok != bv.ok:
            return ChaosOutcome(
                fault,
                policy,
                False,
                f"row/batch verdicts diverge at row {index}: "
                f"{rv.ok} vs {bv.ok}",
            )
        if index in bad:
            expected_ok = policy is not GuardPolicy.REJECT
            if rv.ok != expected_ok:
                return ChaosOutcome(
                    fault,
                    policy,
                    False,
                    f"malformed row {index} got ok={rv.ok}, policy "
                    f"{policy.value} dictates ok={expected_ok}",
                )
    degraded = row_guard.stats.degraded_verdicts
    return ChaosOutcome(
        fault,
        policy,
        True,
        f"{len(rows)} verdicts, {degraded} degraded per policy, "
        f"row/batch agree",
    )


def _fault_malformed_rows(policy: GuardPolicy) -> ChaosOutcome:
    return _judge_stream(
        "malformed_rows", policy, list(_MALFORMED_ROWS), set(_MALFORMED_BAD)
    )


# ---------------------------------------------------------------------------
# Drift-shaped fault classes: the supervisor must detect AND recover
# ---------------------------------------------------------------------------


def _sample_rows(mapping: dict, n: int, rng: np.random.Generator) -> list:
    """Draw ``n`` rows from a postal → (city, state) world."""
    postals = sorted(mapping)
    rows = []
    for _ in range(n):
        postal = postals[int(rng.integers(len(postals)))]
        city, state = mapping[postal]
        rows.append({"PostalCode": postal, "City": city, "State": state})
    return rows


def _drift_world() -> dict:
    """The training-time postal → (city, state) mapping."""
    return {
        postal: (city, _STATE_OF[city]) for postal, city in _CITY_OF.items()
    }


def _drift_supervisor(policy: GuardPolicy, training: Relation):
    """A supervisor over a synthesized guard, tuned for short streams."""
    from ..synth import Guardrail
    from .recovery import GuardrailSupervisor, SupervisorConfig
    from .drift import DriftDetector

    guardrail = Guardrail().fit(training)
    detector = DriftDetector.from_training(
        training,
        program=guardrail.program,
        window=96,
        min_window=48,
        sample_every=1,
    )
    return GuardrailSupervisor(
        guardrail,
        drift=detector,
        policy=policy,
        config=SupervisorConfig(
            history_rows=512,
            min_heal_rows=96,
            heal_budget_seconds=10.0,
            cooldown_rows=128,
        ),
    )


def _judge_selfheal(
    fault: str,
    policy: GuardPolicy,
    supervisor,
    clean_flags: int,
    tail_flags: int,
    tail_rows: int,
) -> ChaosOutcome:
    """Did the supervisor detect the drift and return to a quiet guard?

    Self-healing is orthogonal to the degradation policy (a healthy
    guard raising honest verdicts is not a *failure*), so the same
    conformance bar holds under every :class:`GuardPolicy`: an alert
    fired, a heal was accepted, and the post-swap false-flag rate is
    back near the pre-drift level.
    """
    if clean_flags:
        return ChaosOutcome(
            fault, policy, False,
            f"guard flagged {clean_flags} clean rows before any drift",
        )
    if not supervisor.alerts:
        return ChaosOutcome(
            fault, policy, False, "drift injected but no alert fired"
        )
    if not any(heal.accepted for heal in supervisor.heals):
        reasons = "; ".join(h.reason for h in supervisor.heals) or "none"
        return ChaosOutcome(
            fault, policy, False, f"no heal accepted (attempts: {reasons})"
        )
    tail_rate = tail_flags / tail_rows if tail_rows else 0.0
    if tail_rate > 0.05:
        return ChaosOutcome(
            fault, policy, False,
            f"post-swap false-flag rate {tail_rate:.2%} never recovered",
        )
    kinds = sorted({alert.kind for alert in supervisor.alerts})
    return ChaosOutcome(
        fault, policy, True,
        f"detected ({', '.join(kinds)}), healed to v{supervisor.version}, "
        f"post-swap flag rate {tail_rate:.2%}",
    )


def _fault_marginal_shift(
    policy: GuardPolicy, rng: np.random.Generator
) -> ChaosOutcome:
    """Gradual marginal shift: one postal code slides to a new city."""
    world = _drift_world()
    shifted = dict(world)
    shifted["94704"] = ("Oakland", "CA")
    training = Relation.from_rows(_sample_rows(world, 300, rng))
    supervisor = _drift_supervisor(policy, training)

    clean_flags = sum(
        0 if supervisor.check(row).ok else 1
        for row in _sample_rows(world, 200, rng)
    )
    # The shift arrives gradually: the new world's share of traffic
    # ramps from 0 to 1 over the transition window.
    for step in range(600):
        source = shifted if rng.random() < step / 400 else world
        supervisor.check(_sample_rows(source, 1, rng)[0])
    tail = _sample_rows(shifted, 200, rng)
    tail_flags = sum(
        0 if supervisor.check(row).ok else 1 for row in tail
    )
    return _judge_selfheal(
        "marginal_shift", policy, supervisor, clean_flags,
        tail_flags, len(tail),
    )


def _fault_unseen_burst(
    policy: GuardPolicy, rng: np.random.Generator
) -> ChaosOutcome:
    """A burst of codec-unseen values: a new postal/city pair appears."""
    world = _drift_world()
    burst_world = dict(world)
    burst_world["02139"] = ("Cambridge", "MA")
    training = Relation.from_rows(_sample_rows(world, 300, rng))
    supervisor = _drift_supervisor(policy, training)

    clean_flags = sum(
        0 if supervisor.check(row).ok else 1
        for row in _sample_rows(world, 200, rng)
    )
    # The burst: every value of the new pair is outside the training
    # codecs, arriving all at once rather than ramping.
    for row in _sample_rows(burst_world, 600, rng):
        supervisor.check(row)
    tail = _sample_rows(burst_world, 200, rng)
    tail_flags = sum(
        0 if supervisor.check(row).ok else 1 for row in tail
    )
    return _judge_selfheal(
        "unseen_burst", policy, supervisor, clean_flags,
        tail_flags, len(tail),
    )


def _fault_schema_drift(policy: GuardPolicy) -> ChaosOutcome:
    """Mid-stream, the upstream producer renames/narrows its columns.

    Missing attributes behave like missing (None) cells in the
    canonical semantics, so drift is vetted natively — no degradation,
    but every row still gets a verdict and row/batch still agree.
    """
    drifted: list = [
        {"PostalCode": "94704", "City": "Berkeley", "State": "CA"},
        {"PostalCode": "94720", "City": "Berkeley", "State": "CA"},
        # v2 of the producer: renamed columns
        {"postal_code": "94704", "city_name": "Berkeley"},
        {"postal_code": "10001", "city_name": "NewYork"},
        # v3: narrowed payload
        {"PostalCode": "73301"},
    ]
    return _judge_stream("schema_drift", policy, drifted, set())


# ---------------------------------------------------------------------------
# Process-level fault classes: the supervised pool must recover
# ---------------------------------------------------------------------------


def _worker_fault_fixture():
    """A guardrail + relation big enough to shard across two workers.

    A few cells are corrupted so the violation mask is non-trivial —
    a lost shard that silently came back all-False would be caught.
    """
    from ..synth import Guardrail

    relation = chaos_relation(copies=64)
    relation = relation.set_cell(3, "City", "Austin")
    relation = relation.set_cell(70, "State", "NY")
    relation = relation.set_cell(200, "City", "Berkeley")
    guardrail = Guardrail.from_program(chaos_program())
    return guardrail, relation


def _worker_fault_outcome(
    name: str,
    policy: GuardPolicy,
    *,
    fault: str,
    times: int = 1,
    task_timeout: float = 30.0,
    max_retries: int = 1,
    expect_kind: str,
) -> ChaosOutcome:
    """Inject one process-level fault into sharded detection and judge.

    Like self-healing, surviving a dead worker is orthogonal to the
    degradation policy (the guard itself never failed — its substrate
    did), so the conformance bar is the same under every
    :class:`GuardPolicy`: the call returns (no hang), the mask is
    bit-identical to a serial reference, and the incident was recorded
    as a typed :class:`~repro.parallel.WorkerFault` of the expected
    kind.
    """
    from ..parallel import WorkerPool, fork_available, worker_chaos

    if not fork_available():  # pragma: no cover - linux has fork
        return ChaosOutcome(
            name, policy, True, "skipped: platform lacks fork"
        )
    guardrail, relation = _worker_fault_fixture()
    n_rows = relation.n_rows
    # Fresh views per call: detection results are cached per relation
    # identity, and a cache hit would make the injection a no-op.
    reference = guardrail.check(relation.slice_rows(0, n_rows))
    pool = WorkerPool(
        2,
        min_shard_rows=1,
        task_timeout=task_timeout,
        max_retries=max_retries,
    )
    started = time.perf_counter()
    with worker_chaos(fault, item=1, times=times, hang_seconds=30.0):
        mask = guardrail.check(relation.slice_rows(0, n_rows), pool=pool)
    elapsed = time.perf_counter() - started
    if not np.array_equal(mask, reference):
        return ChaosOutcome(
            name, policy, False,
            "recovered mask diverges from the serial reference",
        )
    kinds = [f.kind for f in pool.last_faults]
    if expect_kind not in kinds:
        return ChaosOutcome(
            name, policy, False,
            f"no WorkerFault of kind {expect_kind!r} recorded "
            f"(got {kinds or 'none'})",
        )
    return ChaosOutcome(
        name, policy, True,
        f"bit-identical after {len(kinds)} fault(s) "
        f"[{', '.join(sorted(set(kinds)))}] in {elapsed:.2f}s",
    )


def _fault_worker_killed(policy: GuardPolicy) -> ChaosOutcome:
    """A worker is SIGKILLed mid-shard; its shard is retried re-forked."""
    return _worker_fault_outcome(
        "worker_killed", policy, fault="kill", expect_kind="worker_died"
    )


def _fault_worker_hang(policy: GuardPolicy) -> ChaosOutcome:
    """A worker wedges past the progress deadline; it is killed and its
    shard retried — the caller never blocks on it."""
    return _worker_fault_outcome(
        "worker_hang",
        policy,
        fault="hang",
        task_timeout=0.5,
        expect_kind="task_deadline",
    )


def _fault_poisoned_result(policy: GuardPolicy) -> ChaosOutcome:
    """A worker's result cannot cross the pickle boundary, every time;
    retries exhaust and the shard degrades to inline serial execution."""
    return _worker_fault_outcome(
        "poisoned_result",
        policy,
        fault="unpicklable",
        times=8,  # outlives any retry budget: forces the inline fallback
        expect_kind="result_unpicklable",
    )


# ---------------------------------------------------------------------------
# Disk-fault classes: the durability layer under fire
# ---------------------------------------------------------------------------


def _durability_fixture(state_dir, swaps: int = 5):
    """Commit a reference event history into ``state_dir``.

    Registers one tenant and hot-swaps it ``swaps`` times (with a
    couple of quarantine pushes riding along), returning the store and
    the folded state every committed-prefix check compares against.
    """
    from .durability import DurableStateStore, fold_runtime_state

    store = DurableStateStore(state_dir, snapshot_every=None)
    events = [("tenant_register", {"tenant": "acme", "config": {}, "program": "p1"})]
    for n in range(2, swaps + 2):
        events.append(("swap", {"tenant": "acme", "version": n, "program": f"p{n}"}))
        if n % 2 == 0:
            events.append(
                ("quarantine_push", {"tenant": "acme", "row": {"City": f"x{n}"}})
            )
    records = [store.append(kind, **data) for kind, data in events]
    expected = fold_runtime_state(None, records)
    return store, records, expected


def _judge_recovery(
    name: str, policy: GuardPolicy, state_dir, expected: dict, want
) -> ChaosOutcome:
    """Shared committed-prefix judge for the disk fault classes.

    Durability, like self-healing, is orthogonal to the degradation
    policy — the guard never misbehaved, its disk did — so the
    conformance bar is identical under every :class:`GuardPolicy`:
    :func:`~repro.resilience.durability.recover` must return exactly
    the committed prefix (``expected``), plus whatever fault-specific
    diagnostics ``want(recovered)`` checks.
    """
    from .durability import fold_runtime_state, recover

    recovered = recover(state_dir)
    folded = fold_runtime_state(recovered.state, recovered.events)
    if folded != expected:
        return ChaosOutcome(
            name, policy, False,
            "recovered state diverges from the committed prefix",
        )
    problem = want(recovered)
    if problem:
        return ChaosOutcome(name, policy, False, problem)
    return ChaosOutcome(
        name, policy, True,
        f"committed prefix intact: {recovered.replayed_records} record(s) "
        f"replayed, {recovered.truncated_tail_bytes} tail byte(s) "
        f"discarded, snapshot generation {recovered.snapshot_generation}",
    )


def _fault_torn_journal_tail(policy: GuardPolicy) -> ChaosOutcome:
    """A crash mid-append leaves a torn journal tail; recovery truncates
    to the last valid record and replays exactly the committed prefix."""
    import tempfile

    from .durability import JOURNAL_NAME, DurabilityError, TornWriteIO, io_shim

    with tempfile.TemporaryDirectory(prefix="chaos-durability-") as state_dir:
        store, _, expected = _durability_fixture(state_dir)
        with io_shim(TornWriteIO(fail_on_append=1, keep_bytes=9)):
            try:
                store.append("swap", tenant="acme", version=99, program="torn")
            except DurabilityError:
                pass  # the torn append was never committed
            else:
                return ChaosOutcome(
                    "torn_journal_tail", policy, False,
                    "torn append did not surface a typed DurabilityError",
                )

        def want(recovered):
            if recovered.truncated_tail_bytes <= 0:
                return "no torn tail detected despite the torn write"
            return None

        outcome = _judge_recovery(
            "torn_journal_tail", policy, state_dir, expected, want
        )
        if not outcome.conformant:
            return outcome
        # Reopening must repair the tail so new appends never
        # interleave with garbage.
        from .durability import DurableStateStore

        reopened = DurableStateStore(state_dir, snapshot_every=None)
        raw = (Path(state_dir) / JOURNAL_NAME).read_bytes()
        if not raw.endswith(b"\n"):
            return ChaosOutcome(
                "torn_journal_tail", policy, False,
                "reopen did not truncate the torn tail",
            )
        if reopened.last_seq != store.last_seq:
            return ChaosOutcome(
                "torn_journal_tail", policy, False,
                "reopened store lost committed sequence numbers",
            )
        return outcome


def _fault_corrupt_snapshot(policy: GuardPolicy) -> ChaosOutcome:
    """The newest snapshot generation is bit-rotted; recovery rejects it
    by checksum and falls back to the previous generation + journal."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="chaos-durability-") as state_dir:
        store, _, expected = _durability_fixture(state_dir)
        # Two generations, then corrupt the newest one.
        store.state_provider = lambda: {"tenants": {}}
        from .durability import fold_runtime_state, recover

        pre = recover(state_dir)
        folded = fold_runtime_state(pre.state, pre.events)
        store.snapshot(folded)
        store.append("swap", tenant="acme", version=90, program="p90")
        post = recover(state_dir)
        expected = fold_runtime_state(post.state, post.events)
        store.snapshot(expected)
        generations = sorted(Path(state_dir).glob("snapshot-*.json"))
        newest = generations[-1]
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(bytes(data))

        def want(recovered):
            if recovered.rejected_snapshots < 1:
                return "corrupt snapshot was not rejected"
            if recovered.snapshot_generation == 0:
                return "recovery did not fall back to a prior generation"
            return None

        return _judge_recovery(
            "corrupt_snapshot", policy, state_dir, expected, want
        )


def _fault_disk_full(policy: GuardPolicy) -> ChaosOutcome:
    """The state device hits ENOSPC mid-run: further commits surface a
    typed error, nothing already committed is lost or corrupted."""
    import tempfile

    from .durability import DurabilityError, FullDiskIO, io_shim

    with tempfile.TemporaryDirectory(prefix="chaos-durability-") as state_dir:
        store, _, expected = _durability_fixture(state_dir)
        with io_shim(FullDiskIO(capacity_bytes=0)):
            try:
                store.append("swap", tenant="acme", version=99, program="full")
            except DurabilityError as error:
                if error.path is None or error.__cause__ is None:
                    return ChaosOutcome(
                        "disk_full", policy, False,
                        "DurabilityError lacks its path or cause",
                    )
            except OSError:
                return ChaosOutcome(
                    "disk_full", policy, False,
                    "ENOSPC leaked as a raw OSError instead of a typed "
                    "DurabilityError",
                )
            else:
                return ChaosOutcome(
                    "disk_full", policy, False,
                    "append on a full disk did not raise",
                )

        def want(recovered):
            if recovered.truncated_tail_bytes:
                return "full-disk append corrupted the journal tail"
            return None

        return _judge_recovery("disk_full", policy, state_dir, expected, want)


def _fault_crash_restart(policy: GuardPolicy) -> ChaosOutcome:
    """A child process journaling events is SIGKILLed mid-stream; the
    parent recovers every event the child acknowledged, and nothing
    partial."""
    import multiprocessing as mp
    import os
    import signal
    import tempfile

    from ..parallel import fork_available
    from .durability import recover

    if not fork_available():  # pragma: no cover - linux has fork
        return ChaosOutcome(
            "crash_restart", policy, True, "skipped: platform lacks fork"
        )

    def victim(state_dir, conn):
        """Append events forever, acking each committed seq to the parent."""
        from .durability import DurableStateStore

        store = DurableStateStore(state_dir, snapshot_every=4)
        store.state_provider = lambda: {"tenants": {}}
        store.append("tenant_register", tenant="acme", config={}, program="p1")
        conn.send(store.last_seq)
        version = 1
        while True:
            version += 1
            store.append(
                "swap", tenant="acme", version=version, program=f"p{version}"
            )
            conn.send(store.last_seq)

    with tempfile.TemporaryDirectory(prefix="chaos-durability-") as state_dir:
        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        child = ctx.Process(target=victim, args=(state_dir, child_conn))
        child.start()
        child_conn.close()
        acked = 0
        try:
            for _ in range(12):  # let a dozen commits land, then murder it
                acked = parent_conn.recv()
        finally:
            os.kill(child.pid, signal.SIGKILL)
            child.join(timeout=10.0)
            parent_conn.close()
        recovered = recover(state_dir)
        if recovered.last_seq < acked:
            return ChaosOutcome(
                "crash_restart", policy, False,
                f"recovery lost acknowledged commits: last_seq "
                f"{recovered.last_seq} < acked {acked}",
            )
        seqs = [record.seq for record in recovered.events]
        if seqs != sorted(set(seqs)):
            return ChaosOutcome(
                "crash_restart", policy, False,
                "journal replay yielded duplicate or unordered records",
            )
        return ChaosOutcome(
            "crash_restart", policy, True,
            f"all {acked} acknowledged commit(s) recovered "
            f"(last_seq {recovered.last_seq}, "
            f"{recovered.truncated_tail_bytes} torn byte(s) discarded)",
        )


_FAULTS = {
    "raising_guard": _fault_raising_guard,
    "slow_guard": _fault_slow_guard,
    "model_exception": _fault_model_exception,
    "codec_unseen": _fault_codec_unseen,
    "malformed_rows": _fault_malformed_rows,
    "schema_drift": _fault_schema_drift,
    "marginal_shift": _fault_marginal_shift,
    "unseen_burst": _fault_unseen_burst,
    "worker_killed": _fault_worker_killed,
    "worker_hang": _fault_worker_hang,
    "poisoned_result": _fault_poisoned_result,
    "torn_journal_tail": _fault_torn_journal_tail,
    "corrupt_snapshot": _fault_corrupt_snapshot,
    "disk_full": _fault_disk_full,
    "crash_restart": _fault_crash_restart,
}

_RNG_FAULTS = {"marginal_shift", "unseen_burst"}
"""Fault classes whose streams are sampled (all others are fixed)."""


def run_fault(
    fault: str,
    policy: "GuardPolicy | str",
    rng: "np.random.Generator | None" = None,
) -> ChaosOutcome:
    """Inject one fault class under one policy; judge the outcome.

    ``rng`` seeds the sampled (drift-shaped) fault classes; it defaults
    to ``np.random.default_rng(0)`` so repeated runs — and CI — are
    deterministic.
    """
    if fault not in _FAULTS:
        raise ValueError(
            f"unknown fault class {fault!r}; choose from "
            + ", ".join(FAULT_CLASSES)
        )
    resolved = GuardPolicy.parse(policy)
    if fault in _RNG_FAULTS:
        if rng is None:
            rng = np.random.default_rng(0)
        return _FAULTS[fault](resolved, rng)
    return _FAULTS[fault](resolved)


def run_chaos_suite(
    policy: "GuardPolicy | str" = GuardPolicy.WARN,
    faults: tuple[str, ...] = FAULT_CLASSES,
    rng: "np.random.Generator | None" = None,
) -> list[ChaosOutcome]:
    """Inject every fault class under ``policy``; return the verdicts.

    One ``rng`` is shared across the suite's sampled fault classes, so a
    fixed seed pins the whole run.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    return [run_fault(fault, policy, rng=rng) for fault in faults]


def render_chaos_report(outcomes: list[ChaosOutcome]) -> str:
    """Plain-text table of chaos outcomes (the CLI's output)."""
    width = max(len(o.fault) for o in outcomes)
    lines = [
        f"chaos suite under policy "
        f"{outcomes[0].policy.value if outcomes else '?'}:"
    ]
    for outcome in outcomes:
        mark = "PASS" if outcome.conformant else "FAIL"
        lines.append(
            f"  {mark}  {outcome.fault.ljust(width)}  {outcome.detail}"
        )
    conformant = sum(o.conformant for o in outcomes)
    lines.append(f"{conformant}/{len(outcomes)} fault classes conformant")
    return "\n".join(lines)
