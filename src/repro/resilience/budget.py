"""Cooperative budgets for the synthesis pipeline.

MEC enumeration and the OptSMT baseline are combinatorial; PC issues a
number of CI tests that grows with graph density.  In a deployment
(Fig. 1) none of these may run unbounded.  A :class:`Budget` is a small
mutable object threaded through the pipeline: each subsystem *spends*
steps against it and checks :meth:`Budget.exhausted` at its natural
unit of work (one CI test, one MEC expansion, one statement fill, one
branch-and-bound node).  Subsystems stop gracefully — they keep their
best-so-far output — and :func:`repro.synth.synthesize` surfaces the
truncation as ``SynthesisResult.partial``.

Because checks happen *between* units of work, the wall-clock overshoot
past the deadline is bounded by the cost of one unit, which keeps a
budgeted run within a small constant factor of its deadline.

    budget = Budget(seconds=2.0, max_steps=100_000)
    result = synthesize(relation, config, budget=budget)
    result.partial          # True iff the budget cut anything short
    budget.notes            # which phases were truncated, and where
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import obs


class BudgetExceeded(RuntimeError):
    """Raised by :meth:`Budget.check` when the budget is exhausted.

    Subsystems that can return a best-so-far result prefer the
    non-raising :meth:`Budget.exhausted`; this exception is for callers
    that need a hard stop (e.g. the OptSMT branch-and-bound).
    """

    def __init__(self, message: str, reason: str = "budget"):
        super().__init__(message)
        self.reason = reason


@dataclass
class Budget:
    """A wall-clock deadline plus a step cap, spent cooperatively.

    Parameters
    ----------
    seconds:
        Wall-clock allowance from the first :meth:`start` (implicit on
        first use); ``None`` means no deadline.
    max_steps:
        Total step allowance across every subsystem that charges this
        budget; ``None`` means uncapped.  One *step* is one natural unit
        of pipeline work (a CI test, a MEC node expansion, a statement
        fill, a search node).

    A ``Budget`` is single-use: it keeps its own clock and counters, so
    share one instance across the phases of one run, not across runs.
    """

    seconds: float | None = None
    max_steps: int | None = None
    steps: int = 0
    notes: list[str] = field(default_factory=list)
    _started_at: float | None = field(default=None, repr=False)
    _spent_by_kind: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.seconds is not None and self.seconds < 0:
            raise ValueError("seconds must be non-negative")
        if self.max_steps is not None and self.max_steps < 0:
            raise ValueError("max_steps must be non-negative")

    # ------------------------------------------------------------------

    def start(self) -> "Budget":
        """Start the wall clock (idempotent; implicit on first spend)."""
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    @property
    def started(self) -> bool:
        """Has the wall clock started?"""
        return self._started_at is not None

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before the clock starts)."""
        if self._started_at is None:
            return 0.0
        return time.perf_counter() - self._started_at

    def remaining_seconds(self) -> float | None:
        """Seconds left before the deadline (None without a deadline)."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())

    # ------------------------------------------------------------------

    def spend(self, steps: int = 1, kind: str | None = None) -> None:
        """Charge ``steps`` units of work (starts the clock if needed)."""
        self.start()
        self.steps += steps
        if kind is not None:
            self._spent_by_kind[kind] = (
                self._spent_by_kind.get(kind, 0) + steps
            )

    @property
    def spent_by_kind(self) -> dict[str, int]:
        """Steps charged so far, broken down by ``spend(kind=...)``."""
        return dict(self._spent_by_kind)

    def exhausted(self) -> bool:
        """Is either limit spent?  (The graceful-stop check.)"""
        if self.max_steps is not None and self.steps >= self.max_steps:
            return True
        if self.seconds is not None:
            self.start()
            if self.elapsed() >= self.seconds:
                return True
        return False

    def exhaustion_reason(self) -> str | None:
        """Which limit ran out (``"steps"`` / ``"deadline"``), or None."""
        if self.max_steps is not None and self.steps >= self.max_steps:
            return "steps"
        if self.seconds is not None and self.elapsed() >= self.seconds:
            return "deadline"
        return None

    def check(self, where: str = "") -> None:
        """Raise :class:`BudgetExceeded` if the budget is exhausted."""
        reason = self.exhaustion_reason() if self.exhausted() else None
        if reason is None:
            return
        suffix = f" in {where}" if where else ""
        raise BudgetExceeded(
            f"budget exhausted ({reason}, {self.steps} steps, "
            f"{self.elapsed():.3f}s elapsed){suffix}",
            reason=reason,
        )

    def note(self, message: str) -> None:
        """Record that a phase was truncated (shows up on the result)."""
        self.notes.append(message)
        if obs.enabled():
            obs.count("resilience.budget.truncation")
            obs.record("resilience.budget", note=message, steps=self.steps)

    @property
    def truncated(self) -> bool:
        """Did any subsystem report a budget truncation?"""
        return bool(self.notes)
