"""Resilience layer: budgets, policies, chaos, and self-healing.

Five pillars keep the pipeline production-safe:

* :mod:`~repro.resilience.budget` — :class:`Budget` objects threaded
  through synthesis (PC, MEC enumeration, sketch filling, OptSMT) so
  combinatorial phases stop gracefully at a deadline/step cap and
  ``synthesize`` returns a best-so-far ``partial`` result;
* :mod:`~repro.resilience.policy` — :class:`GuardPolicy` degradation
  modes (strict / warn / pass_through / reject), a
  :class:`CircuitBreaker` with retry/backoff, and resilient wrappers
  for the streaming guards;
* :mod:`~repro.resilience.drift` — online :class:`DriftDetector`\\ s
  (codec-unseen rate, χ²/G² marginal shift, EWMA violation chart)
  raising typed :class:`DriftAlert`\\ s when the stream leaves the
  training distribution;
* :mod:`~repro.resilience.recovery` — the :class:`GuardrailSupervisor`
  closing the loop: quarantine, budgeted warm-started re-synthesis,
  held-out validation, atomic guardrail hot-swap with rollback;
* :mod:`~repro.resilience.chaos` — a fault-injection harness proving
  every fault class (including drift-shaped, process-level, and
  disk-fault ones) yields a policy-conformant outcome, and
  :mod:`~repro.resilience.chaos_load` — the same faults injected into
  a live :class:`repro.serve.GuardServer` under a closed-loop client
  fleet, judged at the service level (zero lost requests, verdict
  parity, recovery);
* :mod:`~repro.resilience.durability` — the crash-safe state store
  (write-ahead journal + atomic snapshot generations +
  :func:`~repro.resilience.durability.recover`) that makes hot-swaps,
  quarantine contents, and drift baselines survive process death;
* :mod:`~repro.resilience.overload` — overload control for the
  serving layer (CoDel-style adaptive admission, request deadlines,
  weighted fair-share budgets, brownout degradation tiers), with its
  own storm-shaped chaos suite in
  :mod:`~repro.resilience.chaos_overload`.
"""

from .budget import Budget, BudgetExceeded
from .chaos import (
    DURABILITY_FAULT_CLASSES,
    FAULT_CLASSES,
    WORKER_FAULT_CLASSES,
    ChaosOutcome,
    chaos_program,
    chaos_relation,
    render_chaos_report,
    run_chaos_suite,
    run_fault,
)
from .durability import (
    DiskIO,
    DurabilityError,
    DurableStateStore,
    FullDiskIO,
    JournalRecord,
    RecoveredState,
    SnapshotStore,
    TornWriteIO,
    WriteAheadJournal,
    atomic_write_text,
    fold_runtime_state,
    io_shim,
    recover,
    recover_runtime_state,
)
from .chaos_load import (
    LOAD_FAULT_CLASSES,
    LoadOutcome,
    render_load_report,
    run_load_fault,
    run_load_suite,
)
from .chaos_overload import (
    OVERLOAD_FAULT_CLASSES,
    OverloadOutcome,
    render_overload_report,
    run_overload_fault,
    run_overload_suite,
)
from .overload import (
    STEADY_CLOCK,
    AdmissionController,
    BrownoutConfig,
    BrownoutController,
    FairShareLimiter,
    SteadyClock,
)
from .drift import (
    DRIFT_KINDS,
    DriftAlert,
    DriftDetector,
    DriftStats,
    render_drift_report,
)
from .policy import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    DegradationStats,
    GuardPolicy,
    GuardUnavailableError,
    ResilientBatchGuard,
    ResilientRowGuard,
    resilient_call,
)
from .recovery import (
    OVERFLOW_POLICIES,
    GuardrailSupervisor,
    GuardrailVersions,
    HealOutcome,
    LiveBatchGuard,
    LiveRowGuard,
    QuarantineBuffer,
    SupervisorConfig,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "GuardPolicy",
    "GuardUnavailableError",
    "CircuitOpenError",
    "BreakerState",
    "CircuitBreaker",
    "DegradationStats",
    "ResilientRowGuard",
    "ResilientBatchGuard",
    "resilient_call",
    "DRIFT_KINDS",
    "DriftAlert",
    "DriftDetector",
    "DriftStats",
    "render_drift_report",
    "OVERFLOW_POLICIES",
    "QuarantineBuffer",
    "GuardrailVersions",
    "LiveRowGuard",
    "LiveBatchGuard",
    "SupervisorConfig",
    "HealOutcome",
    "GuardrailSupervisor",
    "FAULT_CLASSES",
    "WORKER_FAULT_CLASSES",
    "DURABILITY_FAULT_CLASSES",
    "ChaosOutcome",
    "chaos_relation",
    "chaos_program",
    "run_fault",
    "run_chaos_suite",
    "render_chaos_report",
    "LOAD_FAULT_CLASSES",
    "LoadOutcome",
    "run_load_fault",
    "run_load_suite",
    "render_load_report",
    "OVERLOAD_FAULT_CLASSES",
    "OverloadOutcome",
    "run_overload_fault",
    "run_overload_suite",
    "render_overload_report",
    "STEADY_CLOCK",
    "SteadyClock",
    "AdmissionController",
    "FairShareLimiter",
    "BrownoutConfig",
    "BrownoutController",
    "DurabilityError",
    "DiskIO",
    "TornWriteIO",
    "FullDiskIO",
    "io_shim",
    "atomic_write_text",
    "JournalRecord",
    "WriteAheadJournal",
    "SnapshotStore",
    "DurableStateStore",
    "RecoveredState",
    "recover",
    "recover_runtime_state",
    "fold_runtime_state",
]
