"""Resilience layer: budgets, degradation policies, chaos injection.

Three pillars keep the pipeline production-safe:

* :mod:`~repro.resilience.budget` — :class:`Budget` objects threaded
  through synthesis (PC, MEC enumeration, sketch filling, OptSMT) so
  combinatorial phases stop gracefully at a deadline/step cap and
  ``synthesize`` returns a best-so-far ``partial`` result;
* :mod:`~repro.resilience.policy` — :class:`GuardPolicy` degradation
  modes (strict / warn / pass_through / reject), a
  :class:`CircuitBreaker` with retry/backoff, and resilient wrappers
  for the streaming guards;
* :mod:`~repro.resilience.chaos` — a fault-injection harness proving
  every fault class yields a policy-conformant outcome.
"""

from .budget import Budget, BudgetExceeded
from .chaos import (
    FAULT_CLASSES,
    ChaosOutcome,
    chaos_program,
    chaos_relation,
    render_chaos_report,
    run_chaos_suite,
    run_fault,
)
from .policy import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    DegradationStats,
    GuardPolicy,
    GuardUnavailableError,
    ResilientBatchGuard,
    ResilientRowGuard,
    resilient_call,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "GuardPolicy",
    "GuardUnavailableError",
    "CircuitOpenError",
    "BreakerState",
    "CircuitBreaker",
    "DegradationStats",
    "ResilientRowGuard",
    "ResilientBatchGuard",
    "resilient_call",
    "FAULT_CLASSES",
    "ChaosOutcome",
    "chaos_relation",
    "chaos_program",
    "run_fault",
    "run_chaos_suite",
    "render_chaos_report",
]
