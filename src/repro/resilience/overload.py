"""Overload control: shed load deliberately instead of collapsing.

A server under a traffic storm has exactly two honest options: make
the work cheaper or turn work away.  This module supplies the four
mechanisms the serving layer (:mod:`repro.serve`) composes into its
admission pipeline, in the order a request meets them:

* :class:`AdmissionController` — CoDel-style *adaptive admission*.
  Tracks each tenant's queue sojourn time as an EWMA and starts
  rejecting **before** the queue is full once the delay has sat above
  a target for a sustained interval; rejection hints
  (:meth:`AdmissionController.retry_hint`) come from the *measured*
  drain rate with ±20% jitter so shed clients don't re-arrive in
  lockstep.
* request **deadlines** — the serve layer stamps ``deadline_ms`` onto
  queued requests; :func:`expired` is the one shared predicate that
  decides, against :class:`SteadyClock` time, whether a request's
  budget is already gone (shed at dequeue, no guard work wasted).
* :class:`FairShareLimiter` — a server-wide concurrency budget split
  across tenants by weighted shares, work-conserving: a tenant may
  always use its guaranteed slice, and may exceed it only while the
  server as a whole has headroom, so one noisy tenant cannot starve
  the rest.
* :class:`BrownoutController` — graceful *degradation tiers* with
  hysteresis: sustained pressure steps the server down (parallel
  predict → blocking, drift sampling widened, obs events shed), a
  cool period steps it back up, and every transition is journaled as
  a control-plane event before it activates.

Everything here is synchronous, allocation-light, and loop-agnostic —
the asyncio serve layer calls into it from the admission path and the
batcher, and the chaos harness (:mod:`repro.resilience.chaos_overload`)
drives it to its limits.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable


class SteadyClock:
    """A wall-anchored monotonic clock: one source for stamps *and* spans.

    ``time.time()`` can step backwards under NTP corrections, which
    makes it unusable for durations — yet event timestamps need wall
    meaning.  ``SteadyClock`` anchors a ``perf_counter`` origin to the
    wall clock once, at construction: :meth:`now` returns
    wall-meaningful timestamps that can never go backwards, and
    :meth:`monotonic` returns the raw monotonic reading for interval
    arithmetic (queue sojourns, deadlines).  Because both come from
    the same counter, a duration computed from two :meth:`now` stamps
    equals the same duration computed from :meth:`monotonic` — the
    single-clock-source property the serving layer's ``queued_ms``
    accounting and obs-event stamping share.
    """

    def __init__(self) -> None:
        self._anchor = time.time()
        self._origin = time.perf_counter()

    def monotonic(self) -> float:
        """Seconds on the monotonic axis (for intervals and deadlines)."""
        return time.perf_counter()

    def now(self) -> float:
        """A wall-meaningful timestamp that can never step backwards."""
        return self._anchor + (time.perf_counter() - self._origin)


STEADY_CLOCK = SteadyClock()
"""The process-wide clock the serving layer stamps with.  One shared
instance so every subsystem's timestamps are mutually ordered."""


def expired(deadline_at: "float | None", now: float) -> bool:
    """Is a request's deadline already behind ``now``?

    ``deadline_at`` is an absolute :meth:`SteadyClock.monotonic`
    instant (None = no deadline); the serve layer calls this at
    admission, at dequeue, and during the shutdown drain so every
    layer applies the identical predicate.
    """
    return deadline_at is not None and now > deadline_at


class AdmissionController:
    """CoDel-flavored admission control over one tenant's queue delay.

    The controller watches *sojourn time* — how long each request sat
    in the admission queue before its flush — as an EWMA, and declares
    overload only when that delay has stayed above ``target_delay_ms``
    for at least ``interval_ms`` (the CoDel insight: a standing queue
    is the problem, a transient burst is what queues are *for*).  Once
    overloaded, :meth:`should_shed` rejects new arrivals while a real
    backlog exists, long before the queue-full cliff.

    It also measures the queue's *drain rate* (rows per second across
    flushes, EWMA-smoothed) so :meth:`retry_hint` can tell a rejected
    client how long the current backlog actually needs — an honest
    figure, jittered ±20% so synchronized clients desynchronize.
    """

    def __init__(
        self,
        target_delay_ms: float = 100.0,
        interval_ms: "float | None" = None,
        alpha: float = 0.2,
        min_backlog: int = 1,
        seed: "str | int | None" = None,
        clock: "SteadyClock | None" = None,
    ):
        if target_delay_ms <= 0:
            raise ValueError("target_delay_ms must be > 0")
        self.target_delay_ms = float(target_delay_ms)
        self.interval_s = (
            target_delay_ms if interval_ms is None else interval_ms
        ) / 1000.0
        self.alpha = alpha
        self.min_backlog = max(1, int(min_backlog))
        self.clock = clock or STEADY_CLOCK
        self.sojourn_ewma_ms: "float | None" = None
        self.drain_rate_rps: "float | None" = None
        self.shed_total = 0
        self._above_since: "float | None" = None
        self._last_flush_at: "float | None" = None
        self._rng = random.Random(seed if seed is not None else 0x0DE1)

    def observe_sojourn(
        self, sojourn_ms: float, now: "float | None" = None
    ) -> None:
        """Fold one request's measured queue delay into the EWMA."""
        now = self.clock.monotonic() if now is None else now
        if self.sojourn_ewma_ms is None:
            self.sojourn_ewma_ms = sojourn_ms
        else:
            self.sojourn_ewma_ms += self.alpha * (
                sojourn_ms - self.sojourn_ewma_ms
            )
        if self.sojourn_ewma_ms > self.target_delay_ms:
            if self._above_since is None:
                self._above_since = now
        else:
            self._above_since = None

    def observe_flush(
        self, rows: int, now: "float | None" = None
    ) -> None:
        """Fold one completed flush into the drain-rate estimate."""
        now = self.clock.monotonic() if now is None else now
        last = self._last_flush_at
        self._last_flush_at = now
        if last is None or rows <= 0:
            return
        interval = now - last
        if interval <= 0:
            return
        rate = rows / interval
        if self.drain_rate_rps is None:
            self.drain_rate_rps = rate
        else:
            self.drain_rate_rps += self.alpha * (
                rate - self.drain_rate_rps
            )

    @property
    def overloaded(self) -> bool:
        """Is the sojourn EWMA currently above the target delay?"""
        return (
            self.sojourn_ewma_ms is not None
            and self.sojourn_ewma_ms > self.target_delay_ms
        )

    def should_shed(
        self, backlog: int, now: "float | None" = None
    ) -> bool:
        """Reject this arrival?  True only for a *standing* queue:
        the sojourn EWMA above target for a full interval, with at
        least ``min_backlog`` requests actually waiting."""
        if self._above_since is None or backlog < self.min_backlog:
            return False
        now = self.clock.monotonic() if now is None else now
        if now - self._above_since < self.interval_s:
            return False
        self.shed_total += 1
        return True

    def drain_seconds(self, backlog: int) -> "float | None":
        """Measured time for ``backlog`` queued rows to drain, or None
        before any flush has been observed."""
        if not self.drain_rate_rps or self.drain_rate_rps <= 0:
            return None
        return backlog / self.drain_rate_rps

    def retry_hint(self, backlog: int, fallback: float) -> float:
        """An honest, jittered backoff for one rejected client.

        The base figure is the measured drain time of the current
        backlog (``fallback`` — the caller's static estimate — before
        any flush has been measured); jitter spreads it over ±20% so
        two clients rejected in the same millisecond come back at
        different times instead of re-forming the stampede.
        """
        measured = self.drain_seconds(max(backlog, 1))
        base = measured if measured is not None else fallback
        return max(base, 1e-4) * self._rng.uniform(0.8, 1.2)


class FairShareLimiter:
    """A weighted server-wide concurrency budget across tenants.

    ``budget`` is the total number of requests the server will hold
    in flight at once; each tenant registers a ``share`` weight and is
    *guaranteed* the fraction ``share / total_shares`` of it.  The
    scheme is work-conserving: :meth:`try_acquire` admits a tenant
    under its guarantee unconditionally, and past its guarantee only
    while the server as a whole has headroom — idle capacity is never
    wasted, but a noisy tenant can only ever eat the *slack*, not a
    neighbor's slice.
    """

    def __init__(self, budget: int):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = int(budget)
        self._shares: dict[str, float] = {}
        self._usage: dict[str, int] = {}
        self.denied_total = 0

    def register(self, name: str, share: float = 1.0) -> None:
        """Add (or re-weight) one tenant's share of the budget."""
        if share <= 0:
            raise ValueError("share must be > 0")
        self._shares[name] = float(share)
        self._usage.setdefault(name, 0)

    def unregister(self, name: str) -> None:
        """Forget a tenant (its in-flight tokens are released)."""
        self._shares.pop(name, None)
        self._usage.pop(name, None)

    @property
    def in_flight(self) -> int:
        """Requests currently holding a token, across all tenants."""
        return sum(self._usage.values())

    def guaranteed(self, name: str) -> float:
        """The concurrency this tenant may always use: its weighted
        slice of the budget (at least 1 — registration is a promise
        of *some* service)."""
        total = sum(self._shares.values())
        if total <= 0:
            return float(self.budget)
        slice_ = self.budget * self._shares.get(name, 0.0) / total
        return max(1.0, slice_)

    def try_acquire(self, name: str) -> bool:
        """Admit one request for ``name`` if fairness allows.

        True admits and holds one token (release it with
        :meth:`release` when the request resolves); False means the
        tenant is past its guarantee *and* the server is at budget.
        """
        usage = self._usage.get(name, 0)
        if usage < self.guaranteed(name) or self.in_flight < self.budget:
            self._usage[name] = usage + 1
            return True
        self.denied_total += 1
        return False

    def release(self, name: str) -> None:
        """Return one token (no-op for unknown/unregistered tenants)."""
        usage = self._usage.get(name)
        if usage:
            self._usage[name] = usage - 1

    def snapshot(self) -> dict:
        """Budget, per-tenant usage, and denials as a plain dict."""
        return {
            "budget": self.budget,
            "in_flight": self.in_flight,
            "denied": self.denied_total,
            "usage": dict(self._usage),
            "shares": dict(self._shares),
        }


@dataclass(frozen=True)
class BrownoutConfig:
    """Hysteresis knobs for :class:`BrownoutController`.

    ``step_down_after`` consecutive overloaded observations trigger one
    tier step down; stepping back up requires ``cool_seconds`` with no
    overload observed; ``min_dwell_seconds`` rate-limits transitions in
    both directions so the controller cannot oscillate within a single
    pressure spike.  ``max_tier`` bounds how far service degrades;
    ``drift_widen_factor`` is the multiplier applied to drift-detector
    sampling at tier >= 2.
    """

    step_down_after: int = 3
    cool_seconds: float = 2.0
    min_dwell_seconds: float = 0.1
    max_tier: int = 2
    drift_widen_factor: int = 4

    def __post_init__(self) -> None:
        if self.step_down_after < 1:
            raise ValueError("step_down_after must be >= 1")
        if self.max_tier < 1:
            raise ValueError("max_tier must be >= 1")
        if self.drift_widen_factor < 1:
            raise ValueError("drift_widen_factor must be >= 1")


class BrownoutController:
    """Server-wide graceful-degradation tiers with hysteresis.

    Tier 0 is full service.  Each step down sheds one class of
    optional work — the serve layer maps tiers to effects through the
    :attr:`degrade_parallel`, :attr:`drift_widen_factor`, and
    :attr:`shed_observability` properties:

    ======  ==========================================================
    tier 0  full service
    tier 1  parallel predict races downgrade to blocking (the model
            stage stops burning cycles on rows the guard will void)
    tier 2  drift sampling widened (1-in-k times the configured
            factor) and buffered obs events sampled 1-in-8
    ======  ==========================================================

    Transitions are driven by :meth:`observe` — one call per flush
    with that moment's overload signal — and follow the hysteresis in
    :class:`BrownoutConfig`.  Every transition is journaled (via
    :meth:`attach_journal`) *before* it activates, matching the
    serve layer's journal-before-activation rule, and the journal
    payloads carry no timestamps so a recovery replay reconstructs
    the transition history bit-identically.
    """

    def __init__(
        self,
        config: "BrownoutConfig | None" = None,
        clock: "SteadyClock | None" = None,
    ):
        self.config = config or BrownoutConfig()
        self.clock = clock or STEADY_CLOCK
        self.tier = 0
        self.max_tier_seen = 0
        self.transitions: list[dict] = []
        self.unjournaled = 0
        self._journal: "Callable | None" = None
        self._listeners: list[Callable] = []
        self._streak = 0
        self._last_transition_at: "float | None" = None
        self._last_overloaded_at: "float | None" = None

    def attach_journal(self, journal: "Callable | None") -> None:
        """Route transitions into a durable journal (``journal(**data)``).

        Journaling is best-effort by design: a sick disk must not
        prevent the server from shedding load, so append failures are
        swallowed and counted on :attr:`unjournaled`.
        """
        self._journal = journal

    def on_transition(self, listener: Callable) -> None:
        """Register ``listener(record)`` called after each transition."""
        self._listeners.append(listener)

    def restore(self, tier: int, transitions: list[dict]) -> None:
        """Adopt a recovered tier + transition history (no journaling,
        no listener calls — replayed events must not re-journal)."""
        self.tier = int(tier)
        self.transitions = [dict(t) for t in transitions]
        self.max_tier_seen = max(
            [self.tier] + [int(t.get("tier", 0)) for t in self.transitions]
        )

    def observe(
        self, overloaded: bool, now: "float | None" = None
    ) -> int:
        """Feed one pressure sample; returns the (possibly new) tier."""
        now = self.clock.monotonic() if now is None else now
        config = self.config
        if overloaded:
            self._last_overloaded_at = now
            self._streak += 1
            if (
                self._streak >= config.step_down_after
                and self.tier < config.max_tier
                and self._dwelled(now)
            ):
                self._transition(self.tier + 1, "pressure", now)
                self._streak = 0
        else:
            self._streak = 0
            cooled = (
                self._last_overloaded_at is None
                or now - self._last_overloaded_at >= config.cool_seconds
            )
            if self.tier > 0 and cooled and self._dwelled(now):
                self._transition(self.tier - 1, "cooled", now)
        return self.tier

    def _dwelled(self, now: float) -> bool:
        return (
            self._last_transition_at is None
            or now - self._last_transition_at
            >= self.config.min_dwell_seconds
        )

    def _transition(self, tier: int, reason: str, now: float) -> None:
        record = {"from": self.tier, "tier": tier, "reason": reason}
        if self._journal is not None:
            try:
                # Journal-before-activation, but best-effort: shedding
                # must keep working on a dead disk.
                self._journal(**record)
            except Exception:
                self.unjournaled += 1
        self.tier = tier
        self.max_tier_seen = max(self.max_tier_seen, tier)
        self._last_transition_at = now
        self.transitions.append(record)
        for listener in self._listeners:
            listener(record)

    @property
    def degrade_parallel(self) -> bool:
        """Should parallel predict races downgrade to blocking?"""
        return self.tier >= 1

    @property
    def drift_widen_factor(self) -> int:
        """Multiplier for drift-detector sampling at the current tier."""
        if self.tier >= 2:
            return self.config.drift_widen_factor
        return 1

    @property
    def shed_observability(self) -> bool:
        """Should buffered obs events be sampled instead of kept?"""
        return self.tier >= 2

    def snapshot(self) -> dict:
        """Tier, peak tier, and transition count as a plain dict."""
        return {
            "tier": self.tier,
            "max_tier_seen": self.max_tier_seen,
            "transitions": len(self.transitions),
            "unjournaled": self.unjournaled,
        }
