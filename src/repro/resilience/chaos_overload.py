"""Overload chaos: traffic storms against a live ``GuardServer``.

The chaos-under-load suite (:mod:`repro.resilience.chaos_load`)
injects *component* faults — a broken guard, a killed batcher — under
steady traffic.  This module injects the opposite failure family:
the components are healthy and the **traffic itself is the fault**.
Four storm classes drive the serve layer's overload pipeline
(:mod:`repro.resilience.overload`) to its limits and judge the
contract the ISSUE spells out:

========================  ==================================================
``overload_storm``        open-loop traffic at 10x measured capacity;
                          judged on goodput (>= 70% of the calibrated
                          single-tenant capacity retained), brownout
                          tiers stepping down under pressure and
                          restoring after the storm, and — on the
                          durable server — the journaled tier
                          transitions replaying bit-identically
``retry_storm``           a synchronized burst overflows a tiny queue;
                          judged on honest, *distinct* jittered
                          ``retry_after`` hints (no client re-arrives
                          in lockstep) and every shed request
                          eventually completing on retry
``noisy_neighbor``        one tenant floods while a polite tenant keeps
                          a paced trickle; judged on fair-share
                          isolation — the polite tenant's p95 stays
                          within 2x its unloaded p95 and none of its
                          requests are shed — while the flood is
``deadline_stampede``     a deep backlog plus a wave of tight
                          ``deadline_ms`` requests; judged on typed
                          EXPIRED responses shed at dequeue with zero
                          wasted guard work (guard-visited rows ==
                          completed requests, exactly)
========================  ==================================================

Every class additionally demands **zero lost requests**: each
submission resolves with a typed :class:`~repro.serve.ServeResponse`,
never an exception, never a dangling future.  ``repro chaos
--overload`` is the command-line entry point; the suite runs under
every :class:`~repro.resilience.GuardPolicy` because overload
shedding must be orthogonal to guard degradation.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from dataclasses import dataclass

from .chaos_load import _load_rows, _programs
from .overload import BrownoutConfig
from .policy import GuardPolicy

OVERLOAD_FAULT_CLASSES = (
    "overload_storm",
    "retry_storm",
    "noisy_neighbor",
    "deadline_stampede",
)
"""Every storm class the overload suite can inject, in suite order."""


@dataclass
class OverloadOutcome:
    """Verdict on one storm class driven against a live server."""

    fault: str
    policy: GuardPolicy
    conformant: bool
    detail: str
    submitted: int = 0
    resolved: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    goodput_ratio: float = 0.0
    peak_tier: int = 0
    recovered: bool = False


# ---------------------------------------------------------------------------
# Fixture: a deliberately slow (but correct) guardrail
# ---------------------------------------------------------------------------


def _slow_guardrail(program, delay_s: float, counter: dict):
    """A real :class:`~repro.synth.Guardrail` whose guards are correct
    but slow: every guard call sleeps ``delay_s`` and counts the rows
    it actually vetted into ``counter``.  The sleep makes capacity
    small and measurable (so a storm is cheap to mount); the counter
    is the wasted-work evidence ``deadline_stampede`` judges —
    expired requests must never reach the guard."""
    from ..synth import Guardrail

    class _SlowGuard:
        """Delegates verdicts to the real guard, slowly."""

        def __init__(self, inner):
            self._inner = inner

        def check_batch(self, rows):
            time.sleep(delay_s)
            counter["rows"] += len(rows)
            return self._inner.check_batch(rows)

        def check_row(self, row):
            time.sleep(delay_s)
            counter["rows"] += 1
            return self._inner.check_row(row)

        def rectify(self, row):
            time.sleep(delay_s)
            counter["rows"] += 1
            return self._inner.rectify(row)

    class _SlowServeGuardrail(Guardrail):
        """Validates as a guardrail; serves only slowed guards."""

        def batch_guard(self, batch_size: int = 256):
            return _SlowGuard(super().batch_guard(batch_size))

        def row_guard(self):
            return _SlowGuard(super().row_guard())

    return _SlowServeGuardrail.from_program(program)


# ---------------------------------------------------------------------------
# Traffic drivers
# ---------------------------------------------------------------------------


async def _closed_loop(
    server, tenant: str, rows, clients: int, requests: int
) -> tuple[list, float]:
    """Closed-loop calibration traffic; returns (responses, elapsed)."""
    from ..serve import ServeStatus

    responses = []

    async def client(cid: int) -> None:
        for k in range(requests):
            row = rows[(cid * 31 + k * 7) % len(rows)]
            while True:
                response = await server.check(tenant, row)
                if response.status is ServeStatus.REJECTED:
                    await asyncio.sleep(
                        min(response.retry_after or 0.001, 0.01)
                    )
                    continue
                responses.append(response)
                return_ = True
                break
            assert return_

    start = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(clients)))
    return responses, time.perf_counter() - start


async def _open_loop(
    server,
    tenant: str,
    rows,
    total: int,
    duration_s: float,
    deadline_ms: "float | None" = None,
) -> tuple[list, float]:
    """Open-loop storm traffic: ``total`` requests submitted over
    ``duration_s`` regardless of completions (the arrival process a
    shedding server actually faces).  Returns every settled result
    (responses or exceptions — the judge wants both) and the elapsed
    time from first submission to last resolution."""
    futures = []
    ticks = 40
    interval = duration_s / ticks
    start = time.perf_counter()
    sent = 0
    for tick in range(ticks):
        quota = (total * (tick + 1)) // ticks
        while sent < quota:
            row = rows[sent % len(rows)]
            futures.append(
                asyncio.ensure_future(
                    server.check(tenant, row, deadline_ms=deadline_ms)
                )
            )
            sent += 1
        await asyncio.sleep(interval)
    results = await asyncio.gather(*futures, return_exceptions=True)
    return list(results), time.perf_counter() - start


async def _cool_down(
    server, tenant: str, rows, bound_s: float
) -> bool:
    """Paced light traffic until the brownout controller steps back to
    tier 0 (or ``bound_s`` expires); True when full service returned."""
    deadline = time.perf_counter() + bound_s
    index = 0
    while time.perf_counter() < deadline:
        await server.check(tenant, rows[index % len(rows)])
        index += 1
        if server.brownout.tier == 0:
            return True
        await asyncio.sleep(0.01)
    return server.brownout.tier == 0


def _tally(results) -> dict:
    """Split settled results into typed-response counts and losses."""
    from ..serve import ServeResponse, ServeStatus

    tally = {
        "resolved": 0,
        "completed": 0,
        "rejected": 0,
        "expired": 0,
        "errors": 0,
        "lost": [],
    }
    for result in results:
        if isinstance(result, ServeResponse):
            tally["resolved"] += 1
            if result.status is ServeStatus.OK:
                tally["completed"] += 1
            elif result.status is ServeStatus.REJECTED:
                tally["rejected"] += 1
            elif result.status is ServeStatus.EXPIRED:
                tally["expired"] += 1
            else:
                tally["errors"] += 1
        else:
            tally["lost"].append(f"{type(result).__name__}: {result}")
    return tally


def _p95(values: list) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(0.95 * (len(ordered) - 1) + 0.5))
    return ordered[index]


# ---------------------------------------------------------------------------
# The four storm classes
# ---------------------------------------------------------------------------


async def _run_overload_storm(
    policy: GuardPolicy, scale: float
) -> OverloadOutcome:
    """10x offered load against one tenant on a durable server."""
    from ..resilience.durability import recover_runtime_state
    from ..serve import GuardServer, TenantConfig

    program = _programs()[1]
    rows = _load_rows()
    counter = {"rows": 0}
    guardrail = _slow_guardrail(program, 0.0025, counter)
    config = TenantConfig(
        policy=policy,
        max_batch=8,
        max_wait_ms=2.0,
        queue_size=64,
        target_delay_ms=20.0,
        failure_threshold=10_000,
    )
    brownout = BrownoutConfig(
        step_down_after=2,
        cool_seconds=0.15,
        min_dwell_seconds=0.05,
        max_tier=2,
    )
    with tempfile.TemporaryDirectory() as state_dir:
        server = GuardServer(state_dir=state_dir, brownout=brownout)
        server.register("storm", guardrail, config)
        async with server:
            calibration, calibrated_s = await _closed_loop(
                server, "storm", rows, clients=8, requests=6
            )
            capacity = max(1.0, len(calibration) / calibrated_s)
            offered = 10.0 * capacity
            total = min(int(4000 * scale), max(64, int(offered * 0.5)))
            duration = total / offered
            results, elapsed = await _open_loop(
                server, "storm", rows, total, duration
            )
            peak_tier = server.brownout.max_tier_seen
            recovered = await _cool_down(
                server, "storm", rows, bound_s=4.0 * scale + 1.0
            )
            # Pure-replay recovery, mid-run: fold the journal as a
            # crashed process would and demand the tier transitions
            # come back bit-identical to the live controller's record.
            live = [dict(t) for t in server.brownout.transitions]
            folded, _ = recover_runtime_state(state_dir)
            replay_identical = (
                folded["brownout"]["transitions"] == live
            )
    tally = _tally(results)
    goodput = tally["completed"] / max(elapsed, 1e-9)
    outcome = OverloadOutcome(
        "overload_storm",
        policy,
        False,
        "",
        submitted=len(results),
        resolved=tally["resolved"],
        completed=tally["completed"],
        rejected=tally["rejected"],
        expired=tally["expired"],
        goodput_ratio=goodput / capacity,
        peak_tier=peak_tier,
        recovered=recovered,
    )
    if tally["lost"]:
        outcome.detail = (
            f"{len(tally['lost'])} request(s) lost (first: "
            f"{tally['lost'][0]})"
        )
    elif tally["resolved"] != len(results):
        outcome.detail = "a submission vanished without a response"
    elif outcome.goodput_ratio < 0.7:
        outcome.detail = (
            f"goodput collapsed to {outcome.goodput_ratio:.0%} of "
            f"capacity at 10x load (bound: 70%)"
        )
    elif peak_tier < 1:
        outcome.detail = "brownout never stepped down under the storm"
    elif not recovered:
        outcome.detail = (
            f"brownout stuck at tier {server.brownout.tier} after the "
            "storm cleared"
        )
    elif not replay_identical:
        outcome.detail = (
            "journaled brownout transitions did not replay "
            "bit-identically"
        )
    elif tally["rejected"] == 0:
        outcome.detail = "10x load was never shed — storm did not land"
    else:
        outcome.conformant = True
        outcome.detail = (
            f"{outcome.goodput_ratio:.0%} goodput at 10x "
            f"({capacity:.0f} rps capacity), peak tier {peak_tier}, "
            f"{tally['rejected']} shed, tier restored, journal "
            f"replay identical"
        )
    return outcome


async def _run_retry_storm(
    policy: GuardPolicy, scale: float
) -> OverloadOutcome:
    """A synchronized burst; judged on distinct honest retry hints."""
    from ..serve import GuardServer, ServeStatus, TenantConfig

    program = _programs()[1]
    rows = _load_rows()
    counter = {"rows": 0}
    guardrail = _slow_guardrail(program, 0.005, counter)
    config = TenantConfig(
        policy=policy,
        max_batch=4,
        max_wait_ms=20.0,
        queue_size=8,
        target_delay_ms=500.0,  # isolate queue-full from adaptive shed
        failure_threshold=10_000,
    )
    server = GuardServer()
    server.register("bursty", guardrail, config)
    burst = max(8, int(30 * scale))
    hints: list[float] = []
    lost: list[str] = []
    completed = 0
    async with server:
        futures = [
            asyncio.ensure_future(
                server.check("bursty", rows[i % len(rows)])
            )
            for i in range(burst)
        ]
        results = await asyncio.gather(*futures, return_exceptions=True)
        retries = []
        for i, result in enumerate(results):
            if not hasattr(result, "status"):
                lost.append(f"{type(result).__name__}: {result}")
                continue
            if result.status is ServeStatus.REJECTED:
                hints.append(result.retry_after)
                retries.append(i)
            elif result.status is ServeStatus.OK:
                completed += 1
        # Every shed client honors its hint, then retries to
        # completion (closed loop) — the storm must fully drain.
        async def retry(i: int, hint: float) -> None:
            nonlocal completed
            await asyncio.sleep(min(hint, 0.1))
            while True:
                response = await server.check(
                    "bursty", rows[i % len(rows)]
                )
                if response.status is ServeStatus.OK:
                    completed += 1
                    return
                await asyncio.sleep(
                    min(response.retry_after or 0.005, 0.05)
                )

        await asyncio.gather(
            *(retry(i, h) for i, h in zip(retries, hints))
        )
    outcome = OverloadOutcome(
        "retry_storm",
        policy,
        False,
        "",
        submitted=burst,
        resolved=burst - len(lost),
        completed=completed,
        rejected=len(hints),
    )
    distinct = len({round(h, 9) for h in hints})
    if lost:
        outcome.detail = f"lost request(s): {lost[0]}"
    elif len(hints) < 2:
        outcome.detail = (
            f"burst of {burst} produced only {len(hints)} rejection(s) "
            "— the storm never overflowed the queue"
        )
    elif min(hints) <= 0:
        outcome.detail = "a retry hint was not positive"
    elif max(hints) > 2.0:
        outcome.detail = (
            f"retry hint {max(hints):.2f}s is not honest for an "
            "8-deep queue"
        )
    elif distinct != len(hints):
        outcome.detail = (
            f"{len(hints)} simultaneous rejections shared hints "
            f"({distinct} distinct) — clients would retry in lockstep"
        )
    elif completed != burst:
        outcome.detail = (
            f"only {completed}/{burst} requests completed after retry"
        )
    else:
        outcome.conformant = True
        outcome.detail = (
            f"{len(hints)} shed with {distinct} distinct jittered "
            f"hints (spread {min(hints) * 1000:.1f}-"
            f"{max(hints) * 1000:.1f}ms), all {burst} completed on "
            "retry"
        )
    return outcome


async def _run_noisy_neighbor(
    policy: GuardPolicy, scale: float
) -> OverloadOutcome:
    """One tenant floods; the polite tenant's latency must hold."""
    from ..serve import GuardServer, ServeStatus, TenantConfig

    program = _programs()[1]
    rows = _load_rows()
    counter = {"rows": 0}

    def config() -> TenantConfig:
        return TenantConfig(
            policy=policy,
            max_batch=4,
            max_wait_ms=2.0,
            queue_size=128,
            target_delay_ms=250.0,
            share=1.0,
            failure_threshold=10_000,
        )

    server = GuardServer(budget=16)
    server.register(
        "polite", _slow_guardrail(program, 0.001, counter), config()
    )
    # The noisy tenant's guard is 4x heavier, so its capacity
    # (~4 rows / 4ms) sits well below the flood's offered rate.
    server.register(
        "noisy", _slow_guardrail(program, 0.004, counter), config()
    )
    paced = max(10, int(30 * scale))

    async def paced_phase() -> list:
        latencies = []
        for k in range(paced):
            response = await server.check(
                "polite", rows[k % len(rows)]
            )
            if response.status is ServeStatus.OK:
                latencies.append(response.service_ms)
            else:
                latencies.append(float("inf"))  # shed = judged below
            await asyncio.sleep(0.008)
        return latencies

    async with server:
        unloaded = await paced_phase()
        # Offer ~3000 rps for the whole loaded paced phase — a few
        # multiples of the noisy tenant's capacity, so fair share
        # (not luck) is what protects the polite tenant.
        flood_duration = paced * 0.012
        flood_total = int(3000 * flood_duration)
        flood_task = asyncio.ensure_future(
            _open_loop(
                server, "noisy", rows, flood_total, flood_duration
            )
        )
        loaded = await paced_phase()
        flood_results, _ = await flood_task
    flood = _tally(flood_results)
    p95_unloaded = _p95(unloaded)
    p95_loaded = _p95(loaded)
    floor_ms = 15.0
    bound = 2.0 * max(p95_unloaded, floor_ms)
    outcome = OverloadOutcome(
        "noisy_neighbor",
        policy,
        False,
        "",
        submitted=2 * paced + len(flood_results),
        resolved=2 * paced + flood["resolved"],
        completed=flood["completed"],
        rejected=flood["rejected"],
    )
    if flood["lost"]:
        outcome.detail = f"flood lost request(s): {flood['lost'][0]}"
    elif any(v == float("inf") for v in unloaded + loaded):
        outcome.detail = (
            "a polite-tenant request was shed — fair share failed to "
            "protect the guaranteed slice"
        )
    elif flood["rejected"] == 0:
        outcome.detail = (
            "the flood was never shed — the noisy tenant was not "
            "actually limited"
        )
    elif p95_loaded > bound:
        outcome.detail = (
            f"polite p95 {p95_loaded:.1f}ms under flood vs "
            f"{p95_unloaded:.1f}ms unloaded — over the 2x bound "
            f"({bound:.1f}ms)"
        )
    else:
        outcome.conformant = True
        outcome.detail = (
            f"polite p95 {p95_unloaded:.1f}ms -> {p95_loaded:.1f}ms "
            f"under a {flood_total}-request flood (bound {bound:.1f}ms); "
            f"flood shed {flood['rejected']}, zero polite sheds"
        )
    return outcome


async def _run_deadline_stampede(
    policy: GuardPolicy, scale: float
) -> OverloadOutcome:
    """Tight deadlines behind a deep backlog: shed, don't serve."""
    from ..serve import GuardServer, TenantConfig

    program = _programs()[1]
    rows = _load_rows()
    counter = {"rows": 0}
    guardrail = _slow_guardrail(program, 0.004, counter)
    config = TenantConfig(
        policy=policy,
        max_batch=4,
        max_wait_ms=1.0,
        queue_size=512,
        target_delay_ms=10_000.0,  # isolate deadlines from admission
        failure_threshold=10_000,
    )
    server = GuardServer()
    server.register("stampede", guardrail, config)
    backlog_n = max(40, int(100 * scale))
    stampede_n = max(20, int(60 * scale))
    async with server:
        backlog = [
            asyncio.ensure_future(
                server.check("stampede", rows[i % len(rows)])
            )
            for i in range(backlog_n)
        ]
        await asyncio.sleep(0)  # let the backlog enqueue first
        stampede = [
            asyncio.ensure_future(
                server.check(
                    "stampede",
                    rows[i % len(rows)],
                    deadline_ms=25.0,
                )
            )
            for i in range(stampede_n)
        ]
        results = await asyncio.gather(
            *backlog, *stampede, return_exceptions=True
        )
    tally = _tally(results)
    guard_rows = counter["rows"]
    outcome = OverloadOutcome(
        "deadline_stampede",
        policy,
        False,
        "",
        submitted=backlog_n + stampede_n,
        resolved=tally["resolved"],
        completed=tally["completed"],
        rejected=tally["rejected"],
        expired=tally["expired"],
    )
    if tally["lost"]:
        outcome.detail = f"lost request(s): {tally['lost'][0]}"
    elif tally["resolved"] != outcome.submitted:
        outcome.detail = "a submission vanished without a response"
    elif tally["expired"] < stampede_n // 2:
        outcome.detail = (
            f"only {tally['expired']} of {stampede_n} deadline "
            "requests expired behind the backlog — the stampede "
            "never stressed the deadline path"
        )
    elif guard_rows != tally["completed"]:
        outcome.detail = (
            f"guard vetted {guard_rows} rows but only "
            f"{tally['completed']} requests completed — expired "
            "requests wasted guard work"
        )
    else:
        outcome.conformant = True
        outcome.detail = (
            f"{tally['expired']} expired at dequeue with typed "
            f"responses; guard vetted exactly the {guard_rows} "
            "completed rows (zero wasted work)"
        )
    return outcome


_INJECTORS = {
    "overload_storm": _run_overload_storm,
    "retry_storm": _run_retry_storm,
    "noisy_neighbor": _run_noisy_neighbor,
    "deadline_stampede": _run_deadline_stampede,
}


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_overload_fault(
    fault: str,
    policy: "GuardPolicy | str",
    scale: float = 1.0,
) -> OverloadOutcome:
    """Mount one storm class against a fresh server; judge the outcome.

    ``scale`` shrinks (or grows) the storm's request volume and
    patience bounds proportionally — 1.0 is the CLI default; tests
    use a smaller scale for a faster smoke matrix.
    """
    if fault not in _INJECTORS:
        raise ValueError(
            f"unknown overload fault class {fault!r}; choose from "
            + ", ".join(OVERLOAD_FAULT_CLASSES)
        )
    resolved = GuardPolicy.parse(policy)
    outcome = asyncio.run(_INJECTORS[fault](resolved, scale))
    if not outcome.conformant:
        # Every storm judge is a wall-clock measurement (goodput,
        # p95 bounds, cool-down windows); one retry absorbs scheduler
        # jitter on a loaded machine without masking regressions — a
        # genuine conformance failure fails twice.
        outcome = asyncio.run(_INJECTORS[fault](resolved, scale))
    return outcome


def run_overload_suite(
    policy: "GuardPolicy | str" = GuardPolicy.WARN,
    faults: tuple = OVERLOAD_FAULT_CLASSES,
    scale: float = 1.0,
) -> list[OverloadOutcome]:
    """Run every overload storm class under ``policy``."""
    return [
        run_overload_fault(fault, policy, scale=scale)
        for fault in faults
    ]


def render_overload_report(outcomes: list) -> str:
    """Plain-text table of overload outcomes (the CLI's output)."""
    width = max((len(o.fault) for o in outcomes), default=5)
    policy = outcomes[0].policy.value if outcomes else "?"
    lines = [f"overload chaos suite under policy {policy}:"]
    for outcome in outcomes:
        mark = "PASS" if outcome.conformant else "FAIL"
        lines.append(
            f"  {mark}  {outcome.fault.ljust(width)}  {outcome.detail}"
        )
    conformant = sum(o.conformant for o in outcomes)
    lines.append(
        f"{conformant}/{len(outcomes)} storm classes shed conformantly"
    )
    return "\n".join(lines)
