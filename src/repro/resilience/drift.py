"""Online drift detection for the streaming guards.

The synthesized program models the data-generating process *at
training time*; in deployment the input distribution moves — new
category values, shifted marginals, broken upstream feeds — and a
stale guard either silently degrades (rising false flags) or trips the
circuit breaker with no path back.  This module closes the detection
half of the self-healing loop with three online detectors, each fed by
the streaming guards (:mod:`repro.errors.stream`) and each emitting
typed :class:`DriftAlert` records:

* **codec-unseen values** — per attribute, the fraction of window
  values the training codec never saw (a new category or a broken
  upstream feed);
* **marginal shift** — per attribute, a χ²/G² homogeneity test of the
  window's value counts against the training-time marginals, reusing
  the contingency-table machinery of :mod:`repro.pgm.independence`;
* **violation rate** — an EWMA control chart over the guard's own
  violation verdicts, alerting when the smoothed rate crosses the
  control limit derived from the training baseline.

The per-row cost is one countdown decrement, plus one list append on
every ``sample_every``-th row (the detectors evaluate a 1-in-k
systematic sample of the stream; k=1 disables sampling); all
statistics run when a window of sampled rows fills, so a
drift-instrumented guard stays within a few percent of bare-guard
throughput (``benchmarks/test_drift_overhead.py`` enforces <10%).

    detector = DriftDetector.from_training(train, program=guard.program)
    guard = gr.row_guard()
    guard.attach_drift(detector)
    for row in stream:
        guard.check(row)
        for alert in detector.poll():
            ...                       # e.g. hand to GuardrailSupervisor
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from .. import obs
from ..pgm.independence import _g2_from_table, _x2_from_table
from ..relation import Relation
from ..relation.encoding import Codec

DRIFT_KINDS = ("unseen_values", "marginal_shift", "violation_rate")
"""Every alert kind a :class:`DriftDetector` can emit."""


@dataclass(frozen=True)
class DriftAlert:
    """One detected departure from the training-time distribution."""

    kind: str
    """One of :data:`DRIFT_KINDS`."""
    attribute: str | None
    """The drifting attribute (None for the program-wide violation
    chart)."""
    statistic: float
    """The detector's test statistic (rate, χ²/G², or EWMA level)."""
    threshold: float
    """The limit the statistic crossed."""
    window: int
    """Rows in the evaluation window that raised the alert."""
    message: str
    """Human-readable one-liner for logs and the CLI."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.message


@dataclass
class DriftStats:
    """Counters a long-running detector accumulates."""

    rows_observed: int = 0
    windows_evaluated: int = 0
    alerts_by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def total_alerts(self) -> int:
        """Alerts emitted across every kind."""
        return sum(self.alerts_by_kind.values())


@dataclass(frozen=True)
class _Reference:
    """Training-time marginal for one monitored attribute."""

    codec: Codec
    counts: np.ndarray  # per-code counts, len == codec.cardinality
    padded: np.ndarray  # counts + trailing 0.0 "unseen" bucket


class DriftDetector:
    """Online drift detection against a training-time reference.

    Parameters
    ----------
    reference:
        The training relation whose categorical marginals and codecs
        define "no drift".
    attributes:
        Attributes to monitor (default: every categorical attribute of
        ``reference``).
    window:
        Rows per evaluation window; statistics run when it fills.
    alpha:
        Significance level of the per-attribute marginal test.  Kept
        deliberately small (default ``1e-4``): the test runs once per
        attribute per window, so the false-positive budget must cover
        many repeated tests on a stationary stream.
    unseen_threshold:
        Window fraction of codec-unseen values (per attribute) that
        raises an ``unseen_values`` alert.
    ewma_lambda:
        Smoothing weight of the violation-rate EWMA chart.
    ewma_sigmas:
        Control-limit width in asymptotic EWMA standard deviations.
    baseline_violation_rate:
        Expected violation rate on in-distribution data (e.g. the
        guard's false-flag rate on the training relation); the chart
        centres on it.
    method:
        Marginal test statistic: ``"x2"`` (default) or ``"g2"``,
        matching :mod:`repro.pgm.independence`.
    min_window:
        Windows smaller than this (e.g. a final partial flush) are not
        evaluated.
    sample_every:
        Evaluate statistics on every k-th observed row (a systematic
        sample).  ``window`` counts *sampled* rows, so one evaluation
        spans ``window * sample_every`` raw rows.  The default of 8
        keeps a drift-instrumented guard well inside the <10% overhead
        budget; set 1 for full-fidelity monitoring of slow streams.
    """

    def __init__(
        self,
        reference: Relation,
        attributes: Sequence[str] | None = None,
        window: int = 512,
        alpha: float = 1e-4,
        unseen_threshold: float = 0.05,
        ewma_lambda: float = 0.05,
        ewma_sigmas: float = 6.0,
        baseline_violation_rate: float = 0.0,
        method: str = "x2",
        min_window: int = 64,
        sample_every: int = 8,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if not 0.0 < ewma_lambda <= 1.0:
            raise ValueError("ewma_lambda must be in (0, 1]")
        if method not in ("x2", "g2"):
            raise ValueError(f"unknown method: {method!r}")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.window = int(window)
        self.alpha = alpha
        self.unseen_threshold = unseen_threshold
        self.ewma_lambda = ewma_lambda
        self.ewma_sigmas = ewma_sigmas
        self.method = method
        self.min_window = min_window
        self.sample_every = int(sample_every)
        self.stats = DriftStats()
        self._pending: list[DriftAlert] = []
        self._rows: list[Mapping[str, Hashable]] = []
        self._oks: list[bool] = []
        self._decay: dict[int, tuple[float, np.ndarray]] = {}
        self._attributes: list[str] = (
            list(attributes)
            if attributes is not None
            else list(reference.schema.categorical_names())
        )
        self._references: dict[str, _Reference] = {}
        self._critical: dict[int, float] = {}
        self._ewma = 0.0
        self._ewma_seen = 0
        self._tick = self.sample_every
        self._journal = None
        self.rebase(reference, baseline_violation_rate)

    def attach_journal(self, journal) -> None:
        """Journal rebases through ``journal(kind, **data)``.

        A rebase is a control-plane event (it redefines "normal" for
        every later alert): the new baseline is journaled **before**
        it takes effect, and a journal failure aborts the rebase with
        the journal's typed error, leaving the current reference and
        EWMA level active.
        """
        self._journal = journal

    @classmethod
    def from_training(
        cls,
        reference: Relation,
        program=None,
        **kwargs,
    ) -> "DriftDetector":
        """Build a detector calibrated on the training relation.

        When ``program`` (the synthesized constraints) is given, the
        monitored attributes default to those the program touches and
        the EWMA baseline is set to the program's own false-flag rate
        on ``reference`` — the right centre line for "the guard is as
        noisy as it was at fit time".
        """
        if program is not None and "attributes" not in kwargs:
            touched = _program_attributes(program)
            categorical = set(reference.schema.categorical_names())
            monitored = [a for a in touched if a in categorical]
            if monitored:
                kwargs["attributes"] = monitored
        if program is not None and "baseline_violation_rate" not in kwargs:
            from ..dsl import program_violations

            mask = program_violations(program, reference)
            kwargs["baseline_violation_rate"] = float(mask.mean())
        return cls(reference, **kwargs)

    # ------------------------------------------------------------------
    # Feeding (the hot path)
    # ------------------------------------------------------------------

    def observe(self, row: Mapping[str, Hashable], ok: bool) -> None:
        """Feed one vetted row; a countdown decrement on the hot path."""
        tick = self._tick - 1
        if tick > 0:
            self._tick = tick
            return
        self._tick = self.sample_every
        self.ingest(row, ok)

    def ingest(self, row: Mapping[str, Hashable], ok: bool) -> None:
        """Buffer one *already-sampled* row (no countdown).

        The streaming guards inline the 1-in-k countdown themselves
        (so skipped rows never pay a method call) and hand every k-th
        verdict here; external feeders should call :meth:`observe`.
        """
        rows = self._rows
        rows.append(row)
        self._oks.append(ok)
        if len(rows) >= self.window:
            self._evaluate_window()

    def ingest_many(
        self,
        rows: Sequence[Mapping[str, Hashable]],
        oks: Sequence[bool],
    ) -> None:
        """Buffer a slice of *already-sampled* rows (no countdown)."""
        buffer = self._rows
        buffer.extend(rows)
        self._oks.extend(oks)
        if len(buffer) >= self.window:
            self._evaluate_window()

    def observe_batch(
        self,
        rows: Sequence[Mapping[str, Hashable]],
        oks: Sequence[bool],
    ) -> None:
        """Feed a vetted micro-batch (the :class:`BatchGuard` path).

        Sampling is applied across batch boundaries (the countdown
        carries over), so the batch path sees exactly the rows the
        row-at-a-time path would.
        """
        n = len(rows)
        if n == 0:
            return
        k = self.sample_every
        start = self._tick - 1
        if start >= n:
            self._tick -= n
            return
        last = start + ((n - 1 - start) // k) * k
        self._tick = last + k - n + 1
        if k == 1:
            self.ingest_many(rows, oks)
        else:
            self.ingest_many(rows[start::k], oks[start::k])

    def scan(self, relation: Relation, oks: Sequence[bool], pool=None) -> None:
        """Feed a whole vetted relation through the detector in one call.

        Exactly equivalent to the row-at-a-time loop

        >>> for i in range(relation.n_rows):        # doctest: +SKIP
        ...     detector.observe(relation.row(i), bool(oks[i]))

        — the 1-in-k countdown carries in and out, windows evaluate at
        exactly ``window`` sampled rows, and the unevaluated tail stays
        buffered — but only sampled rows are ever decoded, and the
        per-window counting fans out across a
        :class:`repro.parallel.WorkerPool` (``pool``: a pool, a worker
        count, or ``None``).  Windows reduce in stream order in the
        parent process, so alerts, EWMA trajectory, and stats are
        bit-identical to the serial scan at any worker count.
        """
        from ..parallel import as_pool

        n = relation.n_rows
        if len(oks) != n:
            raise ValueError(
                f"oks has {len(oks)} entries for {n} rows"
            )
        if n == 0:
            return
        k = self.sample_every
        start = self._tick - 1
        if start >= n:
            self._tick -= n
            return
        last = start + ((n - 1 - start) // k) * k
        self._tick = last + k - n + 1
        sampled = np.arange(start, n, k)
        oks = np.asarray(oks, dtype=bool)
        pool = as_pool(pool)

        def feed(indices: np.ndarray) -> None:
            self.ingest_many(
                [relation.row(int(i)) for i in indices],
                list(oks[indices]),
            )

        # The partially-filled buffer (rows from earlier observe/ingest
        # calls) completes its window serially; every later boundary is
        # then window-aligned over the sampled indices.
        buffered = len(self._rows)
        cursor = 0
        if buffered:
            cursor = min(sampled.size, self.window - buffered)
            feed(sampled[:cursor])
        n_groups = (sampled.size - cursor) // self.window
        groups = [
            sampled[cursor + g * self.window : cursor + (g + 1) * self.window]
            for g in range(n_groups)
        ]
        if pool is not None and pool.parallel and n_groups > 1:
            results = pool.imap(
                _scan_window_job,
                list(range(n_groups)),
                shared=(self, relation, groups),
            )
            for group, counts in zip(groups, results):
                self._reduce_window(counts, list(oks[group]))
        else:
            for group in groups:
                feed(group)
        tail = sampled[cursor + n_groups * self.window :]
        if tail.size:
            feed(tail)

    def flush(self) -> None:
        """Evaluate whatever is buffered (e.g. at end-of-stream).

        Windows below ``min_window`` (sampled rows) are discarded
        unevaluated — a too-small sample proves nothing either way.
        """
        if len(self._rows) >= self.min_window:
            self._evaluate_window()
        else:
            self._rows = []
            self._oks = []

    def poll(self) -> list[DriftAlert]:
        """Drain and return the alerts raised since the last poll."""
        alerts, self._pending = self._pending, []
        return alerts

    @property
    def violation_ewma(self) -> float:
        """Current level of the violation-rate control chart."""
        return self._ewma

    @property
    def attributes(self) -> tuple[str, ...]:
        """The monitored attributes."""
        return tuple(self._attributes)

    # ------------------------------------------------------------------
    # Re-baselining (after a hot-swap)
    # ------------------------------------------------------------------

    def rebase(
        self,
        reference: Relation,
        baseline_violation_rate: float | None = None,
    ) -> None:
        """Adopt a new reference distribution (post-heal, the swapped
        guard's own training window becomes "normal").

        Resets the window buffer and the EWMA level so stale evidence
        against the *old* reference cannot raise alerts against the
        new one.
        """
        if self._journal is not None:
            # May raise: rebase aborted, current reference intact.
            self._journal(
                "drift_rebase",
                baseline_violation_rate=(
                    float(baseline_violation_rate)
                    if baseline_violation_rate is not None
                    else self.baseline_violation_rate
                ),
            )
        references: dict[str, _Reference] = {}
        for attribute in self._attributes:
            if attribute not in reference.schema:
                continue
            codec = reference.codec(attribute)
            codes = reference.codes(attribute)
            counts = np.bincount(
                codes[codes >= 0], minlength=codec.cardinality
            ).astype(np.float64)
            references[attribute] = _Reference(
                codec, counts, np.append(counts, 0.0)
            )
        self._references = references
        from operator import itemgetter

        self._getter = (
            itemgetter(*references) if len(references) > 1 else None
        )
        if baseline_violation_rate is not None:
            self.baseline_violation_rate = float(baseline_violation_rate)
        self._ewma = self.baseline_violation_rate
        self._ewma_seen = 0
        self._rows = []
        self._oks = []
        self._tick = self.sample_every

    # ------------------------------------------------------------------
    # Window evaluation (amortized)
    # ------------------------------------------------------------------

    def _evaluate_window(self) -> None:
        """Run every detector over the buffered window; queue alerts."""
        rows, self._rows = self._rows, []
        oks, self._oks = self._oks, []
        self._reduce_window(self._window_counts(rows), oks)

    def _reduce_window(
        self,
        per_attribute_counts: Mapping[str, Counter],
        oks: Sequence[bool],
    ) -> None:
        """Reduce one window's (pre-computed) counts into detector state.

        The counting half (:meth:`_window_counts`) is pure and runs in
        workers during a parallel :meth:`scan`; everything stateful —
        EWMA, stats, alert queueing — funnels through here, in window
        order, in the parent process.
        """
        n = len(oks)
        self._update_ewma(oks)
        self.stats.rows_observed += n
        self.stats.windows_evaluated += 1
        traced = obs.enabled()
        if traced:
            obs.count("drift.window")
        for attribute, counts in per_attribute_counts.items():
            ref = self._references[attribute]
            counts.pop(None, None)
            seen_total = sum(counts.values())
            if seen_total == 0:
                continue
            unseen = sum(
                count
                for value, count in counts.items()
                if value not in ref.codec
            )
            unseen_rate = unseen / seen_total
            if unseen_rate > self.unseen_threshold:
                self._raise_alert(
                    DriftAlert(
                        kind="unseen_values",
                        attribute=attribute,
                        statistic=unseen_rate,
                        threshold=self.unseen_threshold,
                        window=n,
                        message=(
                            f"{attribute}: {unseen_rate:.1%} of window "
                            f"values unseen by the training codec "
                            f"(> {self.unseen_threshold:.1%})"
                        ),
                    ),
                    traced,
                )
            self._marginal_test(
                attribute, ref, counts, unseen, seen_total, n, traced
            )
        self._violation_chart(n, traced)

    def _window_counts(self, rows: list) -> dict[str, Counter]:
        """Per-attribute value counts over the window, one pass.

        The fast path counts *distinct attribute tuples* with a single
        C-level ``Counter(map(itemgetter(...)))`` sweep and then fans
        the (few) combination counts out per attribute, so the Python
        loop runs over distinct value combinations, not rows.  Rows
        missing an attribute fall back to ``row.get`` counting.
        """
        attributes = list(self._references)
        getter = self._getter
        if getter is not None:
            try:
                combos = Counter(map(getter, rows))
            except (KeyError, TypeError):
                pass
            else:
                per = {a: Counter() for a in attributes}
                for combo, count in combos.items():
                    for attribute, value in zip(attributes, combo):
                        per[attribute][value] += count
                return per
        return {
            attribute: Counter(row.get(attribute) for row in rows)
            for attribute in attributes
        }

    def _update_ewma(self, oks: Sequence[bool]) -> None:
        """Advance the violation-rate EWMA over a window of verdicts.

        Equivalent to the per-row recursion
        ``e <- e + lambda * (x - e)``, vectorized so the hot path never
        pays a float update.
        """
        n = len(oks)
        if n == 0:
            return
        cached = self._decay.get(n)
        if cached is None:
            lam = self.ewma_lambda
            cached = (
                (1.0 - lam) ** n,
                lam * (1.0 - lam) ** np.arange(n - 1, -1, -1),
            )
            self._decay[n] = cached
        factor, decay = cached
        x = 1.0 - np.asarray(oks, dtype=np.float64)
        self._ewma = float(factor * self._ewma + decay @ x)
        self._ewma_seen += n

    def _marginal_test(
        self,
        attribute: str,
        ref: _Reference,
        counts: Counter,
        unseen: int,
        seen_total: int,
        n: int,
        traced: bool,
    ) -> None:
        """χ²/G² homogeneity of the window counts vs training marginals.

        The two-row contingency table (training counts over the codec's
        categories plus an "unseen" bucket vs the window's) goes through
        the same statistic/dof machinery PC's CI tests use.
        """
        from scipy import stats as scipy_stats

        table = np.zeros((2, ref.codec.cardinality + 1), dtype=np.float64)
        table[0] = ref.padded
        window_counts = table[1]
        for value, count in counts.items():
            if value in ref.codec:
                window_counts[ref.codec.encode_one(value)] = count
        window_counts[-1] = unseen
        stat_fn = _x2_from_table if self.method == "x2" else _g2_from_table
        statistic, dof = stat_fn(table)
        if dof == 0 or seen_total < self.min_window:
            return
        # Compare against the cached critical value; the p-value itself
        # (one scipy call per *alert*, not per window) is only for the
        # message.
        critical = self._critical.get(dof)
        if critical is None:
            critical = float(scipy_stats.chi2.isf(self.alpha, dof))
            self._critical[dof] = critical
        if statistic > critical:
            p_value = float(scipy_stats.chi2.sf(statistic, dof))
            self._raise_alert(
                DriftAlert(
                    kind="marginal_shift",
                    attribute=attribute,
                    statistic=statistic,
                    threshold=self.alpha,
                    window=n,
                    message=(
                        f"{attribute}: marginal shift "
                        f"({self.method}={statistic:.1f}, dof={dof}, "
                        f"p={p_value:.2e} < {self.alpha:g})"
                    ),
                ),
                traced,
            )

    def _violation_chart(self, n: int, traced: bool) -> None:
        """EWMA control chart on the guard's violation verdicts."""
        if self._ewma_seen < self.min_window:
            return
        mu = max(self.baseline_violation_rate, 1.0 / self.window)
        sigma = math.sqrt(
            mu
            * (1.0 - mu)
            * self.ewma_lambda
            / (2.0 - self.ewma_lambda)
        )
        limit = mu + self.ewma_sigmas * sigma
        if self._ewma > limit:
            self._raise_alert(
                DriftAlert(
                    kind="violation_rate",
                    attribute=None,
                    statistic=self._ewma,
                    threshold=limit,
                    window=n,
                    message=(
                        f"violation-rate EWMA {self._ewma:.3f} crossed "
                        f"the control limit {limit:.3f} "
                        f"(baseline {self.baseline_violation_rate:.3f})"
                    ),
                ),
                traced,
            )

    def _raise_alert(self, alert: DriftAlert, traced: bool) -> None:
        self._pending.append(alert)
        self.stats.alerts_by_kind[alert.kind] = (
            self.stats.alerts_by_kind.get(alert.kind, 0) + 1
        )
        if traced:
            obs.count("drift.alert")
            obs.count(f"drift.alert.{alert.kind}")
            obs.record(
                "drift.alert",
                kind=alert.kind,
                attribute=alert.attribute,
                statistic=alert.statistic,
                threshold=alert.threshold,
            )


def _scan_window_job(index: int) -> dict[str, Counter]:
    """Worker task: decode + count one sampled window of a parallel
    :meth:`DriftDetector.scan`.

    Reads the fork-inherited ``(detector, relation, groups)`` tuple and
    returns the pure per-attribute value counts; the parent reduces
    them in stream order, so no detector state mutates here.
    """
    from ..parallel import get_shared

    detector, relation, groups = get_shared()
    rows = [relation.row(int(i)) for i in groups[index]]
    return detector._window_counts(rows)


def _program_attributes(program) -> list[str]:
    """Attributes a program reads or writes, in first-use order."""
    seen: dict[str, None] = {}
    for statement in program:
        for determinant in statement.determinants:
            seen.setdefault(determinant, None)
        seen.setdefault(statement.dependent, None)
    return list(seen)


def render_drift_report(
    alerts: Iterable[DriftAlert], stats: DriftStats | None = None
) -> str:
    """Plain-text rendering of a drift run (the CLI's output)."""
    alerts = list(alerts)
    lines = []
    if stats is not None:
        lines.append(
            f"drift: {stats.rows_observed} rows observed, "
            f"{stats.windows_evaluated} windows evaluated, "
            f"{stats.total_alerts} alerts"
        )
    if not alerts:
        lines.append("no drift detected")
    for alert in alerts:
        lines.append(f"  [{alert.kind}] {alert.message}")
    return "\n".join(lines)
