"""Chaos *under load*: inject faults into a live, traffic-bearing server.

The unit-level chaos harness (:mod:`repro.resilience.chaos`) proves each
fault class conforms to its degradation policy in isolation.  This
module closes the gap ROADMAP calls out — exercising the same faults
while a closed-loop asyncio client fleet drives
:class:`repro.serve.GuardServer` — and judges the service-level
contract instead of the single-call one:

* **zero lost requests** — every submitted request resolves with a
  typed :class:`~repro.serve.ServeResponse`, never an exception, never
  a future nobody resolves;
* **verdict parity** — every healthy (OK, non-degraded) response
  matches a serial ``BatchGuard.check_batch`` reference for the
  guardrail version stamped on it, before, during, and after the
  fault;
* **recovery** — after the fault clears, healthy verdicts flow again
  (the first one is timed, and the fleet runs to completion).

Four fault classes are injected mid-run, each with its own evidence
that it actually landed:

========================  ====================================================
``guard_exception``       the live guardrail is hot-swapped for one whose
                          guards always raise, then rolled back — requests
                          in the window degrade per policy, never vanish
``hot_swap``              a legitimate v2 guardrail lands mid-traffic;
                          parity is judged per stamped version
``breaker_trip``          the raising guard plus a tight failure threshold
                          trips the tenant's circuit breaker (asserted via
                          ``times_opened``); recovery rides the half-open probe
``worker_kill``           the tenant's batcher task is cancelled mid-batch
                          (``GuardServer.kill_batcher``); in-hand requests
                          resolve with typed ERRORs and supervision respawns
                          the batcher (asserted via ``batcher_restarts``)
========================  ====================================================

Each run uses two tenants; the second never sees a fault and doubles as
an isolation control.  The suite is deterministic (phase-driven, not
wall-clock-driven) and fast enough to gate CI; ``repro chaos --load``
is the command-line entry point.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from ..dsl import Branch, Condition, Program, Statement
from .chaos import _CITY_OF, _STATE_OF
from .policy import GuardPolicy

LOAD_FAULT_CLASSES = (
    "guard_exception",
    "hot_swap",
    "breaker_trip",
    "worker_kill",
)
"""Every fault class the under-load suite can inject, in suite order."""


@dataclass
class LoadOutcome:
    """Verdict on one fault class injected under live traffic."""

    fault: str
    policy: GuardPolicy
    conformant: bool
    detail: str
    submitted: int = 0
    resolved: int = 0
    errors: int = 0
    rejected_retries: int = 0
    recovery_s: float = 0.0


# ---------------------------------------------------------------------------
# Fixture: programs, rows, and a fault-injection guardrail
# ---------------------------------------------------------------------------


def _load_program(city_of: dict, state_of: dict) -> Program:
    """The chaos-world program for a given postal→city→state mapping."""

    def statement(det: str, dep: str, table: dict) -> Statement:
        return Statement(
            (det,),
            dep,
            tuple(
                Branch(Condition.of(**{det: key}), dep, value)
                for key, value in table.items()
            ),
        )

    return Program(
        (
            statement("PostalCode", "City", city_of),
            statement("City", "State", state_of),
        )
    )


def _programs() -> dict[int, Program]:
    """v1: the training-time world; v2: 94704 has become Oakland."""
    v2_city = dict(_CITY_OF, **{"94704": "Oakland"})
    v2_state = dict(_STATE_OF, Oakland="CA")
    return {
        1: _load_program(dict(_CITY_OF), dict(_STATE_OF)),
        2: _load_program(v2_city, v2_state),
    }


def _load_rows() -> list[dict]:
    """A fixed request pool mixing clean, violating, and v2-only rows."""
    state_of = dict(_STATE_OF, Oakland="CA")
    postals = sorted(_CITY_OF)
    cities = ("Berkeley", "NewYork", "Austin", "Oakland")
    rows = []
    for i in range(32):
        city = cities[i % len(cities)]
        rows.append(
            {
                "PostalCode": postals[i % len(postals)],
                "City": city,
                "State": state_of[city],
            }
        )
    return rows


def _exploding_guardrail(program: Program):
    """A real :class:`~repro.synth.Guardrail` (it must pass ``swap``'s
    validation) whose row/batch guards always raise — the injection
    vehicle for ``guard_exception`` and ``breaker_trip``."""
    from ..synth import Guardrail

    class _ExplodingGuard:
        """Stands in for a guard whose backend is down."""

        def check_batch(self, rows):
            raise RuntimeError("chaos: guard backend down")

        def check_row(self, row):
            raise RuntimeError("chaos: guard backend down")

        def rectify(self, row):
            raise RuntimeError("chaos: guard backend down")

    class _ExplodingServeGuardrail(Guardrail):
        """Validates as a guardrail; serves only poisoned guards."""

        def batch_guard(self, batch_size: int = 256):
            return _ExplodingGuard()

        def row_guard(self):
            return _ExplodingGuard()

    return _ExplodingServeGuardrail.from_program(program)


# ---------------------------------------------------------------------------
# The closed-loop client fleet
# ---------------------------------------------------------------------------


class _Fleet:
    """Bookkeeping shared by every client of one fault run."""

    def __init__(self, server, tenants, rows, clients):
        self.server = server
        self.tenants = tenants
        self.rows = rows
        self.clients = clients
        self.log: list = []  # (tenant, row_index, response, t)
        self.lost: list[str] = []
        self.submitted = 0
        self.rejected_retries = 0

    async def drive(self, per_client: int, offset: int) -> None:
        """One phase: every client issues ``per_client`` sequential
        requests (closed loop), retrying typed REJECTED backpressure."""

        async def one(cid: int) -> None:
            for k in range(per_client):
                tenant = self.tenants[cid % len(self.tenants)]
                row_index = (offset + cid * 31 + k * 7) % len(self.rows)
                self.submitted += 1
                try:
                    await self.one_request(tenant, row_index)
                except Exception as error:  # noqa: BLE001 - judged
                    self.lost.append(
                        f"{type(error).__name__}: {error}"
                    )

        await asyncio.gather(*(one(c) for c in range(self.clients)))

    async def one_request(self, tenant: str, row_index: int) -> None:
        from ..serve import ServeStatus

        while True:
            response = await self.server.check(
                tenant, self.rows[row_index]
            )
            if response.status is ServeStatus.REJECTED:
                self.rejected_retries += 1
                await asyncio.sleep(
                    min(response.retry_after or 0.001, 0.005)
                )
                continue
            self.log.append(
                (tenant, row_index, response, time.perf_counter())
            )
            return


# ---------------------------------------------------------------------------
# One fault run: pre-traffic, inject, post-traffic, judge
# ---------------------------------------------------------------------------


async def _drive_load_fault(
    fault: str,
    policy: GuardPolicy,
    clients: int,
    requests: int,
) -> LoadOutcome:
    from ..errors import BatchGuard
    from ..serve import GuardServer, TenantConfig
    from ..synth import Guardrail

    programs = _programs()
    rows = _load_rows()
    references = {
        version: BatchGuard(program).check_batch(rows)
        for version, program in programs.items()
    }
    config = TenantConfig(
        policy=policy,
        max_batch=max(2, clients // 2),
        max_wait_ms=25.0 if fault == "worker_kill" else 2.0,
        queue_size=256,
        # Only breaker_trip wants a hair-trigger breaker; the other
        # classes isolate their own failure mode (the unit harness
        # pattern: the breaker has its own fault class and tests).
        failure_threshold=2 if fault == "breaker_trip" else 10_000,
        recovery_seconds=0.05,
    )
    server = GuardServer()
    tenants = ("faulted", "control")
    for name in tenants:
        server.register(
            name, Guardrail.from_program(programs[1]), config
        )
    fleet = _Fleet(server, tenants, rows, clients)
    injector = _INJECTORS[fault]
    async with server:
        await fleet.drive(requests, offset=0)
        evidence = await injector(server, fleet, programs)
        cleared_at = time.perf_counter()
        await fleet.drive(requests, offset=13)
    return _judge_load(
        fault, policy, fleet, references, evidence, cleared_at
    )


async def _inject_guard_exception(server, fleet, programs) -> dict:
    server.swap("faulted", _exploding_guardrail(programs[1]))
    await fleet.drive(3, offset=5)  # traffic through the broken guard
    server.rollback("faulted")
    return {}


async def _inject_hot_swap(server, fleet, programs) -> dict:
    version = server.swap("faulted", _programs_guardrail(programs[2]))
    return {"swapped_to": version}


def _programs_guardrail(program):
    from ..synth import Guardrail

    return Guardrail.from_program(program)


async def _inject_breaker_trip(server, fleet, programs) -> dict:
    tenant = server.tenant("faulted")
    server.swap("faulted", _exploding_guardrail(programs[1]))
    await fleet.drive(3, offset=5)  # enough failed flushes to trip
    times_opened = tenant.breaker.times_opened
    server.rollback("faulted")
    # Let the breaker reach half-open so the probe can close it.
    await asyncio.sleep(tenant.config.recovery_seconds * 1.5 + 0.01)
    return {"times_opened": times_opened}


async def _inject_worker_kill(server, fleet, programs) -> dict:
    from ..serve import ServeStatus

    # A partial batch (smaller than max_batch) parks the batcher in its
    # accumulate wait; the cancel lands with that batch in hand.
    burst = [
        asyncio.ensure_future(
            server.check("faulted", fleet.rows[index])
        )
        for index in (1, 2)
    ]
    fleet.submitted += len(burst)
    await asyncio.sleep(0.005)
    server.kill_batcher("faulted")
    in_hand_errors = 0
    for index, response in zip(
        (1, 2), await asyncio.gather(*burst)
    ):
        fleet.log.append(
            ("faulted", index, response, time.perf_counter())
        )
        if response.status is ServeStatus.ERROR:
            in_hand_errors += 1
    return {
        "restarts": server.tenant("faulted").metrics.batcher_restarts,
        "in_hand_errors": in_hand_errors,
    }


_INJECTORS = {
    "guard_exception": _inject_guard_exception,
    "hot_swap": _inject_hot_swap,
    "breaker_trip": _inject_breaker_trip,
    "worker_kill": _inject_worker_kill,
}


def _judge_load(
    fault: str,
    policy: GuardPolicy,
    fleet: _Fleet,
    references: dict,
    evidence: dict,
    cleared_at: float,
) -> LoadOutcome:
    """Apply the service-level contract to one fault run's log."""
    from ..serve import ServeStatus

    resolved = len(fleet.log)
    errors = sum(
        1
        for (_, _, response, _) in fleet.log
        if response.status is ServeStatus.ERROR
    )
    base = dict(
        submitted=fleet.submitted,
        resolved=resolved,
        errors=errors,
        rejected_retries=fleet.rejected_retries,
    )

    def fail(detail: str) -> LoadOutcome:
        return LoadOutcome(fault, policy, False, detail, **base)

    if fleet.lost:
        return fail(
            f"{len(fleet.lost)} request(s) lost to exceptions "
            f"(first: {fleet.lost[0]})"
        )
    if resolved != fleet.submitted:
        return fail(
            f"{fleet.submitted} submitted but {resolved} resolved — "
            "a request vanished without a typed response"
        )
    # Verdict parity: every healthy response matches the serial
    # reference for the version stamped on it.
    healthy = 0
    for tenant, row_index, response, _ in fleet.log:
        if response.status is not ServeStatus.OK:
            continue
        if response.degraded or response.verdict is None:
            continue
        reference = references.get(response.version)
        if reference is None:
            return fail(
                f"response stamped unknown version {response.version}"
            )
        if response.verdict != reference[row_index]:
            return fail(
                f"verdict parity broken for {tenant} row {row_index} "
                f"under v{response.version}"
            )
        healthy += 1
    if healthy == 0:
        return fail("no healthy verdict ever flowed")
    # Recovery: healthy verdicts from the *faulted* tenant after the
    # fault cleared.
    post = [
        t
        for tenant, _, response, t in fleet.log
        if tenant == "faulted"
        and t >= cleared_at
        and response.status is ServeStatus.OK
        and not response.degraded
    ]
    if not post:
        return fail("faulted tenant never recovered a healthy verdict")
    recovery_s = min(post) - cleared_at
    # Fault-specific evidence that the injection actually landed.
    checks = {
        "guard_exception": lambda: errors > 0
        or any(r.degraded for (_, _, r, _) in fleet.log),
        "hot_swap": lambda: any(
            r.version == evidence.get("swapped_to")
            and r.status is ServeStatus.OK
            for (_, _, r, _) in fleet.log
        ),
        "breaker_trip": lambda: evidence.get("times_opened", 0) >= 1,
        "worker_kill": lambda: evidence.get("restarts", 0) >= 1
        and evidence.get("in_hand_errors", 0) >= 1,
    }
    if not checks[fault]():
        return fail(f"fault never landed (evidence: {evidence})")
    return LoadOutcome(
        fault,
        policy,
        True,
        f"{resolved}/{fleet.submitted} typed responses, {healthy} "
        f"parity-checked, {errors} typed error(s), recovery in "
        f"{recovery_s * 1000:.0f}ms",
        recovery_s=recovery_s,
        **base,
    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_load_fault(
    fault: str,
    policy: "GuardPolicy | str",
    clients: int = 8,
    requests: int = 5,
) -> LoadOutcome:
    """Inject one fault class into a loaded server; judge the outcome.

    ``clients`` closed-loop clients each issue ``requests`` requests
    per traffic phase (before and after the fault; some classes also
    drive traffic during it).
    """
    if fault not in _INJECTORS:
        raise ValueError(
            f"unknown load fault class {fault!r}; choose from "
            + ", ".join(LOAD_FAULT_CLASSES)
        )
    resolved = GuardPolicy.parse(policy)
    return asyncio.run(
        _drive_load_fault(fault, resolved, clients, requests)
    )


def run_load_suite(
    policy: "GuardPolicy | str" = GuardPolicy.WARN,
    faults: tuple = LOAD_FAULT_CLASSES,
    clients: int = 8,
    requests: int = 5,
) -> list[LoadOutcome]:
    """Run every under-load fault class under ``policy``."""
    return [
        run_load_fault(fault, policy, clients=clients, requests=requests)
        for fault in faults
    ]


def render_load_report(outcomes: list) -> str:
    """Plain-text table of under-load outcomes (the CLI's output)."""
    width = max((len(o.fault) for o in outcomes), default=5)
    policy = outcomes[0].policy.value if outcomes else "?"
    lines = [f"chaos-under-load suite under policy {policy}:"]
    for outcome in outcomes:
        mark = "PASS" if outcome.conformant else "FAIL"
        lines.append(
            f"  {mark}  {outcome.fault.ljust(width)}  {outcome.detail}"
        )
    conformant = sum(o.conformant for o in outcomes)
    lines.append(
        f"{conformant}/{len(outcomes)} fault classes conformant under load"
    )
    return "\n".join(lines)
